//! A miniature flash-translation controller: logical page mapping,
//! explicit block reclaim, garbage collection and wear statistics.
//!
//! The original controller erased the wrapped-into block
//! *unconditionally* on reuse — destroying still-live pages and charging
//! wear for erases that data integrity never allowed. Reclaim is now
//! explicit and safe:
//!
//! * Writes go to logical page numbers; rewriting a logical page marks
//!   its previous physical copy **stale** instead of erasing anything.
//! * A block is erased only when it is **fully consumed** — every page
//!   written and none of them live. Among the candidates, the
//!   **least-worn** block (lowest erase count) is reclaimed first.
//! * When the array is out of free pages and no block is fully stale,
//!   the controller garbage-collects: the fully-written block with the
//!   fewest live pages is buffered, erased, and its live pages
//!   reprogrammed in place (counted as relocations — the write
//!   amplification of the workload).
//!
//! Wear is accounted in exactly one place — the array's per-block erase
//! counters — so totals can no longer double-count; the controller adds
//! its own *reasons* (reclaims vs. explicit erases vs. GC) on top.

use std::collections::HashMap;

use gnr_flash::backend::CellBackend;
use gnr_flash::device::FloatingGateTransistor;
use gnr_numerics::hash::{fnv1a_fold_bytes, fnv1a_fold_f64, FNV1A_OFFSET};

use crate::nand::{ArraySnapshot, NandArray, NandConfig};
use crate::pe::scheduler::{CommandOutcome, PeCommand, PlaneScheduler};
use crate::{ArrayError, Result};

/// Physical address of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct PageAddress {
    /// Block index.
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

/// Wear statistics across blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WearStats {
    /// Lowest per-block erase count.
    pub min_erases: u64,
    /// Highest per-block erase count.
    pub max_erases: u64,
    /// Total erases across the array (the single source of truth: the
    /// array's own per-block counters).
    pub total_erases: u64,
    /// Erases initiated by the controller to reclaim fully-stale blocks
    /// (the cheap path — no data movement).
    pub reclaim_erases: u64,
    /// Erases initiated by garbage collection (victim had live pages
    /// that were buffered and rewritten).
    pub gc_erases: u64,
    /// Live pages rewritten during garbage collection (write
    /// amplification).
    pub gc_relocations: u64,
}

impl WearStats {
    /// Wear spread across blocks (max − min erase count).
    #[must_use]
    pub fn spread(&self) -> u64 {
        self.max_erases - self.min_erases
    }
}

/// One planned-but-unflushed batched page program: the logical page,
/// the copy it superseded at plan time (restored on verify failure),
/// the allocated address and the contents.
#[derive(Debug, Clone)]
struct PendingProgram {
    lpn: usize,
    prev: Option<PageAddress>,
    addr: PageAddress,
    bits: Vec<bool>,
    /// Assigned from the rotating cursor (`None` lpn): the cursor only
    /// commits once this job's program verifies.
    cursor_assigned: bool,
}

/// Serializable full state of a [`FlashController`]: the wrapped
/// array's snapshot plus the FTL bookkeeping. The logical map and page
/// lifecycle columns are integer-encoded for the JSON shim:
/// `map[lpn]` holds the live copy's flat physical page slot
/// (`block * pages_per_block + page`) or `-1` for unmapped;
/// `state[slot]` holds the live logical page number, `-1` for a free
/// page, `-2` for a stale one.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControllerSnapshot {
    /// The wrapped array's full state.
    pub array: ArraySnapshot,
    /// Logical page → flat physical slot of its live copy (`-1` = none).
    pub map: Vec<i64>,
    /// Per physical page: live lpn, `-1` free, `-2` stale.
    pub state: Vec<i64>,
    /// Rotating allocation scan start.
    pub next_slot: u64,
    /// Auto-assign logical-page cursor.
    pub next_lpn: u64,
    /// Erases initiated to reclaim fully-stale blocks.
    pub reclaim_erases: u64,
    /// Erases initiated by garbage collection.
    pub gc_erases: u64,
    /// Live pages rewritten during garbage collection.
    pub gc_relocations: u64,
    /// Plane count of the multi-plane scheduler (its entire round
    /// state: scheduling is stateless across rounds by design).
    pub planes: u64,
}

impl ControllerSnapshot {
    /// Decodes a snapshot from an already-parsed [`serde::Value`] tree.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on missing/ill-typed fields.
    pub fn from_value(value: &serde::Value) -> Result<Self> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| ArrayError::Snapshot(format!("missing field `{name}`")))
        };
        let counter = |name: &str| -> Result<u64> {
            field(name)?
                .as_u64()
                .ok_or_else(|| ArrayError::Snapshot(format!("bad counter `{name}`")))
        };
        let i64_column = |name: &str| -> Result<Vec<i64>> {
            field(name)?
                .as_array()
                .ok_or_else(|| ArrayError::Snapshot(format!("`{name}` must be an array")))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|f| f.fract() == 0.0 && f.abs() < 9.0e15)
                        .map(|f| f as i64)
                        .ok_or_else(|| ArrayError::Snapshot(format!("non-integer in `{name}`")))
                })
                .collect()
        };
        Ok(Self {
            array: ArraySnapshot::from_value(field("array")?)?,
            map: i64_column("map")?,
            state: i64_column("state")?,
            next_slot: counter("next_slot")?,
            next_lpn: counter("next_lpn")?,
            reclaim_erases: counter("reclaim_erases")?,
            gc_erases: counter("gc_erases")?,
            gc_relocations: counter("gc_relocations")?,
            planes: counter("planes")?,
        })
    }
}

/// Lifecycle of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    /// Erased and writable.
    Free,
    /// Holds the current copy of a logical page.
    Live(usize),
    /// Holds a superseded copy; reclaimed with its block.
    Stale,
}

/// The controller.
#[derive(Debug, Clone)]
pub struct FlashController {
    array: NandArray,
    /// Logical page → physical address of its live copy.
    map: Vec<Option<PageAddress>>,
    /// Per physical page (flat `block * pages_per_block + page`).
    state: Vec<PageState>,
    /// Rotating allocation scan start, for round-robin wear levelling.
    next_slot: usize,
    /// `write()` auto-assigns logical pages cycling through this range.
    next_lpn: usize,
    reclaim_erases: u64,
    gc_erases: u64,
    gc_relocations: u64,
    /// The multi-plane scheduler behind the batched entry points.
    scheduler: PlaneScheduler,
}

impl FlashController {
    /// Creates a controller over a fresh array.
    ///
    /// # Panics
    ///
    /// Panics for arrays with fewer than two blocks — one block is the
    /// GC over-provisioning, so a single-block array has zero logical
    /// capacity and would deadlock on the first rewrite.
    #[must_use]
    pub fn new(config: NandConfig) -> Self {
        Self::over(NandArray::new(config))
    }

    /// Creates a controller over a fresh array of an arbitrary device
    /// backend (GNR-FG, CNT-FG, PCM). The FTL above the array never
    /// looks at the cell physics, so mapping, reclaim, GC and epoch
    /// jumps are identical across backends — only the pulse transients
    /// underneath differ.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::new`].
    #[must_use]
    pub fn with_backend(config: NandConfig, backend: &CellBackend) -> Self {
        Self::over(NandArray::with_backend(config, backend))
    }

    /// Wraps an existing array (e.g. one with per-cell variation).
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::new`].
    #[must_use]
    pub fn over(array: NandArray) -> Self {
        assert!(
            array.config().blocks >= 2,
            "FlashController needs >= 2 blocks: one is GC over-provisioning"
        );
        let pages = array.config().pages();
        Self {
            array,
            map: vec![None; pages],
            state: vec![PageState::Free; pages],
            next_slot: 0,
            next_lpn: 0,
            reclaim_erases: 0,
            gc_erases: 0,
            gc_relocations: 0,
            scheduler: PlaneScheduler::default(),
        }
    }

    /// Sets the plane count the batched entry points schedule across.
    /// Blocks partition onto planes as `block % planes`; any plane count
    /// produces bit-identical array state (see [`crate::pe::scheduler`])
    /// — planes change *how much* of a batch the engine fans out at
    /// once, never *what* it computes.
    ///
    /// # Panics
    ///
    /// Panics when `planes` is zero.
    #[must_use]
    pub fn with_planes(mut self, planes: usize) -> Self {
        self.scheduler = PlaneScheduler::new(planes);
        self
    }

    /// The multi-plane scheduler configuration.
    #[must_use]
    pub fn scheduler(&self) -> &PlaneScheduler {
        &self.scheduler
    }

    /// The underlying array (for analyses).
    #[must_use]
    pub fn array(&self) -> &NandArray {
        &self.array
    }

    /// Mutable cell-state access (see [`NandArray::population_mut`]):
    /// charge-level mutation cannot violate the page map, so reliability
    /// models may age the analog state of a mapped array in place.
    pub fn population_mut(&mut self) -> &mut crate::population::CellPopulation {
        self.array.population_mut()
    }

    /// Logical capacity in pages: the physical page count less one
    /// block of over-provisioning, so garbage collection always has
    /// stale pages to harvest under steady-state rewrites.
    #[must_use]
    pub fn logical_capacity(&self) -> usize {
        self.array.config().logical_pages()
    }

    /// Writes `bits` to the next logical page (cycling through
    /// [`Self::logical_capacity`]), reclaiming or garbage-collecting
    /// blocks as needed. Returns the physical address written. The
    /// cursor only advances on success, so a failed write retries the
    /// same logical page.
    ///
    /// # Errors
    ///
    /// Page-width mismatches, capacity exhaustion and device errors
    /// propagate.
    pub fn write(&mut self, bits: &[bool]) -> Result<PageAddress> {
        let addr = self.write_logical(self.next_lpn, bits)?;
        self.next_lpn = (self.next_lpn + 1) % self.logical_capacity();
        Ok(addr)
    }

    /// Writes `bits` as the new contents of logical page `lpn`. The
    /// previous physical copy (if any) becomes stale; nothing live is
    /// ever erased.
    ///
    /// # Errors
    ///
    /// [`ArrayError::WrongPageWidth`] for bad buffers,
    /// [`ArrayError::AddressOutOfRange`] for an `lpn` beyond the logical
    /// capacity, [`ArrayError::CapacityExhausted`] when every page holds
    /// live data, and device errors.
    pub fn write_logical(&mut self, lpn: usize, bits: &[bool]) -> Result<PageAddress> {
        let cfg = self.array.config();
        if bits.len() != cfg.page_width {
            return Err(ArrayError::WrongPageWidth {
                got: bits.len(),
                expected: cfg.page_width,
            });
        }
        if lpn >= self.logical_capacity() {
            return Err(ArrayError::AddressOutOfRange {
                kind: "logical page",
                index: lpn,
                len: self.logical_capacity(),
            });
        }
        // The previous copy stays live until the replacement is safely
        // on the array: a failed overwrite must never cost the only
        // copy of the page. (The old copy's block therefore cannot be
        // reclaimed during this allocation — worst case that means one
        // extra GC relocation, never data loss.)
        let addr = self.allocate()?;
        if let Err(e) = self.array.program_page(addr.block, addr.page, bits) {
            // Pulses were applied: the page is consumed but holds no
            // live data. Retire it so allocation never offers it again.
            let slot = self.slot(addr);
            self.state[slot] = PageState::Stale;
            return Err(e);
        }
        if let Some(old) = self.map[lpn].replace(addr) {
            let slot = self.slot(old);
            self.state[slot] = PageState::Stale;
        }
        let slot = self.slot(addr);
        self.state[slot] = PageState::Live(lpn);
        gnr_telemetry::counter_add!("ftl.host_pages_written", 1);
        Ok(addr)
    }

    /// Writes a batch of pages through the multi-plane scheduler: the
    /// FTL decisions (allocation, stale marking, reclaim/GC) run
    /// sequentially — they are the decisions sequential writes would
    /// make, address for address — while the accumulated page programs
    /// flush to the array as scheduled multi-plane rounds. `None` lpns
    /// take the rotating cursor, exactly like [`Self::write`].
    ///
    /// The flush boundary is reclaim/GC: those erase or relocate
    /// physical pages and must observe every pending program, so the
    /// batch splits there. Between boundaries, programs on distinct
    /// blocks merge into rounds and the final state is bit-identical to
    /// the sequential write sequence.
    ///
    /// # Errors
    ///
    /// Validation errors reject the batch up front (nothing applied).
    /// A mid-batch device failure propagates after every already-planned
    /// program executed or was retired, with [`Self::write_logical`]'s
    /// guarantee intact: a failed overwrite never costs the last good
    /// copy — the logical page is remapped back to the newest copy that
    /// *did* verify (the pre-batch one, or an earlier in-batch rewrite),
    /// which is physically untouched because reclaim/GC only run at
    /// flush boundaries.
    pub fn write_batch(
        &mut self,
        jobs: Vec<(Option<usize>, Vec<bool>)>,
    ) -> Result<Vec<PageAddress>> {
        let _zone = gnr_telemetry::zone!("ftl.write_batch");
        gnr_telemetry::counter_add!("ftl.host_pages_written", jobs.len() as u64);
        let cfg = self.array.config();
        for (lpn, bits) in &jobs {
            if bits.len() != cfg.page_width {
                return Err(ArrayError::WrongPageWidth {
                    got: bits.len(),
                    expected: cfg.page_width,
                });
            }
            if lpn.is_some_and(|l| l >= self.logical_capacity()) {
                return Err(ArrayError::AddressOutOfRange {
                    kind: "logical page",
                    index: lpn.expect("checked some"),
                    len: self.logical_capacity(),
                });
            }
        }
        let mut addresses = Vec::with_capacity(jobs.len());
        let mut pending: Vec<PendingProgram> = Vec::new();
        // Cursor-assigned jobs plan against a *provisional* cursor;
        // `self.next_lpn` commits per job as its program verifies (in
        // flush), so a verify failure leaves the cursor on the failed
        // logical page — `write`'s retry-the-same-page contract.
        let mut cursor = self.next_lpn;
        for (lpn, bits) in jobs {
            let (lpn, cursor_assigned) = match lpn {
                Some(l) => (l, false),
                None => {
                    let l = cursor;
                    cursor = (cursor + 1) % self.logical_capacity();
                    (l, true)
                }
            };
            // Reclaim/GC must see every pending program: flush first,
            // then let the ordinary allocator erase/relocate.
            let addr = match self.scan_free() {
                Some(addr) => addr,
                None => {
                    self.flush_programs(&mut pending)?;
                    self.allocate()?
                }
            };
            // Optimistic lifecycle marking, in the same order the
            // sequential path would apply it, so every later allocation
            // and reclaim decision matches the sequential replay. The
            // superseded copy is remembered so a verify failure can
            // restore it — it stays physically intact until the next
            // flush boundary.
            let prev = self.map[lpn].replace(addr);
            if let Some(old) = prev {
                let slot = self.slot(old);
                self.state[slot] = PageState::Stale;
            }
            let slot = self.slot(addr);
            self.state[slot] = PageState::Live(lpn);
            pending.push(PendingProgram {
                lpn,
                prev,
                addr,
                bits,
                cursor_assigned,
            });
            addresses.push(addr);
        }
        self.flush_programs(&mut pending)?;
        Ok(addresses)
    }

    /// Executes the pending planned programs as one scheduled stream.
    ///
    /// Failure handling walks the results in plan order tracking, per
    /// logical page, the newest copy that verified: on a failure the
    /// consumed page is retired stale and — when the failed copy is the
    /// currently-mapped one — the mapping rolls back to that last good
    /// copy, matching the sequential path's "a failed overwrite never
    /// costs the only copy" guarantee.
    fn flush_programs(&mut self, pending: &mut Vec<PendingProgram>) -> Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        let mut commands = Vec::with_capacity(pending.len());
        let mut planned = Vec::with_capacity(pending.len());
        for p in pending.drain(..) {
            commands.push(PeCommand::Program {
                block: p.addr.block,
                page: p.addr.page,
                bits: p.bits,
            });
            planned.push((p.lpn, p.prev, p.addr, p.cursor_assigned));
        }
        let execution = self.scheduler.execute(&mut self.array, commands);
        let mut last_good: HashMap<usize, Option<PageAddress>> = HashMap::new();
        let mut cursor_failed = false;
        let mut first_error = None;
        for (result, (lpn, prev, addr, cursor_assigned)) in execution.results.iter().zip(planned) {
            // The rotating cursor commits as its jobs verify, and stops
            // at the first cursor-assigned failure: a retry then targets
            // the same logical page, exactly like sequential `write`.
            if cursor_assigned && !cursor_failed {
                match result {
                    Ok(_) => self.next_lpn = (lpn + 1) % self.logical_capacity(),
                    Err(_) => cursor_failed = true,
                }
            }
            let good = last_good.entry(lpn).or_insert(prev);
            match result {
                Ok(_) => *good = Some(addr),
                Err(e) => {
                    // Pulses landed but the page never verified: retire
                    // it, and if it is the live mapping, fall back to
                    // the newest verified copy of this logical page.
                    let slot = self.slot(addr);
                    self.state[slot] = PageState::Stale;
                    if self.map[lpn] == Some(addr) {
                        self.map[lpn] = *good;
                        if let Some(g) = *good {
                            let slot = self.slot(g);
                            self.state[slot] = PageState::Live(lpn);
                        }
                    }
                    first_error.get_or_insert_with(|| e.clone());
                }
            }
        }
        first_error.map_or(Ok(()), Err)
    }

    /// Reads a batch of logical pages through the multi-plane scheduler.
    /// Results are index-aligned with `lpns`; unmapped or out-of-range
    /// logical pages return [`ArrayError::AddressOutOfRange`] per entry
    /// (the read-miss contract of [`Self::read_logical`]) without
    /// aborting the batch.
    #[must_use]
    pub fn read_batch(&mut self, lpns: &[usize]) -> Vec<Result<Vec<bool>>> {
        let _zone = gnr_telemetry::zone!("ftl.read_batch");
        let mut results: Vec<Option<Result<Vec<bool>>>> = Vec::with_capacity(lpns.len());
        let mut commands = Vec::new();
        let mut scheduled: Vec<usize> = Vec::new();
        for (j, &lpn) in lpns.iter().enumerate() {
            match self.map.get(lpn).copied().flatten() {
                Some(addr) => {
                    commands.push(PeCommand::Read {
                        block: addr.block,
                        page: addr.page,
                    });
                    scheduled.push(j);
                    results.push(None);
                }
                None => results.push(Some(Err(ArrayError::AddressOutOfRange {
                    kind: "logical page",
                    index: lpn,
                    len: self.logical_capacity(),
                }))),
            }
        }
        let execution = self.scheduler.execute(&mut self.array, commands);
        for (result, &j) in execution.results.into_iter().zip(&scheduled) {
            results[j] = Some(result.map(|outcome| match outcome {
                CommandOutcome::Read(bits) => bits,
                other => unreachable!("read command returned {other:?}"),
            }));
        }
        results
            .into_iter()
            .map(|r| r.expect("every lpn was scheduled or rejected"))
            .collect()
    }

    /// Reads a physical page back.
    ///
    /// # Errors
    ///
    /// Address errors propagate.
    pub fn read(&mut self, addr: PageAddress) -> Result<Vec<bool>> {
        self.array.read_page(addr.block, addr.page)
    }

    /// Reads the live copy of logical page `lpn`.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] when `lpn` has never been
    /// written (or is beyond capacity).
    pub fn read_logical(&mut self, lpn: usize) -> Result<Vec<bool>> {
        let addr = self
            .map
            .get(lpn)
            .copied()
            .flatten()
            .ok_or(ArrayError::AddressOutOfRange {
                kind: "logical page",
                index: lpn,
                len: self.logical_capacity(),
            })?;
        self.read(addr)
    }

    /// Explicitly erases a block. Live pages in it are lost — their
    /// logical mappings are cleared — so this is the caller's
    /// data-destroying escape hatch, not the reclaim path.
    ///
    /// # Errors
    ///
    /// Address errors and device errors propagate.
    pub fn erase_block(&mut self, block: usize) -> Result<()> {
        self.array.erase_block(block)?;
        let cfg = self.array.config();
        for page in 0..cfg.pages_per_block {
            let slot = block * cfg.pages_per_block + page;
            if let PageState::Live(lpn) = self.state[slot] {
                self.map[lpn] = None;
            }
            self.state[slot] = PageState::Free;
        }
        Ok(())
    }

    /// Wear statistics.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed array; address errors are internal.
    pub fn wear_stats(&self) -> Result<WearStats> {
        let cfg = self.array.config();
        let mut min = u64::MAX;
        let mut max = 0;
        let mut total = 0;
        for b in 0..cfg.blocks {
            let e = self.array.erase_count(b)?;
            min = min.min(e);
            max = max.max(e);
            total += e;
        }
        Ok(WearStats {
            min_erases: min,
            max_erases: max,
            total_erases: total,
            reclaim_erases: self.reclaim_erases,
            gc_erases: self.gc_erases,
            gc_relocations: self.gc_relocations,
        })
    }

    /// Jumps the whole array through `cycles` composed P/E cycles of
    /// `recipe` (see [`NandArray::run_epoch`]) and resets the page
    /// lifecycle to match: the epoch ends with every page physically
    /// erased, so all logical mappings are dropped, every slot returns
    /// to `Free` and the allocation scan restarts at slot 0. Wear state
    /// (injected charge, op counters, per-block erase counts) carries
    /// the epoch's ageing forward — this is the time-scale-jumping
    /// primitive endurance campaigns alternate with full-fidelity
    /// observation windows.
    ///
    /// # Errors
    ///
    /// Device errors from the composed cycles propagate.
    pub fn run_epoch(
        &mut self,
        recipe: &gnr_flash::engine::CycleRecipe,
        cycles: u64,
    ) -> Result<crate::population::EpochReport> {
        let _zone = gnr_telemetry::zone!("ftl.epoch");
        gnr_telemetry::counter_add!("ftl.epoch_jumps", 1);
        gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::EpochJump { cycles });
        let report = self.array.run_epoch(recipe, cycles)?;
        self.map.fill(None);
        self.state.fill(PageState::Free);
        self.next_slot = 0;
        Ok(report)
    }

    /// Captures the controller's full serializable state: array state,
    /// logical map, page lifecycle, allocation cursors, wear-reason
    /// counters and scheduler configuration (see [`ControllerSnapshot`]).
    ///
    /// Snapshots are only taken *between* operations, so there is no
    /// pending-program state to capture — batched writes flush inside
    /// one [`Self::write_batch`] call.
    #[must_use]
    #[allow(clippy::cast_possible_wrap)]
    pub fn snapshot(&self) -> ControllerSnapshot {
        let ppb = self.array.config().pages_per_block;
        ControllerSnapshot {
            array: self.array.snapshot_state(),
            map: self
                .map
                .iter()
                .map(|addr| addr.map_or(-1, |a| (a.block * ppb + a.page) as i64))
                .collect(),
            state: self
                .state
                .iter()
                .map(|s| match s {
                    PageState::Free => -1,
                    PageState::Stale => -2,
                    PageState::Live(lpn) => *lpn as i64,
                })
                .collect(),
            next_slot: self.next_slot as u64,
            next_lpn: self.next_lpn as u64,
            reclaim_erases: self.reclaim_erases,
            gc_erases: self.gc_erases,
            gc_relocations: self.gc_relocations,
            planes: self.scheduler.planes() as u64,
        }
    }

    /// Rebuilds a controller from a device blueprint and a snapshot —
    /// the inverse of [`Self::snapshot`]. The restored controller is
    /// digest-identical ([`Self::state_digest`]) to the snapshotted one
    /// and continues any workload bit-identically.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on shape mismatches or out-of-range
    /// encodings; array restore errors propagate.
    pub fn restore(
        blueprint: FloatingGateTransistor,
        snapshot: ControllerSnapshot,
    ) -> Result<Self> {
        Self::finish_restore(snapshot, |array| NandArray::restore_state(blueprint, array))
    }

    /// Rebuilds a controller from a device backend and a snapshot — the
    /// backend-polymorphic sibling of [`Self::restore`]. GNR restores
    /// through this path are digest-identical to [`Self::restore`] over
    /// the same blueprint.
    ///
    /// # Errors
    ///
    /// As [`Self::restore`]; additionally
    /// [`ArrayError::UnsupportedBackend`] when a PCM backend is given a
    /// snapshot carrying floating-gate variation deltas.
    pub fn restore_backend(backend: &CellBackend, snapshot: ControllerSnapshot) -> Result<Self> {
        Self::finish_restore(snapshot, |array| {
            NandArray::restore_state_backend(backend, array)
        })
    }

    fn finish_restore(
        snapshot: ControllerSnapshot,
        restore_array: impl FnOnce(ArraySnapshot) -> Result<NandArray>,
    ) -> Result<Self> {
        let array = restore_array(snapshot.array)?;
        let config = array.config();
        if config.blocks < 2 {
            return Err(ArrayError::Snapshot(
                "controller snapshots need >= 2 blocks".into(),
            ));
        }
        let pages = config.pages();
        let logical = config.logical_pages();
        if snapshot.map.len() != pages {
            return Err(ArrayError::Snapshot(format!(
                "map has {} entries, shape wants {pages}",
                snapshot.map.len()
            )));
        }
        if snapshot.state.len() != pages {
            return Err(ArrayError::Snapshot(format!(
                "state has {} entries, shape wants {pages}",
                snapshot.state.len()
            )));
        }
        let ppb = config.pages_per_block;
        let map = snapshot
            .map
            .iter()
            .map(|&slot| match slot {
                -1 => Ok(None),
                s if s >= 0 && (s as usize) < pages => Ok(Some(PageAddress {
                    block: s as usize / ppb,
                    page: s as usize % ppb,
                })),
                s => Err(ArrayError::Snapshot(format!("bad map slot {s}"))),
            })
            .collect::<Result<Vec<Option<PageAddress>>>>()?;
        let state = snapshot
            .state
            .iter()
            .map(|&s| match s {
                -1 => Ok(PageState::Free),
                -2 => Ok(PageState::Stale),
                lpn if lpn >= 0 && (lpn as usize) < logical => Ok(PageState::Live(lpn as usize)),
                bad => Err(ArrayError::Snapshot(format!("bad page state {bad}"))),
            })
            .collect::<Result<Vec<PageState>>>()?;
        let cursor = |name: &str, v: u64, len: usize| -> Result<usize> {
            usize::try_from(v)
                .ok()
                .filter(|&c| c <= len)
                .ok_or_else(|| ArrayError::Snapshot(format!("bad cursor `{name}` = {v}")))
        };
        let planes = usize::try_from(snapshot.planes)
            .ok()
            .filter(|&p| p > 0)
            .ok_or_else(|| ArrayError::Snapshot(format!("bad plane count {}", snapshot.planes)))?;
        let controller = Self {
            array,
            map,
            state,
            next_slot: cursor("next_slot", snapshot.next_slot, pages)?,
            next_lpn: cursor("next_lpn", snapshot.next_lpn, logical)?,
            reclaim_erases: snapshot.reclaim_erases,
            gc_erases: snapshot.gc_erases,
            gc_relocations: snapshot.gc_relocations,
            scheduler: PlaneScheduler::new(planes),
        };
        // The digest is a full-state fold — only pay for it when the
        // journal will actually keep the event.
        if gnr_telemetry::enabled() {
            gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::CheckpointRestore {
                digest: controller.state_digest(),
            });
        }
        Ok(controller)
    }

    /// FNV-1a digest over the controller's *complete* state: every
    /// population column (charge, wear, op counters, variation deltas),
    /// page flags, per-block erase counts, the logical map, page
    /// lifecycle, allocation cursors and wear-reason counters. Two
    /// controllers with equal digests continue any workload
    /// bit-identically — the restore-equals-uninterrupted assertion of
    /// checkpointed campaigns compares exactly this.
    #[must_use]
    #[allow(clippy::cast_possible_wrap)]
    pub fn state_digest(&self) -> u64 {
        let pop = self.array.population();
        let mut h = FNV1A_OFFSET;
        for &q in pop.charge_column() {
            h = fnv1a_fold_f64(h, q);
        }
        for &w in pop.injected_charge_column() {
            h = fnv1a_fold_f64(h, w);
        }
        for &ops in pop.program_ops_column() {
            h = fnv1a_fold_bytes(h, &ops.to_le_bytes());
        }
        for &ops in pop.erase_ops_column() {
            h = fnv1a_fold_bytes(h, &ops.to_le_bytes());
        }
        let cfg = self.array.config();
        for b in 0..cfg.blocks {
            let e = self.array.erase_count(b).expect("block index in range");
            h = fnv1a_fold_bytes(h, &e.to_le_bytes());
        }
        for (b, p) in (0..cfg.blocks).flat_map(|b| (0..cfg.pages_per_block).map(move |p| (b, p))) {
            let erased = self
                .array
                .is_page_erased(b, p)
                .expect("page index in range");
            h = fnv1a_fold_bytes(h, &[u8::from(erased)]);
        }
        let ppb = cfg.pages_per_block;
        for addr in &self.map {
            let slot: i64 = addr.map_or(-1, |a| (a.block * ppb + a.page) as i64);
            h = fnv1a_fold_bytes(h, &slot.to_le_bytes());
        }
        for s in &self.state {
            let code: i64 = match s {
                PageState::Free => -1,
                PageState::Stale => -2,
                PageState::Live(lpn) => *lpn as i64,
            };
            h = fnv1a_fold_bytes(h, &code.to_le_bytes());
        }
        for v in [
            self.next_slot as u64,
            self.next_lpn as u64,
            self.reclaim_erases,
            self.gc_erases,
            self.gc_relocations,
        ] {
            h = fnv1a_fold_bytes(h, &v.to_le_bytes());
        }
        h
    }

    /// The physical address of logical page `lpn`'s live copy, if any.
    #[must_use]
    pub fn physical_of(&self, lpn: usize) -> Option<PageAddress> {
        self.map.get(lpn).copied().flatten()
    }

    /// Every logical page with a live copy, ascending — the scan order
    /// of background scrubbing.
    #[must_use]
    pub fn live_logical_pages(&self) -> Vec<usize> {
        self.map
            .iter()
            .enumerate()
            .filter_map(|(l, addr)| addr.map(|_| l))
            .collect()
    }

    /// Live pages currently mapped.
    #[must_use]
    pub fn live_pages(&self) -> usize {
        self.state
            .iter()
            .filter(|s| matches!(s, PageState::Live(_)))
            .count()
    }

    fn slot(&self, addr: PageAddress) -> usize {
        addr.block * self.array.config().pages_per_block + addr.page
    }

    /// Finds a free page, reclaiming or garbage-collecting when none is
    /// left. Advances the round-robin scan pointer on success.
    fn allocate(&mut self) -> Result<PageAddress> {
        if let Some(addr) = self.scan_free() {
            return Ok(addr);
        }
        // No free page anywhere. Cheap path first: a fully-consumed
        // block (all pages written, none live) — erase the least worn.
        if let Some(block) = self.reclaim_candidate() {
            self.array.erase_block(block)?;
            self.reclaim_erases += 1;
            gnr_telemetry::counter_add!("ftl.reclaims", 1);
            gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::Reclaim {
                block: block as u64,
            });
            self.free_block_state(block);
            return self.scan_free().ok_or(ArrayError::AddressOutOfRange {
                kind: "free page",
                index: 0,
                len: 0,
            });
        }
        // GC: buffer the live pages of the least-live victim, erase it,
        // and reprogram them in place.
        self.collect_garbage()?;
        self.scan_free().ok_or(ArrayError::AddressOutOfRange {
            kind: "free page",
            index: 0,
            len: 0,
        })
    }

    /// Round-robin scan for the next free page.
    fn scan_free(&mut self) -> Option<PageAddress> {
        let cfg = self.array.config();
        let pages = cfg.pages();
        for off in 0..pages {
            let slot = (self.next_slot + off) % pages;
            if self.state[slot] == PageState::Free {
                self.next_slot = (slot + 1) % pages;
                return Some(PageAddress {
                    block: slot / cfg.pages_per_block,
                    page: slot % cfg.pages_per_block,
                });
            }
        }
        None
    }

    /// The least-worn fully-consumed block, if any: every page written,
    /// zero live.
    fn reclaim_candidate(&self) -> Option<usize> {
        let cfg = self.array.config();
        (0..cfg.blocks)
            .filter(|&b| {
                let first = b * cfg.pages_per_block;
                self.state[first..first + cfg.pages_per_block]
                    .iter()
                    .all(|s| *s == PageState::Stale)
            })
            .min_by_key(|&b| self.array.erase_count(b).unwrap_or(u64::MAX))
    }

    /// Garbage-collects the fully-written block with the fewest live
    /// pages: its live contents are read into a buffer, the block is
    /// erased, and the contents are reprogrammed into the block's first
    /// pages. Fails with [`ArrayError::CapacityExhausted`] when every
    /// page of the array is live.
    ///
    /// Failure atomicity: a mid-GC device failure (erase or reprogram
    /// verify) can lose the affected survivors — their mappings are
    /// *cleared* before the error propagates, so no logical page is
    /// ever left pointing at a freed or reallocated physical page; the
    /// loss is visible as a read miss, never as aliased data.
    fn collect_garbage(&mut self) -> Result<()> {
        let _zone = gnr_telemetry::zone!("ftl.gc");
        let cfg = self.array.config();
        let victim = (0..cfg.blocks)
            .filter_map(|b| {
                let first = b * cfg.pages_per_block;
                let states = &self.state[first..first + cfg.pages_per_block];
                if states.contains(&PageState::Free) {
                    return None; // not fully written — not a GC victim
                }
                let live = states
                    .iter()
                    .filter(|s| matches!(s, PageState::Live(_)))
                    .count();
                (live < cfg.pages_per_block).then_some((b, live))
            })
            .min_by_key(|&(b, live)| (live, self.array.erase_count(b).unwrap_or(u64::MAX)))
            .map(|(b, _)| b);
        let Some(victim) = victim else {
            return Err(ArrayError::CapacityExhausted {
                live_pages: self.live_pages(),
                capacity: cfg.pages(),
            });
        };

        // Buffer the live pages (data + logical number), then erase.
        let first = victim * cfg.pages_per_block;
        let mut survivors: Vec<(usize, Vec<bool>)> = Vec::new();
        for page in 0..cfg.pages_per_block {
            if let PageState::Live(lpn) = self.state[first + page] {
                survivors.push((lpn, self.array.read_page(victim, page)?));
                // The buffered copy supersedes the on-array one. From
                // here until each survivor is reprogrammed, its map
                // entry is cleared so a failure cannot leave it
                // pointing at a page about to be erased or reassigned.
                self.state[first + page] = PageState::Stale;
                self.map[lpn] = None;
            }
        }
        // On erase failure the buffered survivors are the only copies
        // and there is nowhere safe to put them: they surface as read
        // misses (mappings already cleared), never as aliased data.
        self.array.erase_block(victim)?;
        self.gc_erases += 1;
        gnr_telemetry::counter_add!("ftl.gc.erases", 1);
        gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::GcErase {
            block: victim as u64,
            survivors: survivors.len() as u64,
        });
        self.free_block_state(victim);
        let mut page = 0usize;
        for (lpn, bits) in survivors {
            // A verify failure consumes a page (pulses were applied):
            // retire it and retry the survivor on the next page. Only a
            // survivor that runs out of pages is lost — and it is lost
            // *cleanly*, its mapping already cleared above.
            let mut last_error = None;
            let mut placed = false;
            while page < cfg.pages_per_block {
                let slot = first + page;
                match self.array.program_page(victim, page, &bits) {
                    Ok(()) => {
                        self.state[slot] = PageState::Live(lpn);
                        self.map[lpn] = Some(PageAddress {
                            block: victim,
                            page,
                        });
                        self.gc_relocations += 1;
                        gnr_telemetry::counter_add!("ftl.gc.relocations", 1);
                        gnr_telemetry::journal::record(
                            gnr_telemetry::journal::EventKind::GcRelocation {
                                lpn: lpn as u64,
                                block: victim as u64,
                                page: page as u64,
                            },
                        );
                        page += 1;
                        placed = true;
                        break;
                    }
                    Err(e) => {
                        self.state[slot] = PageState::Stale;
                        last_error = Some(e);
                        page += 1;
                    }
                }
            }
            if !placed {
                return Err(last_error.expect("loop only exits dry after an error"));
            }
        }
        Ok(())
    }

    fn free_block_state(&mut self, block: usize) {
        let cfg = self.array.config();
        let first = block * cfg.pages_per_block;
        for slot in first..first + cfg.pages_per_block {
            debug_assert!(
                !matches!(self.state[slot], PageState::Live(_)),
                "reclaim must never erase live pages"
            );
            self.state[slot] = PageState::Free;
        }
        // Start the next allocation scan in the reclaimed block so the
        // round-robin keeps levelling wear.
        self.next_slot = first;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayError;

    fn controller() -> FlashController {
        FlashController::new(NandConfig {
            blocks: 2,
            pages_per_block: 2,
            page_width: 4,
        })
    }

    #[test]
    fn write_read_round_trip() {
        let mut c = controller();
        let data = vec![false, true, false, true];
        let addr = c.write(&data).unwrap();
        assert_eq!(addr, PageAddress { block: 0, page: 0 });
        assert_eq!(c.read(addr).unwrap(), data);
    }

    #[test]
    fn allocation_advances_round_robin() {
        let mut c = controller();
        let d = vec![true; 4];
        let a0 = c.write(&d).unwrap();
        let a1 = c.write(&d).unwrap();
        let a2 = c.write(&d).unwrap();
        assert_eq!((a0.block, a0.page), (0, 0));
        assert_eq!((a1.block, a1.page), (0, 1));
        assert_eq!((a2.block, a2.page), (1, 0));
    }

    #[test]
    fn wraparound_reclaims_blocks() {
        let mut c = controller();
        let d = vec![false; 4];
        // 4 pages fill the array; the 5th write wraps and forces an erase.
        for _ in 0..5 {
            c.write(&d).unwrap();
        }
        let stats = c.wear_stats().unwrap();
        assert!(stats.total_erases >= 1);
        assert_eq!(stats.total_erases, stats.reclaim_erases);
    }

    #[test]
    fn wear_spread_stays_tight_under_sequential_load() {
        let mut c = controller();
        let d = vec![false; 4];
        for _ in 0..16 {
            c.write(&d).unwrap();
        }
        let stats = c.wear_stats().unwrap();
        assert!(stats.spread() <= 1, "wear spread {stats:?}");
    }

    #[test]
    fn wrong_width_write_rejected() {
        let mut c = controller();
        assert!(matches!(
            c.write(&[true]),
            Err(ArrayError::WrongPageWidth { .. })
        ));
        // The cursor did not advance: the corrected retry still lands
        // on logical page 0, physical (0, 0).
        let addr = c.write(&[false; 4]).unwrap();
        assert_eq!(addr, PageAddress { block: 0, page: 0 });
        assert_eq!(c.read_logical(0).unwrap(), vec![false; 4]);
    }

    #[test]
    fn reclaim_never_destroys_live_pages() {
        // The historical bug: wrapping erased the next block wholesale,
        // taking still-live pages with it. Rewriting one hot logical page
        // over and over must leave every other logical page intact.
        let mut c = FlashController::new(NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 4,
        });
        let cold: Vec<Vec<bool>> = (0..3)
            .map(|i| (0..4).map(|b| (b + i) % 2 == 0).collect())
            .collect();
        for (lpn, data) in cold.iter().enumerate() {
            c.write_logical(lpn, data).unwrap();
        }
        let hot = vec![false; 4];
        for _ in 0..12 {
            c.write_logical(3, &hot).unwrap();
        }
        for (lpn, data) in cold.iter().enumerate() {
            assert_eq!(
                c.read_logical(lpn).unwrap(),
                *data,
                "cold page {lpn} was destroyed by reclaim"
            );
        }
        assert_eq!(c.read_logical(3).unwrap(), hot);
        let stats = c.wear_stats().unwrap();
        assert!(stats.total_erases >= 1);
    }

    #[test]
    fn gc_relocates_when_no_block_is_fully_stale() {
        // 3 blocks × 2 pages, logical capacity 4. Fill all four logical
        // pages (blocks 0 and 1 end up all-live), then alternate rewrites
        // of two of them: stale pages interleave with live ones in every
        // block, so reclaiming requires relocating the cold survivors.
        let mut c = FlashController::new(NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 4,
        });
        let data: Vec<Vec<bool>> = (0..4)
            .map(|i| (0..4).map(|b| (b + i) % 3 == 0).collect())
            .collect();
        for (lpn, bits) in data.iter().enumerate() {
            c.write_logical(lpn, bits).unwrap();
        }
        for round in 0..6 {
            for &lpn in &[1usize, 3] {
                c.write_logical(lpn, &data[lpn]).unwrap();
                // Cold pages 0 and 2 must survive every reclaim.
                assert_eq!(c.read_logical(0).unwrap(), data[0], "round {round}");
                assert_eq!(c.read_logical(2).unwrap(), data[2], "round {round}");
            }
        }
        let stats = c.wear_stats().unwrap();
        assert!(stats.gc_relocations > 0, "{stats:?}");
        assert!(stats.gc_erases > 0, "{stats:?}");
        assert!(stats.total_erases > 0);
    }

    #[test]
    fn capacity_errors_are_reported_not_destructive() {
        let mut c = controller();
        assert_eq!(c.logical_capacity(), 2);
        let d = vec![false; 4];
        c.write_logical(0, &d).unwrap();
        c.write_logical(1, &d).unwrap();
        // lpn beyond capacity is rejected up front.
        assert!(matches!(
            c.write_logical(2, &d),
            Err(ArrayError::AddressOutOfRange { .. })
        ));
        // Both pages still readable.
        assert_eq!(c.read_logical(0).unwrap(), d);
        assert_eq!(c.read_logical(1).unwrap(), d);
    }

    #[test]
    #[should_panic(expected = "over-provisioning")]
    fn single_block_arrays_are_rejected_up_front() {
        // One block means zero logical capacity: rewrites would
        // deadlock with every page live, so construction refuses.
        let _ = FlashController::new(NandConfig {
            blocks: 1,
            pages_per_block: 2,
            page_width: 4,
        });
    }

    #[test]
    fn live_page_enumeration_tracks_the_map() {
        let mut c = FlashController::new(NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 4,
        });
        assert!(c.live_logical_pages().is_empty());
        assert_eq!(c.physical_of(0), None);
        let d = vec![false; 4];
        c.write_logical(2, &d).unwrap();
        c.write_logical(0, &d).unwrap();
        assert_eq!(c.live_logical_pages(), vec![0, 2]);
        let addr = c.physical_of(2).unwrap();
        assert_eq!(c.read(addr).unwrap(), d);
        // A rewrite moves the live copy; the enumeration is unchanged.
        c.write_logical(2, &d).unwrap();
        assert_ne!(c.physical_of(2).unwrap(), addr);
        assert_eq!(c.live_logical_pages(), vec![0, 2]);
    }

    /// A 2×2×4 controller whose page (0, 1) cells carry +30 % tunnel
    /// oxide — nominal ISPP deterministically fails verify on them.
    fn controller_with_bad_page() -> FlashController {
        let config = NandConfig {
            blocks: 2,
            pages_per_block: 2,
            page_width: 4,
        };
        let mut pop = crate::population::CellPopulation::paper(config.cells());
        let probe = NandArray::new(config);
        for column in 0..config.page_width {
            pop.set_cell_variation(probe.cell_index(0, 1, column), 0.3, 0.0)
                .unwrap();
        }
        FlashController::over(NandArray::with_population(config, pop))
    }

    #[test]
    fn batched_write_failure_keeps_the_pre_batch_copy() {
        // Regression: plan-time remapping must not cost the last good
        // copy when the scheduled program fails verify — the guarantee
        // write_logical documents, now preserved across flush rollback.
        let mut c = controller_with_bad_page();
        let data = vec![false, true, false, true];
        let first = c.write_batch(vec![(Some(0), data.clone())]).unwrap();
        assert_eq!(first, vec![PageAddress { block: 0, page: 0 }]);
        // The rewrite allocates the bad page (0, 1) and fails...
        let err = c
            .write_batch(vec![(Some(0), vec![true, false, true, false])])
            .unwrap_err();
        assert!(matches!(err, ArrayError::VerifyFailed { .. }));
        // ...and the mapping rolled back to the intact pre-batch copy.
        assert_eq!(c.physical_of(0), Some(PageAddress { block: 0, page: 0 }));
        assert_eq!(c.read_logical(0).unwrap(), data);
    }

    #[test]
    fn batched_write_failure_keeps_the_last_in_batch_copy() {
        // Same-lpn rewrites inside one batch: the fallback is the newest
        // copy that verified, not only the pre-batch one.
        let mut c = controller_with_bad_page();
        let good = vec![false, true, true, true];
        let err = c
            .write_batch(vec![
                (Some(0), good.clone()),                   // lands (0,0), verifies
                (Some(0), vec![true, false, true, false]), // lands (0,1), fails
            ])
            .unwrap_err();
        assert!(matches!(err, ArrayError::VerifyFailed { .. }));
        assert_eq!(c.physical_of(0), Some(PageAddress { block: 0, page: 0 }));
        assert_eq!(c.read_logical(0).unwrap(), good);
    }

    #[test]
    fn batched_cursor_only_advances_on_verified_programs() {
        // write()'s contract: "the cursor only advances on success, so a
        // failed write retries the same logical page" — the batched path
        // must hold it too (the cursor commits per verified program).
        let mut c = controller_with_bad_page();
        let good = vec![false, true, false, true];
        // Cursor job 1 lands (0,0) and verifies: cursor moves to lpn 1.
        c.write_batch(vec![(None, good.clone())]).unwrap();
        // Cursor job 2 lands the bad page (0,1) and fails: the cursor
        // must stay on lpn 1 so a retry targets the same logical page.
        assert!(c.write_batch(vec![(None, good.clone())]).is_err());
        assert_eq!(c.physical_of(1), None);
        let retry = vec![false, false, true, true];
        let addr = c.write(&retry).unwrap();
        assert_eq!(c.physical_of(1), Some(addr));
        assert_eq!(c.read_logical(1).unwrap(), retry);
        // Logical page 0's copy survived throughout.
        assert_eq!(c.read_logical(0).unwrap(), good);
    }

    #[test]
    fn explicit_erase_clears_mappings() {
        let mut c = controller();
        let d = vec![false; 4];
        let addr = c.write_logical(0, &d).unwrap();
        c.erase_block(addr.block).unwrap();
        assert!(c.read_logical(0).is_err());
        assert_eq!(c.live_pages(), 0);
    }
}
