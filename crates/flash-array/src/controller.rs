//! A miniature flash-translation controller: logical page mapping,
//! explicit block reclaim, garbage collection, wear statistics — and,
//! since the robustness PR, a hardened fault-tolerant mode with
//! crash-consistent metadata.
//!
//! The original controller erased the wrapped-into block
//! *unconditionally* on reuse — destroying still-live pages and charging
//! wear for erases that data integrity never allowed. Reclaim is now
//! explicit and safe:
//!
//! * Writes go to logical page numbers; rewriting a logical page marks
//!   its previous physical copy **stale** instead of erasing anything.
//! * A block is erased only when it is **fully consumed** — every page
//!   written and none of them live. Among the candidates, the
//!   **least-worn** block (lowest erase count) is reclaimed first.
//! * When the array is out of free pages and no block is fully stale,
//!   the controller garbage-collects: the fully-written block with the
//!   fewest live pages is buffered, erased, and its live pages
//!   reprogrammed in place (counted as relocations — the write
//!   amplification of the workload).
//!
//! Wear is accounted in exactly one place — the array's per-block erase
//! counters — so totals can no longer double-count; the controller adds
//! its own *reasons* (reclaims vs. explicit erases vs. GC) on top.
//!
//! # Fault tolerance
//!
//! [`FlashController::with_fault_tolerance`] arms the hardened FTL over
//! a spare-block pool: a block whose erase reports a grown-bad status
//! ([`ArrayError::BlockRetired`]) or whose page program reports a failed
//! status ([`ArrayError::ProgramFailed`] or a verify exhaustion) is
//! **retired** — its live pages are relocated to healthy blocks, every
//! slot is parked stale, and the grown-bad table excludes it from every
//! allocator path forever. Each retirement consumes one spare; when the
//! pool is exhausted the controller degrades to **read-only**
//! ([`ArrayError::ReadOnly`]): writes fail cleanly, reads keep working.
//!
//! # Crash consistency
//!
//! [`FlashController::enable_crash_consistency`] journals the volatile
//! FTL metadata as a periodic [`MetaCheckpoint`] plus a delta log
//! ([`MetaDelta`]) of every mutation since. Power loss at any op
//! boundary preserves exactly the array medium plus that checkpoint and
//! log (a [`CrashImage`]); [`FlashController::recover`] /
//! [`FlashController::recover_backend`] replay the deltas onto the
//! checkpoint and yield a controller whose [`state_digest`] equals the
//! uninterrupted run's at the cut — the equality the crash-recovery
//! sweep pins at every op index.
//!
//! [`state_digest`]: FlashController::state_digest

use std::collections::HashMap;

use gnr_flash::backend::CellBackend;
use gnr_flash::device::FloatingGateTransistor;
use gnr_numerics::hash::{fnv1a_fold_bytes, fnv1a_fold_f64, FNV1A_OFFSET};

use crate::fault::FaultPlan;
use crate::nand::{ArraySnapshot, NandArray, NandConfig};
use crate::pe::scheduler::{CommandOutcome, PeCommand, PlaneScheduler};
use crate::{ArrayError, Result};

/// Physical address of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct PageAddress {
    /// Block index.
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

/// Wear statistics across blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WearStats {
    /// Lowest per-block erase count.
    pub min_erases: u64,
    /// Highest per-block erase count.
    pub max_erases: u64,
    /// Total erases across the array (the single source of truth: the
    /// array's own per-block counters).
    pub total_erases: u64,
    /// Erases initiated by the controller to reclaim fully-stale blocks
    /// (the cheap path — no data movement).
    pub reclaim_erases: u64,
    /// Erases initiated by garbage collection (victim had live pages
    /// that were buffered and rewritten).
    pub gc_erases: u64,
    /// Live pages rewritten during garbage collection (write
    /// amplification).
    pub gc_relocations: u64,
}

impl WearStats {
    /// Wear spread across blocks (max − min erase count).
    #[must_use]
    pub fn spread(&self) -> u64 {
        self.max_erases - self.min_erases
    }
}

/// One planned-but-unflushed batched page program: the submitting job
/// index, the logical page, the copy it superseded at plan time
/// (restored on verify failure), the allocated address and the contents.
#[derive(Debug, Clone)]
struct PendingProgram {
    job: usize,
    lpn: usize,
    prev: Option<PageAddress>,
    addr: PageAddress,
    bits: Vec<bool>,
    /// Assigned from the rotating cursor (`None` lpn): the cursor only
    /// commits once this job's program verifies.
    cursor_assigned: bool,
}

/// The controller's complete volatile metadata at one instant: the
/// logical map and page lifecycle columns (integer-encoded for the JSON
/// shim: `map[lpn]` holds the live copy's flat physical page slot
/// `block * pages_per_block + page` or `-1` for unmapped; `state[slot]`
/// holds the live logical page number, `-1` for a free page, `-2` for a
/// stale one), the allocation cursors, the wear-reason counters, the
/// scheduler configuration and the fault-tolerance bookkeeping.
///
/// This is both the metadata half of a [`ControllerSnapshot`] and the
/// periodic checkpoint the crash-consistency journal replays
/// [`MetaDelta`]s onto.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetaCheckpoint {
    /// Logical page → flat physical slot of its live copy (`-1` = none).
    pub map: Vec<i64>,
    /// Per physical page: live lpn, `-1` free, `-2` stale.
    pub state: Vec<i64>,
    /// Rotating allocation scan start.
    pub next_slot: u64,
    /// Auto-assign logical-page cursor.
    pub next_lpn: u64,
    /// Erases initiated to reclaim fully-stale blocks.
    pub reclaim_erases: u64,
    /// Erases initiated by garbage collection.
    pub gc_erases: u64,
    /// Live pages rewritten during garbage collection.
    pub gc_relocations: u64,
    /// Plane count of the multi-plane scheduler (its entire round
    /// state: scheduling is stateless across rounds by design).
    pub planes: u64,
    /// Grown-bad table: `true` marks a retired block.
    pub bad_blocks: Vec<bool>,
    /// Spare blocks provisioned for retirements.
    pub spare_blocks: u64,
    /// Whether the hardened fault-tolerant FTL is armed.
    pub fault_tolerant: bool,
    /// Whether the controller has degraded to read-only mode.
    pub read_only: bool,
    /// Page programs that reported a failed status.
    pub program_fails: u64,
}

impl MetaCheckpoint {
    /// Decodes a checkpoint from an already-parsed [`serde::Value`]
    /// tree.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on missing/ill-typed fields.
    pub fn from_value(value: &serde::Value) -> Result<Self> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| ArrayError::Snapshot(format!("missing field `{name}`")))
        };
        let counter = |name: &str| -> Result<u64> {
            field(name)?
                .as_u64()
                .ok_or_else(|| ArrayError::Snapshot(format!("bad counter `{name}`")))
        };
        let flag = |name: &str| -> Result<bool> {
            field(name)?
                .as_bool()
                .ok_or_else(|| ArrayError::Snapshot(format!("bad flag `{name}`")))
        };
        let i64_column = |name: &str| -> Result<Vec<i64>> {
            field(name)?
                .as_array()
                .ok_or_else(|| ArrayError::Snapshot(format!("`{name}` must be an array")))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .filter(|f| f.fract() == 0.0 && f.abs() < 9.0e15)
                        .map(|f| f as i64)
                        .ok_or_else(|| ArrayError::Snapshot(format!("non-integer in `{name}`")))
                })
                .collect()
        };
        let bool_column = |name: &str| -> Result<Vec<bool>> {
            field(name)?
                .as_array()
                .ok_or_else(|| ArrayError::Snapshot(format!("`{name}` must be an array")))?
                .iter()
                .map(|v| {
                    v.as_bool()
                        .ok_or_else(|| ArrayError::Snapshot(format!("non-bool in `{name}`")))
                })
                .collect()
        };
        Ok(Self {
            map: i64_column("map")?,
            state: i64_column("state")?,
            next_slot: counter("next_slot")?,
            next_lpn: counter("next_lpn")?,
            reclaim_erases: counter("reclaim_erases")?,
            gc_erases: counter("gc_erases")?,
            gc_relocations: counter("gc_relocations")?,
            planes: counter("planes")?,
            bad_blocks: bool_column("bad_blocks")?,
            spare_blocks: counter("spare_blocks")?,
            fault_tolerant: flag("fault_tolerant")?,
            read_only: flag("read_only")?,
            program_fails: counter("program_fails")?,
        })
    }
}

/// One journaled metadata mutation. Every delta carries **absolute**
/// values, so replay is idempotent and order within the log is the only
/// ordering that matters — the property that makes recovery replay
/// byte-exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaDelta {
    /// `map[lpn]` now points at flat `slot` (`-1` = unmapped).
    MapSet {
        /// The logical page.
        lpn: u64,
        /// Flat physical slot of the live copy, `-1` for none.
        slot: i64,
    },
    /// `state[slot]` now holds `code` (live lpn, `-1` free, `-2` stale).
    StateSet {
        /// The flat physical slot.
        slot: u64,
        /// The lifecycle code.
        code: i64,
    },
    /// The rotating allocation cursor moved.
    NextSlot {
        /// Its new absolute value.
        value: u64,
    },
    /// The auto-assign logical-page cursor moved.
    NextLpn {
        /// Its new absolute value.
        value: u64,
    },
    /// Wear-reason and fault counters (absolute values).
    Counters {
        /// Reclaim erases so far.
        reclaim_erases: u64,
        /// GC erases so far.
        gc_erases: u64,
        /// GC relocations so far.
        gc_relocations: u64,
        /// Failed page programs so far.
        program_fails: u64,
    },
    /// `block` entered the grown-bad table.
    BlockRetired {
        /// The retired block.
        block: u64,
    },
    /// The controller degraded to read-only mode.
    ReadOnly,
    /// An epoch jump reset the page lifecycle: map cleared, every slot
    /// free, allocation scan restarted at slot 0.
    MetaReset,
}

impl serde::Serialize for MetaDelta {
    #[allow(clippy::cast_precision_loss)]
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let obj = |kind: &str, fields: Vec<(&str, Value)>| {
            let mut pairs = vec![("kind".to_string(), Value::String(kind.to_string()))];
            pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
            Value::Object(pairs)
        };
        let num = |v: u64| Value::Number(v as f64);
        let int = |v: i64| Value::Number(v as f64);
        match *self {
            Self::MapSet { lpn, slot } => {
                obj("map_set", vec![("lpn", num(lpn)), ("slot", int(slot))])
            }
            Self::StateSet { slot, code } => {
                obj("state_set", vec![("slot", num(slot)), ("code", int(code))])
            }
            Self::NextSlot { value } => obj("next_slot", vec![("value", num(value))]),
            Self::NextLpn { value } => obj("next_lpn", vec![("value", num(value))]),
            Self::Counters {
                reclaim_erases,
                gc_erases,
                gc_relocations,
                program_fails,
            } => obj(
                "counters",
                vec![
                    ("reclaim_erases", num(reclaim_erases)),
                    ("gc_erases", num(gc_erases)),
                    ("gc_relocations", num(gc_relocations)),
                    ("program_fails", num(program_fails)),
                ],
            ),
            Self::BlockRetired { block } => obj("block_retired", vec![("block", num(block))]),
            Self::ReadOnly => obj("read_only", vec![]),
            Self::MetaReset => obj("meta_reset", vec![]),
        }
    }
}

impl serde::Deserialize for MetaDelta {}

impl MetaDelta {
    /// Decodes a delta from an already-parsed [`serde::Value`] tree.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on unknown kinds or ill-typed fields.
    pub fn from_value(value: &serde::Value) -> Result<Self> {
        let kind = value
            .get("kind")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| ArrayError::Snapshot("delta missing `kind`".into()))?;
        let num = |name: &str| -> Result<u64> {
            value
                .get(name)
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| ArrayError::Snapshot(format!("delta missing counter `{name}`")))
        };
        let int = |name: &str| -> Result<i64> {
            value
                .get(name)
                .and_then(serde::Value::as_f64)
                .filter(|f| f.fract() == 0.0 && f.abs() < 9.0e15)
                .map(|f| f as i64)
                .ok_or_else(|| ArrayError::Snapshot(format!("delta missing integer `{name}`")))
        };
        Ok(match kind {
            "map_set" => Self::MapSet {
                lpn: num("lpn")?,
                slot: int("slot")?,
            },
            "state_set" => Self::StateSet {
                slot: num("slot")?,
                code: int("code")?,
            },
            "next_slot" => Self::NextSlot {
                value: num("value")?,
            },
            "next_lpn" => Self::NextLpn {
                value: num("value")?,
            },
            "counters" => Self::Counters {
                reclaim_erases: num("reclaim_erases")?,
                gc_erases: num("gc_erases")?,
                gc_relocations: num("gc_relocations")?,
                program_fails: num("program_fails")?,
            },
            "block_retired" => Self::BlockRetired {
                block: num("block")?,
            },
            "read_only" => Self::ReadOnly,
            "meta_reset" => Self::MetaReset,
            other => {
                return Err(ArrayError::Snapshot(format!(
                    "unknown delta kind `{other}`"
                )))
            }
        })
    }
}

/// Serializable full state of a [`FlashController`]: the wrapped
/// array's snapshot plus the FTL metadata (see [`MetaCheckpoint`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControllerSnapshot {
    /// The wrapped array's full state.
    pub array: ArraySnapshot,
    /// The controller metadata.
    pub meta: MetaCheckpoint,
}

impl ControllerSnapshot {
    /// Decodes a snapshot from an already-parsed [`serde::Value`] tree.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on missing/ill-typed fields.
    pub fn from_value(value: &serde::Value) -> Result<Self> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| ArrayError::Snapshot(format!("missing field `{name}`")))
        };
        Ok(Self {
            array: ArraySnapshot::from_value(field("array")?)?,
            meta: MetaCheckpoint::from_value(field("meta")?)?,
        })
    }
}

/// Everything that survives a power cut: the array medium (cells are
/// non-volatile), the last metadata checkpoint and the delta log
/// journaled since it. [`FlashController::recover`] replays the log
/// onto the checkpoint to rebuild the exact pre-crash controller.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CrashImage {
    /// The array medium at the instant of power loss.
    pub array: ArraySnapshot,
    /// The last metadata checkpoint.
    pub checkpoint: MetaCheckpoint,
    /// Metadata deltas journaled since the checkpoint, oldest first.
    pub deltas: Vec<MetaDelta>,
    /// The checkpoint cadence (ops between checkpoints), so recovery
    /// re-arms the journal identically.
    pub interval: u64,
}

impl CrashImage {
    /// Decodes a crash image from an already-parsed [`serde::Value`]
    /// tree.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on missing/ill-typed fields.
    pub fn from_value(value: &serde::Value) -> Result<Self> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| ArrayError::Snapshot(format!("missing field `{name}`")))
        };
        let deltas = field("deltas")?
            .as_array()
            .ok_or_else(|| ArrayError::Snapshot("`deltas` must be an array".into()))?
            .iter()
            .map(MetaDelta::from_value)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            array: ArraySnapshot::from_value(field("array")?)?,
            checkpoint: MetaCheckpoint::from_value(field("checkpoint")?)?,
            deltas,
            interval: field("interval")?
                .as_u64()
                .ok_or_else(|| ArrayError::Snapshot("bad counter `interval`".into()))?,
        })
    }
}

/// The crash-consistency journal: the last checkpoint, the deltas since
/// and the checkpoint cadence.
#[derive(Debug, Clone)]
struct MetaJournal {
    interval: u64,
    since_checkpoint: u64,
    checkpoint: MetaCheckpoint,
    deltas: Vec<MetaDelta>,
}

/// Lifecycle of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    /// Erased and writable.
    Free,
    /// Holds the current copy of a logical page.
    Live(usize),
    /// Holds a superseded copy; reclaimed with its block.
    Stale,
}

#[allow(clippy::cast_possible_wrap)]
fn state_code(s: PageState) -> i64 {
    match s {
        PageState::Free => -1,
        PageState::Stale => -2,
        PageState::Live(lpn) => lpn as i64,
    }
}

/// The controller.
#[derive(Debug, Clone)]
pub struct FlashController {
    array: NandArray,
    /// Logical page → physical address of its live copy.
    map: Vec<Option<PageAddress>>,
    /// Per physical page (flat `block * pages_per_block + page`).
    state: Vec<PageState>,
    /// Rotating allocation scan start, for round-robin wear levelling.
    next_slot: usize,
    /// `write()` auto-assigns logical pages cycling through this range.
    next_lpn: usize,
    reclaim_erases: u64,
    gc_erases: u64,
    gc_relocations: u64,
    /// The multi-plane scheduler behind the batched entry points.
    scheduler: PlaneScheduler,
    /// Whether the hardened FTL (retire/retry/read-only) is armed.
    fault_tolerant: bool,
    /// Grown-bad table: `true` marks a retired block, excluded from
    /// every allocator path.
    bad_blocks: Vec<bool>,
    /// Spare blocks provisioned for retirements.
    spare_blocks: usize,
    /// Set when the spare pool is exhausted: writes fail, reads work.
    read_only: bool,
    /// Page programs that reported a failed status.
    program_fails: u64,
    /// The crash-consistency journal, when enabled.
    meta: Option<MetaJournal>,
}

impl FlashController {
    /// Creates a controller over a fresh array.
    ///
    /// # Panics
    ///
    /// Panics for arrays with fewer than two blocks — one block is the
    /// GC over-provisioning, so a single-block array has zero logical
    /// capacity and would deadlock on the first rewrite.
    #[must_use]
    pub fn new(config: NandConfig) -> Self {
        Self::over(NandArray::new(config))
    }

    /// Creates a controller over a fresh array of an arbitrary device
    /// backend (GNR-FG, CNT-FG, PCM). The FTL above the array never
    /// looks at the cell physics, so mapping, reclaim, GC and epoch
    /// jumps are identical across backends — only the pulse transients
    /// underneath differ.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::new`].
    #[must_use]
    pub fn with_backend(config: NandConfig, backend: &CellBackend) -> Self {
        Self::over(NandArray::with_backend(config, backend))
    }

    /// Wraps an existing array (e.g. one with per-cell variation).
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::new`].
    #[must_use]
    pub fn over(array: NandArray) -> Self {
        assert!(
            array.config().blocks >= 2,
            "FlashController needs >= 2 blocks: one is GC over-provisioning"
        );
        let pages = array.config().pages();
        let blocks = array.config().blocks;
        Self {
            array,
            map: vec![None; pages],
            state: vec![PageState::Free; pages],
            next_slot: 0,
            next_lpn: 0,
            reclaim_erases: 0,
            gc_erases: 0,
            gc_relocations: 0,
            scheduler: PlaneScheduler::default(),
            fault_tolerant: false,
            bad_blocks: vec![false; blocks],
            spare_blocks: 0,
            read_only: false,
            program_fails: 0,
            meta: None,
        }
    }

    /// Sets the plane count the batched entry points schedule across.
    /// Blocks partition onto planes as `block % planes`; any plane count
    /// produces bit-identical array state (see [`crate::pe::scheduler`])
    /// — planes change *how much* of a batch the engine fans out at
    /// once, never *what* it computes.
    ///
    /// # Panics
    ///
    /// Panics when `planes` is zero.
    #[must_use]
    pub fn with_planes(mut self, planes: usize) -> Self {
        self.scheduler = PlaneScheduler::new(planes);
        self
    }

    /// Arms the hardened fault-tolerant FTL with `spare_blocks` spares:
    /// grown-bad blocks and program-fail blocks are retired (live pages
    /// relocated), each retirement consuming one spare, and spare
    /// exhaustion degrades the controller to read-only instead of
    /// corrupting or panicking. The logical capacity shrinks by the
    /// spare pool so retirements never strand live data.
    ///
    /// # Panics
    ///
    /// Panics when the array cannot fund the pool (`spare_blocks + 2 >
    /// blocks` — one block stays GC over-provisioning) or when pages
    /// have already been written (capacity cannot shrink under data).
    #[must_use]
    pub fn with_fault_tolerance(mut self, spare_blocks: usize) -> Self {
        assert!(
            spare_blocks + 2 <= self.array.config().blocks,
            "spare pool too large: need >= 2 non-spare blocks"
        );
        assert!(
            self.state.iter().all(|s| *s == PageState::Free),
            "enable fault tolerance before writing"
        );
        self.fault_tolerant = true;
        self.spare_blocks = spare_blocks;
        self
    }

    /// Arms crash-consistent metadata: takes a checkpoint now and
    /// journals every subsequent metadata mutation, re-checkpointing
    /// every `interval` controller ops (clamped to at least 1). See
    /// [`Self::crash_image`].
    pub fn enable_crash_consistency(&mut self, interval: u64) {
        self.meta = Some(MetaJournal {
            interval: interval.max(1),
            since_checkpoint: 0,
            checkpoint: self.meta_checkpoint(),
            deltas: Vec::new(),
        });
    }

    /// Builder form of [`Self::enable_crash_consistency`].
    #[must_use]
    pub fn with_crash_consistency(mut self, interval: u64) -> Self {
        self.enable_crash_consistency(interval);
        self
    }

    /// Installs (or clears) the deterministic fault plan on the wrapped
    /// array. See [`crate::fault::FaultPlan`].
    pub fn set_faults(&mut self, plan: Option<FaultPlan>) {
        self.array.set_faults(plan);
    }

    /// Builder form of [`Self::set_faults`].
    #[must_use]
    pub fn with_faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.set_faults(plan);
        self
    }

    /// The active fault plan, if any.
    #[must_use]
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.array.faults()
    }

    /// Whether the hardened fault-tolerant FTL is armed.
    #[must_use]
    pub fn fault_tolerant(&self) -> bool {
        self.fault_tolerant
    }

    /// Whether the controller has degraded to read-only mode.
    #[must_use]
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Spare blocks provisioned for retirements.
    #[must_use]
    pub fn spare_blocks(&self) -> usize {
        self.spare_blocks
    }

    /// Blocks retired into the grown-bad table so far.
    #[must_use]
    pub fn retired_blocks(&self) -> usize {
        self.bad_blocks.iter().filter(|&&b| b).count()
    }

    /// Whether `block` is in the grown-bad table.
    #[must_use]
    pub fn is_block_retired(&self, block: usize) -> bool {
        self.bad_blocks.get(block).copied().unwrap_or(false)
    }

    /// Page programs that reported a failed status so far.
    #[must_use]
    pub fn program_fail_count(&self) -> u64 {
        self.program_fails
    }

    /// Whether crash-consistent metadata journaling is enabled.
    #[must_use]
    pub fn crash_consistent(&self) -> bool {
        self.meta.is_some()
    }

    /// Metadata deltas journaled since the last checkpoint (0 when
    /// crash consistency is disabled).
    #[must_use]
    pub fn pending_deltas(&self) -> usize {
        self.meta.as_ref().map_or(0, |j| j.deltas.len())
    }

    /// The multi-plane scheduler configuration.
    #[must_use]
    pub fn scheduler(&self) -> &PlaneScheduler {
        &self.scheduler
    }

    /// The underlying array (for analyses).
    #[must_use]
    pub fn array(&self) -> &NandArray {
        &self.array
    }

    /// Mutable cell-state access (see [`NandArray::population_mut`]):
    /// charge-level mutation cannot violate the page map, so reliability
    /// models may age the analog state of a mapped array in place.
    pub fn population_mut(&mut self) -> &mut crate::population::CellPopulation {
        self.array.population_mut()
    }

    /// Logical capacity in pages: the physical page count less one
    /// block of over-provisioning and less the spare-block pool, so
    /// garbage collection always has stale pages to harvest and
    /// retirements never strand live data.
    #[must_use]
    pub fn logical_capacity(&self) -> usize {
        self.array.config().logical_pages()
            - self.spare_blocks * self.array.config().pages_per_block
    }

    /// Writes `bits` to the next logical page (cycling through
    /// [`Self::logical_capacity`]), reclaiming or garbage-collecting
    /// blocks as needed. Returns the physical address written. The
    /// cursor only advances on success, so a failed write retries the
    /// same logical page.
    ///
    /// # Errors
    ///
    /// Page-width mismatches, capacity exhaustion,
    /// [`ArrayError::ReadOnly`] after spare exhaustion, and device
    /// errors propagate.
    pub fn write(&mut self, bits: &[bool]) -> Result<PageAddress> {
        let addr = self.write_logical_core(self.next_lpn, bits)?;
        self.set_next_lpn((self.next_lpn + 1) % self.logical_capacity());
        self.note_op();
        Ok(addr)
    }

    /// Writes `bits` as the new contents of logical page `lpn`. The
    /// previous physical copy (if any) becomes stale; nothing live is
    /// ever erased. In fault-tolerant mode a failed program status
    /// retires the block and retries on an alternate one.
    ///
    /// # Errors
    ///
    /// [`ArrayError::WrongPageWidth`] for bad buffers,
    /// [`ArrayError::AddressOutOfRange`] for an `lpn` beyond the logical
    /// capacity, [`ArrayError::CapacityExhausted`] when every page holds
    /// live data, [`ArrayError::ReadOnly`] after spare exhaustion, and
    /// device errors.
    pub fn write_logical(&mut self, lpn: usize, bits: &[bool]) -> Result<PageAddress> {
        let addr = self.write_logical_core(lpn, bits)?;
        self.note_op();
        Ok(addr)
    }

    fn write_logical_core(&mut self, lpn: usize, bits: &[bool]) -> Result<PageAddress> {
        let cfg = self.array.config();
        if bits.len() != cfg.page_width {
            return Err(ArrayError::WrongPageWidth {
                got: bits.len(),
                expected: cfg.page_width,
            });
        }
        if lpn >= self.logical_capacity() {
            return Err(ArrayError::AddressOutOfRange {
                kind: "logical page",
                index: lpn,
                len: self.logical_capacity(),
            });
        }
        // The previous copy stays live until the replacement is safely
        // on the array: a failed overwrite must never cost the only
        // copy of the page. (The old copy's block therefore cannot be
        // reclaimed during this allocation — worst case that means one
        // extra GC relocation, never data loss.)
        let addr = self.place_bits(bits)?;
        self.commit_live(lpn, addr);
        gnr_telemetry::counter_add!("ftl.host_pages_written", 1);
        Ok(addr)
    }

    /// Allocates a page and programs `bits` into it, retrying on an
    /// alternate block (and retiring the failed one) in fault-tolerant
    /// mode. On success the page is **not** yet marked — the caller
    /// decides live vs. relocated-stale.
    fn place_bits(&mut self, bits: &[bool]) -> Result<PageAddress> {
        loop {
            let addr = self.allocate()?;
            match self.array.program_page(addr.block, addr.page, bits) {
                Ok(()) => return Ok(addr),
                Err(e @ (ArrayError::VerifyFailed { .. } | ArrayError::ProgramFailed { .. }))
                    if self.fault_tolerant =>
                {
                    // Pulses were applied: the page is consumed but holds
                    // no live data. Retire the whole block — a page that
                    // fails its program status keeps failing until the
                    // block is erased, and a block that fails programs is
                    // on its way out — then retry on an alternate block.
                    let slot = self.slot(addr);
                    self.set_state(slot, PageState::Stale);
                    self.note_program_fail(addr);
                    self.retire_block(addr.block)?;
                    let _ = e;
                }
                Err(e) => {
                    // Pulses were applied: the page is consumed but holds
                    // no live data. Retire it so allocation never offers
                    // it again.
                    let slot = self.slot(addr);
                    self.set_state(slot, PageState::Stale);
                    return Err(e);
                }
            }
        }
    }

    /// Marks `addr` as the live copy of `lpn`, staling the previous
    /// copy.
    fn commit_live(&mut self, lpn: usize, addr: PageAddress) {
        if let Some(old) = self.map[lpn] {
            let slot = self.slot(old);
            self.set_state(slot, PageState::Stale);
        }
        self.set_map(lpn, Some(addr));
        let slot = self.slot(addr);
        self.set_state(slot, PageState::Live(lpn));
    }

    /// Writes a batch of pages through the multi-plane scheduler: the
    /// FTL decisions (allocation, stale marking, reclaim/GC) run
    /// sequentially — they are the decisions sequential writes would
    /// make, address for address — while the accumulated page programs
    /// flush to the array as scheduled multi-plane rounds. `None` lpns
    /// take the rotating cursor, exactly like [`Self::write`].
    ///
    /// The flush boundary is reclaim/GC: those erase or relocate
    /// physical pages and must observe every pending program, so the
    /// batch splits there. Between boundaries, programs on distinct
    /// blocks merge into rounds and (absent injected faults) the final
    /// state is bit-identical to the sequential write sequence.
    ///
    /// Results are index-aligned with `jobs`, mirroring
    /// [`Self::read_batch`]: an invalid job (width or range) fails alone
    /// without rejecting the batch, and a program failure is reported on
    /// the job that hit it with [`Self::write_logical`]'s guarantee
    /// intact — a failed overwrite never costs the newest copy that
    /// *did* verify. In fault-tolerant mode failed jobs retire their
    /// block and retry on alternates, exactly like sequential writes. A
    /// fatal allocation error (capacity, read-only) fails the remaining
    /// jobs with clones of it.
    #[must_use]
    pub fn write_batch(
        &mut self,
        jobs: Vec<(Option<usize>, Vec<bool>)>,
    ) -> Vec<Result<PageAddress>> {
        let _zone = gnr_telemetry::zone!("ftl.write_batch");
        gnr_telemetry::counter_add!("ftl.host_pages_written", jobs.len() as u64);
        let cfg = self.array.config();
        let mut out: Vec<Option<Result<PageAddress>>> = jobs.iter().map(|_| None).collect();
        let mut pending: Vec<PendingProgram> = Vec::new();
        // Cursor-assigned jobs plan against a *provisional* cursor;
        // `self.next_lpn` commits per job as its program verifies (in
        // flush), so a verify failure leaves the cursor on the failed
        // logical page — `write`'s retry-the-same-page contract.
        let mut cursor = self.next_lpn;
        let mut fatal: Option<ArrayError> = None;
        for (job, (lpn, bits)) in jobs.into_iter().enumerate() {
            if bits.len() != cfg.page_width {
                out[job] = Some(Err(ArrayError::WrongPageWidth {
                    got: bits.len(),
                    expected: cfg.page_width,
                }));
                continue;
            }
            if lpn.is_some_and(|l| l >= self.logical_capacity()) {
                out[job] = Some(Err(ArrayError::AddressOutOfRange {
                    kind: "logical page",
                    index: lpn.expect("checked some"),
                    len: self.logical_capacity(),
                }));
                continue;
            }
            let (lpn, cursor_assigned) = match lpn {
                Some(l) => (l, false),
                None => {
                    let l = cursor;
                    cursor = (cursor + 1) % self.logical_capacity();
                    (l, true)
                }
            };
            // Reclaim/GC must see every pending program: flush first,
            // then let the ordinary allocator erase/relocate.
            let addr = match self.scan_free() {
                Some(addr) => Some(addr),
                None => {
                    self.flush_programs(&mut pending, &mut out);
                    match self.allocate() {
                        Ok(addr) => Some(addr),
                        Err(e) => {
                            out[job] = Some(Err(e.clone()));
                            fatal = Some(e);
                            None
                        }
                    }
                }
            };
            let Some(addr) = addr else { break };
            // Optimistic lifecycle marking, in the same order the
            // sequential path would apply it, so every later allocation
            // and reclaim decision matches the sequential replay. The
            // superseded copy is remembered so a verify failure can
            // restore it — it stays physically intact until the next
            // flush boundary.
            let prev = self.map[lpn];
            if let Some(old) = prev {
                let slot = self.slot(old);
                self.set_state(slot, PageState::Stale);
            }
            self.set_map(lpn, Some(addr));
            let slot = self.slot(addr);
            self.set_state(slot, PageState::Live(lpn));
            pending.push(PendingProgram {
                job,
                lpn,
                prev,
                addr,
                bits,
                cursor_assigned,
            });
        }
        self.flush_programs(&mut pending, &mut out);
        self.note_op();
        out.into_iter()
            .enumerate()
            .map(|(job, r)| {
                r.unwrap_or_else(|| {
                    Err(fatal.clone().unwrap_or(ArrayError::AddressOutOfRange {
                        kind: "batch job",
                        index: job,
                        len: 0,
                    }))
                })
            })
            .collect()
    }

    /// Executes the pending planned programs as one scheduled stream,
    /// writing each job's outcome into `out`.
    ///
    /// Failure handling walks the results in plan order tracking, per
    /// logical page, the newest copy that verified: on a failure the
    /// consumed page is retired stale and — when the failed copy is the
    /// currently-mapped one — the mapping rolls back to that last good
    /// copy, matching the sequential path's "a failed overwrite never
    /// costs the only copy" guarantee. In fault-tolerant mode a second
    /// pass then retires the failed blocks and replays every failed
    /// job's program on an alternate block (superseded same-batch
    /// rewrites land and immediately stale, preserving plan order).
    fn flush_programs(
        &mut self,
        pending: &mut Vec<PendingProgram>,
        out: &mut [Option<Result<PageAddress>>],
    ) {
        if pending.is_empty() {
            return;
        }
        let keep_bits = self.fault_tolerant;
        let mut commands = Vec::with_capacity(pending.len());
        let mut planned = Vec::with_capacity(pending.len());
        for p in pending.drain(..) {
            let kept = keep_bits.then(|| p.bits.clone());
            commands.push(PeCommand::Program {
                block: p.addr.block,
                page: p.addr.page,
                bits: p.bits,
            });
            planned.push((p.job, p.lpn, p.prev, p.addr, p.cursor_assigned, kept));
        }
        let execution = self.scheduler.execute(&mut self.array, commands);
        let mut last_good: HashMap<usize, Option<PageAddress>> = HashMap::new();
        let mut failed: Vec<usize> = Vec::new();
        for (k, (result, &(job, lpn, prev, addr, _, _))) in
            execution.results.iter().zip(&planned).enumerate()
        {
            let good = last_good.entry(lpn).or_insert(prev);
            match result {
                Ok(_) => {
                    *good = Some(addr);
                    out[job] = Some(Ok(addr));
                }
                Err(e) => {
                    // Pulses landed but the page never verified: retire
                    // it, and if it is the live mapping, fall back to
                    // the newest verified copy of this logical page.
                    let slot = self.slot(addr);
                    self.set_state(slot, PageState::Stale);
                    if self.map[lpn] == Some(addr) {
                        self.set_map(lpn, *good);
                        if let Some(g) = *good {
                            let slot = self.slot(g);
                            self.set_state(slot, PageState::Live(lpn));
                        }
                    }
                    out[job] = Some(Err(e.clone()));
                    failed.push(k);
                }
            }
        }
        if self.fault_tolerant && !failed.is_empty() {
            // The newest planned job per lpn: a retried older job must
            // never resurrect content a later same-batch job superseded.
            let mut newest: HashMap<usize, usize> = HashMap::new();
            for (k, &(_, lpn, ..)) in planned.iter().enumerate() {
                newest.insert(lpn, k);
            }
            for &k in &failed {
                let (job, lpn, _, addr, _, ref kept) = planned[k];
                let retryable = matches!(
                    out[job],
                    Some(Err(
                        ArrayError::VerifyFailed { .. } | ArrayError::ProgramFailed { .. }
                    ))
                );
                if !retryable {
                    continue;
                }
                self.note_program_fail(addr);
                if let Err(e) = self.retire_block(addr.block) {
                    out[job] = Some(Err(e));
                    continue;
                }
                let bits = kept.clone().expect("fault-tolerant flush keeps bits");
                match self.place_bits(&bits) {
                    Ok(new_addr) => {
                        if newest[&lpn] == k {
                            self.commit_live(lpn, new_addr);
                        } else {
                            // Superseded within the batch: the program
                            // landed (plan-order page consumption, like
                            // the sequential replay) but a newer copy is
                            // already live.
                            let slot = self.slot(new_addr);
                            self.set_state(slot, PageState::Stale);
                        }
                        out[job] = Some(Ok(new_addr));
                    }
                    Err(e) => out[job] = Some(Err(e)),
                }
            }
        }
        // The rotating cursor commits as its jobs (finally) succeed, and
        // stops at the first cursor-assigned failure: a retry then
        // targets the same logical page, exactly like sequential
        // `write`.
        for &(job, lpn, _, _, cursor_assigned, _) in &planned {
            if !cursor_assigned {
                continue;
            }
            match out[job] {
                Some(Ok(_)) => self.set_next_lpn((lpn + 1) % self.logical_capacity()),
                _ => break,
            }
        }
    }

    /// Reads a batch of logical pages through the multi-plane scheduler.
    /// Results are index-aligned with `lpns`; unmapped or out-of-range
    /// logical pages return [`ArrayError::AddressOutOfRange`] per entry
    /// (the read-miss contract of [`Self::read_logical`]) without
    /// aborting the batch. Reads keep working in read-only mode.
    #[must_use]
    pub fn read_batch(&mut self, lpns: &[usize]) -> Vec<Result<Vec<bool>>> {
        let _zone = gnr_telemetry::zone!("ftl.read_batch");
        let mut results: Vec<Option<Result<Vec<bool>>>> = Vec::with_capacity(lpns.len());
        let mut commands = Vec::new();
        let mut scheduled: Vec<usize> = Vec::new();
        for (j, &lpn) in lpns.iter().enumerate() {
            match self.map.get(lpn).copied().flatten() {
                Some(addr) => {
                    commands.push(PeCommand::Read {
                        block: addr.block,
                        page: addr.page,
                    });
                    scheduled.push(j);
                    results.push(None);
                }
                None => results.push(Some(Err(ArrayError::AddressOutOfRange {
                    kind: "logical page",
                    index: lpn,
                    len: self.logical_capacity(),
                }))),
            }
        }
        let execution = self.scheduler.execute(&mut self.array, commands);
        for (result, &j) in execution.results.into_iter().zip(&scheduled) {
            results[j] = Some(result.map(|outcome| match outcome {
                CommandOutcome::Read(bits) => bits,
                other => unreachable!("read command returned {other:?}"),
            }));
        }
        results
            .into_iter()
            .map(|r| r.expect("every lpn was scheduled or rejected"))
            .collect()
    }

    /// Reads a physical page back.
    ///
    /// # Errors
    ///
    /// Address errors propagate.
    pub fn read(&mut self, addr: PageAddress) -> Result<Vec<bool>> {
        self.array.read_page(addr.block, addr.page)
    }

    /// Reads the live copy of logical page `lpn`.
    ///
    /// # Errors
    ///
    /// [`ArrayError::AddressOutOfRange`] when `lpn` has never been
    /// written (or is beyond capacity).
    pub fn read_logical(&mut self, lpn: usize) -> Result<Vec<bool>> {
        let addr = self
            .map
            .get(lpn)
            .copied()
            .flatten()
            .ok_or(ArrayError::AddressOutOfRange {
                kind: "logical page",
                index: lpn,
                len: self.logical_capacity(),
            })?;
        self.read(addr)
    }

    /// Explicitly erases a block. Live pages in it are lost — their
    /// logical mappings are cleared — so this is the caller's
    /// data-destroying escape hatch, not the reclaim path. In
    /// fault-tolerant mode a grown-bad erase status retires the block
    /// instead of failing (the destructive contract is honoured either
    /// way).
    ///
    /// # Errors
    ///
    /// Address and device errors propagate; [`ArrayError::ReadOnly`]
    /// when the controller has degraded to read-only.
    pub fn erase_block(&mut self, block: usize) -> Result<()> {
        if self.read_only {
            return Err(ArrayError::ReadOnly);
        }
        let cfg = self.array.config();
        match self.array.erase_block(block) {
            Ok(()) => {
                for page in 0..cfg.pages_per_block {
                    let slot = block * cfg.pages_per_block + page;
                    if let PageState::Live(lpn) = self.state[slot] {
                        self.set_map(lpn, None);
                    }
                    self.set_state(slot, PageState::Free);
                }
            }
            Err(ArrayError::BlockRetired { .. }) if self.fault_tolerant => {
                // The medium refused the erase. The caller asked for the
                // data to go away, so clear the mappings, then retire
                // the grown-bad block (parking its slots stale).
                for page in 0..cfg.pages_per_block {
                    let slot = block * cfg.pages_per_block + page;
                    if let PageState::Live(lpn) = self.state[slot] {
                        self.set_map(lpn, None);
                    }
                    self.set_state(slot, PageState::Stale);
                }
                self.retire_block(block)?;
            }
            Err(e) => return Err(e),
        }
        self.note_op();
        Ok(())
    }

    /// Retires `block` into the grown-bad table: relocates its live
    /// pages to healthy blocks, parks every slot stale so no allocator
    /// path ever offers it again, and consumes one spare. Idempotent —
    /// retiring an already-retired block is a no-op returning `Ok(0)`.
    ///
    /// Returns the number of live pages relocated.
    ///
    /// # Errors
    ///
    /// [`ArrayError::ReadOnly`] when the spare pool cannot absorb
    /// another retirement (the controller degrades to read-only; live
    /// pages stay readable in place — grown-bad blocks fail erase, not
    /// read). Address and device errors propagate.
    pub fn retire_block(&mut self, block: usize) -> Result<usize> {
        let cfg = self.array.config();
        if block >= cfg.blocks {
            return Err(ArrayError::AddressOutOfRange {
                kind: "block",
                index: block,
                len: cfg.blocks,
            });
        }
        if self.bad_blocks[block] {
            return Ok(0);
        }
        if self.retired_blocks() >= self.spare_blocks {
            self.enter_read_only();
            return Err(ArrayError::ReadOnly);
        }
        self.mark_retired(block);
        let first = block * cfg.pages_per_block;
        // Park the free slots first so no relocation below can allocate
        // into the dying block.
        for page in 0..cfg.pages_per_block {
            if self.state[first + page] == PageState::Free {
                self.set_state(first + page, PageState::Stale);
            }
        }
        let mut relocated = 0usize;
        for page in 0..cfg.pages_per_block {
            if let PageState::Live(lpn) = self.state[first + page] {
                // Grown-bad blocks refuse erase, not read: the live copy
                // is intact and movable.
                let bits = self.array.read_page(block, page)?;
                let addr = self.place_bits(&bits)?;
                self.commit_live(lpn, addr);
                relocated += 1;
            }
        }
        gnr_telemetry::counter_add!("ftl.blocks_retired", 1);
        gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::BlockRetired {
            block: block as u64,
            relocated: relocated as u64,
        });
        Ok(relocated)
    }

    /// Wear statistics.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed array; address errors are internal.
    pub fn wear_stats(&self) -> Result<WearStats> {
        let cfg = self.array.config();
        let mut min = u64::MAX;
        let mut max = 0;
        let mut total = 0;
        for b in 0..cfg.blocks {
            let e = self.array.erase_count(b)?;
            min = min.min(e);
            max = max.max(e);
            total += e;
        }
        Ok(WearStats {
            min_erases: min,
            max_erases: max,
            total_erases: total,
            reclaim_erases: self.reclaim_erases,
            gc_erases: self.gc_erases,
            gc_relocations: self.gc_relocations,
        })
    }

    /// Jumps the whole array through `cycles` composed P/E cycles of
    /// `recipe` (see [`NandArray::run_epoch`]) and resets the page
    /// lifecycle to match: the epoch ends with every page physically
    /// erased, so all logical mappings are dropped, every slot returns
    /// to `Free` and the allocation scan restarts at slot 0. Retired
    /// blocks stay retired — their slots re-park stale. Wear state
    /// (injected charge, op counters, per-block erase counts) carries
    /// the epoch's ageing forward — this is the time-scale-jumping
    /// primitive endurance campaigns alternate with full-fidelity
    /// observation windows.
    ///
    /// # Errors
    ///
    /// Device errors from the composed cycles propagate.
    pub fn run_epoch(
        &mut self,
        recipe: &gnr_flash::engine::CycleRecipe,
        cycles: u64,
    ) -> Result<crate::population::EpochReport> {
        let _zone = gnr_telemetry::zone!("ftl.epoch");
        gnr_telemetry::counter_add!("ftl.epoch_jumps", 1);
        gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::EpochJump { cycles });
        let report = self.array.run_epoch(recipe, cycles)?;
        self.meta_reset();
        let cfg = self.array.config();
        for block in 0..cfg.blocks {
            if self.bad_blocks[block] {
                let first = block * cfg.pages_per_block;
                for slot in first..first + cfg.pages_per_block {
                    self.set_state(slot, PageState::Stale);
                }
            }
        }
        self.note_op();
        Ok(report)
    }

    /// Captures the controller's full serializable state: array state
    /// plus the FTL metadata (see [`ControllerSnapshot`]).
    ///
    /// Snapshots are only taken *between* operations, so there is no
    /// pending-program state to capture — batched writes flush inside
    /// one [`Self::write_batch`] call.
    #[must_use]
    pub fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            array: self.array.snapshot_state(),
            meta: self.meta_checkpoint(),
        }
    }

    /// Encodes the current metadata as a checkpoint.
    #[must_use]
    #[allow(clippy::cast_possible_wrap)]
    fn meta_checkpoint(&self) -> MetaCheckpoint {
        let ppb = self.array.config().pages_per_block;
        MetaCheckpoint {
            map: self
                .map
                .iter()
                .map(|addr| addr.map_or(-1, |a| (a.block * ppb + a.page) as i64))
                .collect(),
            state: self.state.iter().map(|&s| state_code(s)).collect(),
            next_slot: self.next_slot as u64,
            next_lpn: self.next_lpn as u64,
            reclaim_erases: self.reclaim_erases,
            gc_erases: self.gc_erases,
            gc_relocations: self.gc_relocations,
            planes: self.scheduler.planes() as u64,
            bad_blocks: self.bad_blocks.clone(),
            spare_blocks: self.spare_blocks as u64,
            fault_tolerant: self.fault_tolerant,
            read_only: self.read_only,
            program_fails: self.program_fails,
        }
    }

    /// Captures everything that survives a power cut: the array medium
    /// plus the last metadata checkpoint and the deltas journaled since
    /// it. See [`CrashImage`].
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] when crash consistency was never
    /// enabled ([`Self::enable_crash_consistency`]).
    pub fn crash_image(&self) -> Result<CrashImage> {
        let journal = self.meta.as_ref().ok_or_else(|| {
            ArrayError::Snapshot("crash consistency is not enabled on this controller".into())
        })?;
        Ok(CrashImage {
            array: self.array.snapshot_state(),
            checkpoint: journal.checkpoint.clone(),
            deltas: journal.deltas.clone(),
            interval: journal.interval,
        })
    }

    /// Rebuilds a controller from a device blueprint and a snapshot —
    /// the inverse of [`Self::snapshot`]. The restored controller is
    /// digest-identical ([`Self::state_digest`]) to the snapshotted one
    /// and continues any workload bit-identically.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on shape mismatches or out-of-range
    /// encodings; array restore errors propagate.
    pub fn restore(
        blueprint: FloatingGateTransistor,
        snapshot: ControllerSnapshot,
    ) -> Result<Self> {
        let array = NandArray::restore_state(blueprint, snapshot.array)?;
        Self::finish_restore(array, &snapshot.meta)
    }

    /// Rebuilds a controller from a device backend and a snapshot — the
    /// backend-polymorphic sibling of [`Self::restore`]. GNR restores
    /// through this path are digest-identical to [`Self::restore`] over
    /// the same blueprint.
    ///
    /// # Errors
    ///
    /// As [`Self::restore`]; additionally
    /// [`ArrayError::UnsupportedBackend`] when a PCM backend is given a
    /// snapshot carrying floating-gate variation deltas.
    pub fn restore_backend(backend: &CellBackend, snapshot: ControllerSnapshot) -> Result<Self> {
        let array = NandArray::restore_state_backend(backend, snapshot.array)?;
        Self::finish_restore(array, &snapshot.meta)
    }

    fn finish_restore(array: NandArray, meta: &MetaCheckpoint) -> Result<Self> {
        let controller = Self::from_parts(array, meta)?;
        // The digest is a full-state fold — only pay for it when the
        // journal will actually keep the event.
        if gnr_telemetry::enabled() {
            gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::CheckpointRestore {
                digest: controller.state_digest(),
            });
        }
        Ok(controller)
    }

    /// Recovers a controller from a power-loss [`CrashImage`]: restores
    /// the array medium, applies the metadata checkpoint, replays the
    /// journaled deltas, and re-arms a fresh journal at the same
    /// cadence. The recovered controller is digest-identical to the one
    /// that lost power.
    ///
    /// # Errors
    ///
    /// [`ArrayError::Snapshot`] on shape mismatches or out-of-range
    /// encodings; array restore errors propagate.
    pub fn recover(blueprint: FloatingGateTransistor, image: &CrashImage) -> Result<Self> {
        let array = NandArray::restore_state(blueprint, image.array.clone())?;
        Self::finish_recover(array, image)
    }

    /// Backend-polymorphic sibling of [`Self::recover`].
    ///
    /// # Errors
    ///
    /// As [`Self::recover`]; additionally
    /// [`ArrayError::UnsupportedBackend`] when a PCM backend is given an
    /// image carrying floating-gate variation deltas.
    pub fn recover_backend(backend: &CellBackend, image: &CrashImage) -> Result<Self> {
        let array = NandArray::restore_state_backend(backend, image.array.clone())?;
        Self::finish_recover(array, image)
    }

    fn finish_recover(array: NandArray, image: &CrashImage) -> Result<Self> {
        let mut controller = Self::from_parts(array, &image.checkpoint)?;
        for delta in &image.deltas {
            controller.apply_delta(delta)?;
        }
        controller.meta = Some(MetaJournal {
            interval: image.interval.max(1),
            since_checkpoint: 0,
            checkpoint: controller.meta_checkpoint(),
            deltas: Vec::new(),
        });
        gnr_telemetry::counter_add!("ftl.recoveries", 1);
        gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::RecoveryReplay {
            deltas: image.deltas.len() as u64,
        });
        Ok(controller)
    }

    fn from_parts(array: NandArray, meta: &MetaCheckpoint) -> Result<Self> {
        let config = array.config();
        if config.blocks < 2 {
            return Err(ArrayError::Snapshot(
                "controller snapshots need >= 2 blocks".into(),
            ));
        }
        let pages = config.pages();
        let spare_blocks = usize::try_from(meta.spare_blocks)
            .ok()
            .filter(|&s| s + 2 <= config.blocks)
            .ok_or_else(|| ArrayError::Snapshot(format!("bad spare pool {}", meta.spare_blocks)))?;
        let logical = config.logical_pages() - spare_blocks * config.pages_per_block;
        if meta.map.len() != pages {
            return Err(ArrayError::Snapshot(format!(
                "map has {} entries, shape wants {pages}",
                meta.map.len()
            )));
        }
        if meta.state.len() != pages {
            return Err(ArrayError::Snapshot(format!(
                "state has {} entries, shape wants {pages}",
                meta.state.len()
            )));
        }
        if meta.bad_blocks.len() != config.blocks {
            return Err(ArrayError::Snapshot(format!(
                "bad-block table has {} entries, shape wants {}",
                meta.bad_blocks.len(),
                config.blocks
            )));
        }
        let ppb = config.pages_per_block;
        let map = meta
            .map
            .iter()
            .map(|&slot| match slot {
                -1 => Ok(None),
                s if s >= 0 && (s as usize) < pages => Ok(Some(PageAddress {
                    block: s as usize / ppb,
                    page: s as usize % ppb,
                })),
                s => Err(ArrayError::Snapshot(format!("bad map slot {s}"))),
            })
            .collect::<Result<Vec<Option<PageAddress>>>>()?;
        let state = meta
            .state
            .iter()
            .map(|&s| match s {
                -1 => Ok(PageState::Free),
                -2 => Ok(PageState::Stale),
                lpn if lpn >= 0 && (lpn as usize) < logical => Ok(PageState::Live(lpn as usize)),
                bad => Err(ArrayError::Snapshot(format!("bad page state {bad}"))),
            })
            .collect::<Result<Vec<PageState>>>()?;
        let cursor = |name: &str, v: u64, len: usize| -> Result<usize> {
            usize::try_from(v)
                .ok()
                .filter(|&c| c <= len)
                .ok_or_else(|| ArrayError::Snapshot(format!("bad cursor `{name}` = {v}")))
        };
        let planes = usize::try_from(meta.planes)
            .ok()
            .filter(|&p| p > 0)
            .ok_or_else(|| ArrayError::Snapshot(format!("bad plane count {}", meta.planes)))?;
        Ok(Self {
            array,
            map,
            state,
            next_slot: cursor("next_slot", meta.next_slot, pages)?,
            next_lpn: cursor("next_lpn", meta.next_lpn, logical)?,
            reclaim_erases: meta.reclaim_erases,
            gc_erases: meta.gc_erases,
            gc_relocations: meta.gc_relocations,
            scheduler: PlaneScheduler::new(planes),
            fault_tolerant: meta.fault_tolerant,
            bad_blocks: meta.bad_blocks.clone(),
            spare_blocks,
            read_only: meta.read_only,
            program_fails: meta.program_fails,
            meta: None,
        })
    }

    /// Replays one journaled delta onto the live metadata. Used only
    /// during recovery (the journal is not armed yet, so nothing is
    /// re-journaled).
    fn apply_delta(&mut self, delta: &MetaDelta) -> Result<()> {
        let cfg = self.array.config();
        let pages = cfg.pages();
        let logical = self.logical_capacity();
        let bad = |what: &str, v: i64| ArrayError::Snapshot(format!("bad delta {what} {v}"));
        match *delta {
            MetaDelta::MapSet { lpn, slot } => {
                let lpn = usize::try_from(lpn)
                    .ok()
                    .filter(|&l| l < logical)
                    .ok_or_else(|| ArrayError::Snapshot(format!("bad delta lpn {lpn}")))?;
                self.map[lpn] = match slot {
                    -1 => None,
                    s if s >= 0 && (s as usize) < pages => Some(PageAddress {
                        block: s as usize / cfg.pages_per_block,
                        page: s as usize % cfg.pages_per_block,
                    }),
                    s => return Err(bad("map slot", s)),
                };
            }
            MetaDelta::StateSet { slot, code } => {
                let slot = usize::try_from(slot)
                    .ok()
                    .filter(|&s| s < pages)
                    .ok_or_else(|| ArrayError::Snapshot(format!("bad delta slot {slot}")))?;
                self.state[slot] = match code {
                    -1 => PageState::Free,
                    -2 => PageState::Stale,
                    lpn if lpn >= 0 && (lpn as usize) < logical => PageState::Live(lpn as usize),
                    c => return Err(bad("state code", c)),
                };
            }
            MetaDelta::NextSlot { value } => {
                self.next_slot = usize::try_from(value)
                    .ok()
                    .filter(|&c| c <= pages)
                    .ok_or_else(|| ArrayError::Snapshot(format!("bad delta cursor {value}")))?;
            }
            MetaDelta::NextLpn { value } => {
                self.next_lpn = usize::try_from(value)
                    .ok()
                    .filter(|&c| c <= logical)
                    .ok_or_else(|| ArrayError::Snapshot(format!("bad delta cursor {value}")))?;
            }
            MetaDelta::Counters {
                reclaim_erases,
                gc_erases,
                gc_relocations,
                program_fails,
            } => {
                self.reclaim_erases = reclaim_erases;
                self.gc_erases = gc_erases;
                self.gc_relocations = gc_relocations;
                self.program_fails = program_fails;
            }
            MetaDelta::BlockRetired { block } => {
                let block = usize::try_from(block)
                    .ok()
                    .filter(|&b| b < cfg.blocks)
                    .ok_or_else(|| ArrayError::Snapshot(format!("bad delta block {block}")))?;
                self.bad_blocks[block] = true;
            }
            MetaDelta::ReadOnly => self.read_only = true,
            MetaDelta::MetaReset => {
                self.map.fill(None);
                self.state.fill(PageState::Free);
                self.next_slot = 0;
            }
        }
        Ok(())
    }

    /// FNV-1a digest over the controller's *complete* state: every
    /// population column (charge, wear, op counters, variation deltas),
    /// page flags, per-block erase counts, the logical map, page
    /// lifecycle, allocation cursors, wear-reason counters and the
    /// fault-tolerance bookkeeping (grown-bad table, spare pool,
    /// read-only flag, program-fail count). Two controllers with equal
    /// digests continue any workload bit-identically — the
    /// restore-equals-uninterrupted assertion of checkpointed campaigns
    /// and the crash-recovery sweep compares exactly this.
    #[must_use]
    #[allow(clippy::cast_possible_wrap)]
    pub fn state_digest(&self) -> u64 {
        let pop = self.array.population();
        let mut h = FNV1A_OFFSET;
        for &q in pop.charge_column() {
            h = fnv1a_fold_f64(h, q);
        }
        for &w in pop.injected_charge_column() {
            h = fnv1a_fold_f64(h, w);
        }
        for &ops in pop.program_ops_column() {
            h = fnv1a_fold_bytes(h, &ops.to_le_bytes());
        }
        for &ops in pop.erase_ops_column() {
            h = fnv1a_fold_bytes(h, &ops.to_le_bytes());
        }
        let cfg = self.array.config();
        for b in 0..cfg.blocks {
            let e = self.array.erase_count(b).expect("block index in range");
            h = fnv1a_fold_bytes(h, &e.to_le_bytes());
        }
        for (b, p) in (0..cfg.blocks).flat_map(|b| (0..cfg.pages_per_block).map(move |p| (b, p))) {
            let erased = self
                .array
                .is_page_erased(b, p)
                .expect("page index in range");
            h = fnv1a_fold_bytes(h, &[u8::from(erased)]);
        }
        let ppb = cfg.pages_per_block;
        for addr in &self.map {
            let slot: i64 = addr.map_or(-1, |a| (a.block * ppb + a.page) as i64);
            h = fnv1a_fold_bytes(h, &slot.to_le_bytes());
        }
        for &s in &self.state {
            h = fnv1a_fold_bytes(h, &state_code(s).to_le_bytes());
        }
        for v in [
            self.next_slot as u64,
            self.next_lpn as u64,
            self.reclaim_erases,
            self.gc_erases,
            self.gc_relocations,
            self.program_fails,
            self.spare_blocks as u64,
        ] {
            h = fnv1a_fold_bytes(h, &v.to_le_bytes());
        }
        h = fnv1a_fold_bytes(
            h,
            &[u8::from(self.fault_tolerant), u8::from(self.read_only)],
        );
        for &b in &self.bad_blocks {
            h = fnv1a_fold_bytes(h, &[u8::from(b)]);
        }
        h
    }

    /// The physical address of logical page `lpn`'s live copy, if any.
    #[must_use]
    pub fn physical_of(&self, lpn: usize) -> Option<PageAddress> {
        self.map.get(lpn).copied().flatten()
    }

    /// Every logical page with a live copy, ascending — the scan order
    /// of background scrubbing.
    #[must_use]
    pub fn live_logical_pages(&self) -> Vec<usize> {
        self.map
            .iter()
            .enumerate()
            .filter_map(|(l, addr)| addr.map(|_| l))
            .collect()
    }

    /// Live pages currently mapped.
    #[must_use]
    pub fn live_pages(&self) -> usize {
        self.state
            .iter()
            .filter(|s| matches!(s, PageState::Live(_)))
            .count()
    }

    fn slot(&self, addr: PageAddress) -> usize {
        addr.block * self.array.config().pages_per_block + addr.page
    }

    // ---- journaled metadata mutation helpers -------------------------
    //
    // Every mutation of the volatile metadata goes through these, so the
    // crash-consistency delta log is complete by construction. All
    // deltas carry absolute values (idempotent replay).

    #[allow(clippy::cast_possible_wrap)]
    fn set_map(&mut self, lpn: usize, addr: Option<PageAddress>) {
        let ppb = self.array.config().pages_per_block;
        self.map[lpn] = addr;
        if let Some(journal) = self.meta.as_mut() {
            journal.deltas.push(MetaDelta::MapSet {
                lpn: lpn as u64,
                slot: addr.map_or(-1, |a| (a.block * ppb + a.page) as i64),
            });
        }
    }

    fn set_state(&mut self, slot: usize, s: PageState) {
        self.state[slot] = s;
        if let Some(journal) = self.meta.as_mut() {
            journal.deltas.push(MetaDelta::StateSet {
                slot: slot as u64,
                code: state_code(s),
            });
        }
    }

    fn set_next_slot(&mut self, value: usize) {
        self.next_slot = value;
        if let Some(journal) = self.meta.as_mut() {
            journal.deltas.push(MetaDelta::NextSlot {
                value: value as u64,
            });
        }
    }

    fn set_next_lpn(&mut self, value: usize) {
        self.next_lpn = value;
        if let Some(journal) = self.meta.as_mut() {
            journal.deltas.push(MetaDelta::NextLpn {
                value: value as u64,
            });
        }
    }

    fn journal_counters(&mut self) {
        let delta = MetaDelta::Counters {
            reclaim_erases: self.reclaim_erases,
            gc_erases: self.gc_erases,
            gc_relocations: self.gc_relocations,
            program_fails: self.program_fails,
        };
        if let Some(journal) = self.meta.as_mut() {
            journal.deltas.push(delta);
        }
    }

    fn mark_retired(&mut self, block: usize) {
        self.bad_blocks[block] = true;
        if let Some(journal) = self.meta.as_mut() {
            journal.deltas.push(MetaDelta::BlockRetired {
                block: block as u64,
            });
        }
    }

    fn enter_read_only(&mut self) {
        if self.read_only {
            return;
        }
        self.read_only = true;
        gnr_telemetry::counter_add!("ftl.read_only_entries", 1);
        if let Some(journal) = self.meta.as_mut() {
            journal.deltas.push(MetaDelta::ReadOnly);
        }
    }

    fn meta_reset(&mut self) {
        self.map.fill(None);
        self.state.fill(PageState::Free);
        self.next_slot = 0;
        if let Some(journal) = self.meta.as_mut() {
            journal.deltas.push(MetaDelta::MetaReset);
        }
    }

    fn note_program_fail(&mut self, addr: PageAddress) {
        self.program_fails += 1;
        self.journal_counters();
        gnr_telemetry::counter_add!("ftl.program_fails", 1);
        gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::ProgramFail {
            block: addr.block as u64,
            page: addr.page as u64,
        });
    }

    /// Counts one completed controller op toward the checkpoint cadence
    /// and re-checkpoints when it is due (resetting the delta log).
    fn note_op(&mut self) {
        let due = match self.meta.as_mut() {
            Some(journal) => {
                journal.since_checkpoint += 1;
                journal.since_checkpoint >= journal.interval
            }
            None => false,
        };
        if due {
            let checkpoint = self.meta_checkpoint();
            if let Some(journal) = self.meta.as_mut() {
                journal.checkpoint = checkpoint;
                journal.deltas.clear();
                journal.since_checkpoint = 0;
            }
            gnr_telemetry::counter_add!("ftl.meta_checkpoints", 1);
        }
    }

    // ---- allocation, reclaim and garbage collection ------------------

    /// Finds a free page, reclaiming or garbage-collecting when none is
    /// left. Advances the round-robin scan pointer on success. In
    /// fault-tolerant mode, blocks whose erase reports a grown-bad
    /// status are retired and the search continues.
    fn allocate(&mut self) -> Result<PageAddress> {
        if self.read_only {
            return Err(ArrayError::ReadOnly);
        }
        // Bounded loop: every round either returns, frees pages, or
        // retires a block (bounded by the spare pool, then read-only).
        for _ in 0..=2 * self.array.config().blocks + 2 {
            if let Some(addr) = self.scan_free() {
                return Ok(addr);
            }
            // No free page anywhere. Cheap path first: a fully-consumed
            // block (all pages written, none live) — erase the least
            // worn.
            if let Some(block) = self.reclaim_candidate() {
                match self.array.erase_block(block) {
                    Ok(()) => {
                        self.reclaim_erases += 1;
                        self.journal_counters();
                        gnr_telemetry::counter_add!("ftl.reclaims", 1);
                        gnr_telemetry::journal::record(
                            gnr_telemetry::journal::EventKind::Reclaim {
                                block: block as u64,
                            },
                        );
                        self.free_block_state(block);
                    }
                    Err(ArrayError::BlockRetired { .. }) if self.fault_tolerant => {
                        // Fully-stale block grew bad on its reclaim
                        // erase: nothing live to relocate, just retire.
                        self.retire_block(block)?;
                    }
                    Err(e) => return Err(e),
                }
                continue;
            }
            // GC: buffer the live pages of the least-live victim, erase
            // it, and reprogram them in place.
            self.collect_garbage()?;
        }
        Err(ArrayError::CapacityExhausted {
            live_pages: self.live_pages(),
            capacity: self.array.config().pages(),
        })
    }

    /// Round-robin scan for the next free page, skipping retired
    /// blocks.
    fn scan_free(&mut self) -> Option<PageAddress> {
        let cfg = self.array.config();
        let pages = cfg.pages();
        for off in 0..pages {
            let slot = (self.next_slot + off) % pages;
            if self.state[slot] == PageState::Free && !self.bad_blocks[slot / cfg.pages_per_block] {
                self.set_next_slot((slot + 1) % pages);
                return Some(PageAddress {
                    block: slot / cfg.pages_per_block,
                    page: slot % cfg.pages_per_block,
                });
            }
        }
        None
    }

    /// The least-worn fully-consumed block, if any: every page written,
    /// zero live, not retired.
    fn reclaim_candidate(&self) -> Option<usize> {
        let cfg = self.array.config();
        (0..cfg.blocks)
            .filter(|&b| {
                let first = b * cfg.pages_per_block;
                !self.bad_blocks[b]
                    && self.state[first..first + cfg.pages_per_block]
                        .iter()
                        .all(|s| *s == PageState::Stale)
            })
            .min_by_key(|&b| self.array.erase_count(b).unwrap_or(u64::MAX))
    }

    /// Garbage-collects the fully-written block with the fewest live
    /// pages: its live contents are read into a buffer, the block is
    /// erased, and the contents are reprogrammed into the block's first
    /// pages. Fails with [`ArrayError::CapacityExhausted`] when every
    /// page of the array is live.
    ///
    /// Failure atomicity: a mid-GC device failure (erase or reprogram
    /// verify) can lose the affected survivors — their mappings are
    /// *cleared* before the error propagates, so no logical page is
    /// ever left pointing at a freed or reallocated physical page; the
    /// loss is visible as a read miss, never as aliased data. In
    /// fault-tolerant mode nothing is lost at all: a grown-bad erase or
    /// a dried-out reprogram retires the victim and places the
    /// survivors on healthy blocks instead.
    fn collect_garbage(&mut self) -> Result<()> {
        let _zone = gnr_telemetry::zone!("ftl.gc");
        let cfg = self.array.config();
        let victim = (0..cfg.blocks)
            .filter_map(|b| {
                if self.bad_blocks[b] {
                    return None; // retired — never a GC victim
                }
                let first = b * cfg.pages_per_block;
                let states = &self.state[first..first + cfg.pages_per_block];
                if states.contains(&PageState::Free) {
                    return None; // not fully written — not a GC victim
                }
                let live = states
                    .iter()
                    .filter(|s| matches!(s, PageState::Live(_)))
                    .count();
                (live < cfg.pages_per_block).then_some((b, live))
            })
            .min_by_key(|&(b, live)| (live, self.array.erase_count(b).unwrap_or(u64::MAX)))
            .map(|(b, _)| b);
        let Some(victim) = victim else {
            return Err(ArrayError::CapacityExhausted {
                live_pages: self.live_pages(),
                capacity: cfg.pages(),
            });
        };

        // Buffer the live pages (data + logical number), then erase.
        let first = victim * cfg.pages_per_block;
        let mut survivors: Vec<(usize, Vec<bool>)> = Vec::new();
        for page in 0..cfg.pages_per_block {
            if let PageState::Live(lpn) = self.state[first + page] {
                survivors.push((lpn, self.array.read_page(victim, page)?));
                // The buffered copy supersedes the on-array one. From
                // here until each survivor is reprogrammed, its map
                // entry is cleared so a failure cannot leave it
                // pointing at a page about to be erased or reassigned.
                self.set_state(first + page, PageState::Stale);
                self.set_map(lpn, None);
            }
        }
        match self.array.erase_block(victim) {
            Ok(()) => {}
            Err(ArrayError::BlockRetired { .. }) if self.fault_tolerant => {
                // The medium refused the erase, so the victim's cells —
                // and the buffered survivors' originals — are intact.
                // Retire the victim and place the survivors on healthy
                // blocks instead.
                self.retire_block(victim)?;
                for (lpn, bits) in survivors {
                    let addr = self.place_bits(&bits)?;
                    self.commit_live(lpn, addr);
                    self.gc_relocations += 1;
                    self.journal_counters();
                    gnr_telemetry::counter_add!("ftl.gc.relocations", 1);
                    gnr_telemetry::journal::record(
                        gnr_telemetry::journal::EventKind::GcRelocation {
                            lpn: lpn as u64,
                            block: addr.block as u64,
                            page: addr.page as u64,
                        },
                    );
                }
                return Ok(());
            }
            // On erase failure the buffered survivors are the only
            // copies and there is nowhere safe to put them: they
            // surface as read misses (mappings already cleared), never
            // as aliased data.
            Err(e) => return Err(e),
        }
        self.gc_erases += 1;
        self.journal_counters();
        gnr_telemetry::counter_add!("ftl.gc.erases", 1);
        gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::GcErase {
            block: victim as u64,
            survivors: survivors.len() as u64,
        });
        self.free_block_state(victim);
        let mut page = 0usize;
        for (idx, (lpn, bits)) in survivors.iter().enumerate() {
            // A verify failure consumes a page (pulses were applied):
            // retire it and retry the survivor on the next page. Only a
            // survivor that runs out of pages is lost — and it is lost
            // *cleanly*, its mapping already cleared above. In
            // fault-tolerant mode a dried-out victim is retired instead
            // and the remaining survivors placed on healthy blocks.
            let mut last_error = None;
            let mut placed = false;
            while page < cfg.pages_per_block {
                let slot = first + page;
                match self.array.program_page(victim, page, bits) {
                    Ok(()) => {
                        self.set_state(slot, PageState::Live(*lpn));
                        self.set_map(
                            *lpn,
                            Some(PageAddress {
                                block: victim,
                                page,
                            }),
                        );
                        self.gc_relocations += 1;
                        self.journal_counters();
                        gnr_telemetry::counter_add!("ftl.gc.relocations", 1);
                        gnr_telemetry::journal::record(
                            gnr_telemetry::journal::EventKind::GcRelocation {
                                lpn: *lpn as u64,
                                block: victim as u64,
                                page: page as u64,
                            },
                        );
                        page += 1;
                        placed = true;
                        break;
                    }
                    Err(e) => {
                        self.set_state(slot, PageState::Stale);
                        if self.fault_tolerant {
                            self.note_program_fail(PageAddress {
                                block: victim,
                                page,
                            });
                        }
                        last_error = Some(e);
                        page += 1;
                    }
                }
            }
            if !placed {
                if self.fault_tolerant {
                    // The freshly-erased victim would not take its own
                    // survivors back: it is done. Retire it (relocating
                    // any survivors already placed back in) and place
                    // the rest on healthy blocks.
                    self.retire_block(victim)?;
                    for (lpn, bits) in &survivors[idx..] {
                        let addr = self.place_bits(bits)?;
                        self.commit_live(*lpn, addr);
                        self.gc_relocations += 1;
                        self.journal_counters();
                        gnr_telemetry::counter_add!("ftl.gc.relocations", 1);
                        gnr_telemetry::journal::record(
                            gnr_telemetry::journal::EventKind::GcRelocation {
                                lpn: *lpn as u64,
                                block: addr.block as u64,
                                page: addr.page as u64,
                            },
                        );
                    }
                    return Ok(());
                }
                return Err(last_error.expect("loop only exits dry after an error"));
            }
        }
        Ok(())
    }

    fn free_block_state(&mut self, block: usize) {
        let cfg = self.array.config();
        let first = block * cfg.pages_per_block;
        for slot in first..first + cfg.pages_per_block {
            debug_assert!(
                !matches!(self.state[slot], PageState::Live(_)),
                "reclaim must never erase live pages"
            );
            self.set_state(slot, PageState::Free);
        }
        // Start the next allocation scan in the reclaimed block so the
        // round-robin keeps levelling wear.
        self.set_next_slot(first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayError;
    use gnr_flash::device::FloatingGateTransistor;

    fn controller() -> FlashController {
        FlashController::new(NandConfig {
            blocks: 2,
            pages_per_block: 2,
            page_width: 4,
        })
    }

    #[test]
    fn write_read_round_trip() {
        let mut c = controller();
        let data = vec![false, true, false, true];
        let addr = c.write(&data).unwrap();
        assert_eq!(addr, PageAddress { block: 0, page: 0 });
        assert_eq!(c.read(addr).unwrap(), data);
    }

    #[test]
    fn allocation_advances_round_robin() {
        let mut c = controller();
        let d = vec![true; 4];
        let a0 = c.write(&d).unwrap();
        let a1 = c.write(&d).unwrap();
        let a2 = c.write(&d).unwrap();
        assert_eq!((a0.block, a0.page), (0, 0));
        assert_eq!((a1.block, a1.page), (0, 1));
        assert_eq!((a2.block, a2.page), (1, 0));
    }

    #[test]
    fn wraparound_reclaims_blocks() {
        let mut c = controller();
        let d = vec![false; 4];
        // 4 pages fill the array; the 5th write wraps and forces an erase.
        for _ in 0..5 {
            c.write(&d).unwrap();
        }
        let stats = c.wear_stats().unwrap();
        assert!(stats.total_erases >= 1);
        assert_eq!(stats.total_erases, stats.reclaim_erases);
    }

    #[test]
    fn wear_spread_stays_tight_under_sequential_load() {
        let mut c = controller();
        let d = vec![false; 4];
        for _ in 0..16 {
            c.write(&d).unwrap();
        }
        let stats = c.wear_stats().unwrap();
        assert!(stats.spread() <= 1, "wear spread {stats:?}");
    }

    #[test]
    fn wrong_width_write_rejected() {
        let mut c = controller();
        assert!(matches!(
            c.write(&[true]),
            Err(ArrayError::WrongPageWidth { .. })
        ));
        // The cursor did not advance: the corrected retry still lands
        // on logical page 0, physical (0, 0).
        let addr = c.write(&[false; 4]).unwrap();
        assert_eq!(addr, PageAddress { block: 0, page: 0 });
        assert_eq!(c.read_logical(0).unwrap(), vec![false; 4]);
    }

    #[test]
    fn reclaim_never_destroys_live_pages() {
        // The historical bug: wrapping erased the next block wholesale,
        // taking still-live pages with it. Rewriting one hot logical page
        // over and over must leave every other logical page intact.
        let mut c = FlashController::new(NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 4,
        });
        let cold: Vec<Vec<bool>> = (0..3)
            .map(|i| (0..4).map(|b| (b + i) % 2 == 0).collect())
            .collect();
        for (lpn, data) in cold.iter().enumerate() {
            c.write_logical(lpn, data).unwrap();
        }
        let hot = vec![false; 4];
        for _ in 0..12 {
            c.write_logical(3, &hot).unwrap();
        }
        for (lpn, data) in cold.iter().enumerate() {
            assert_eq!(
                c.read_logical(lpn).unwrap(),
                *data,
                "cold page {lpn} was destroyed by reclaim"
            );
        }
        assert_eq!(c.read_logical(3).unwrap(), hot);
        let stats = c.wear_stats().unwrap();
        assert!(stats.total_erases >= 1);
    }

    #[test]
    fn gc_relocates_when_no_block_is_fully_stale() {
        // 3 blocks × 2 pages, logical capacity 4. Fill all four logical
        // pages (blocks 0 and 1 end up all-live), then alternate rewrites
        // of two of them: stale pages interleave with live ones in every
        // block, so reclaiming requires relocating the cold survivors.
        let mut c = FlashController::new(NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 4,
        });
        let data: Vec<Vec<bool>> = (0..4)
            .map(|i| (0..4).map(|b| (b + i) % 3 == 0).collect())
            .collect();
        for (lpn, bits) in data.iter().enumerate() {
            c.write_logical(lpn, bits).unwrap();
        }
        for round in 0..6 {
            for &lpn in &[1usize, 3] {
                c.write_logical(lpn, &data[lpn]).unwrap();
                // Cold pages 0 and 2 must survive every reclaim.
                assert_eq!(c.read_logical(0).unwrap(), data[0], "round {round}");
                assert_eq!(c.read_logical(2).unwrap(), data[2], "round {round}");
            }
        }
        let stats = c.wear_stats().unwrap();
        assert!(stats.gc_relocations > 0, "{stats:?}");
        assert!(stats.gc_erases > 0, "{stats:?}");
        assert!(stats.total_erases > 0);
    }

    #[test]
    fn capacity_errors_are_reported_not_destructive() {
        let mut c = controller();
        assert_eq!(c.logical_capacity(), 2);
        let d = vec![false; 4];
        c.write_logical(0, &d).unwrap();
        c.write_logical(1, &d).unwrap();
        // lpn beyond capacity is rejected up front.
        assert!(matches!(
            c.write_logical(2, &d),
            Err(ArrayError::AddressOutOfRange { .. })
        ));
        // Both pages still readable.
        assert_eq!(c.read_logical(0).unwrap(), d);
        assert_eq!(c.read_logical(1).unwrap(), d);
    }

    #[test]
    #[should_panic(expected = "over-provisioning")]
    fn single_block_arrays_are_rejected_up_front() {
        // One block means zero logical capacity: rewrites would
        // deadlock with every page live, so construction refuses.
        let _ = FlashController::new(NandConfig {
            blocks: 1,
            pages_per_block: 2,
            page_width: 4,
        });
    }

    #[test]
    fn live_page_enumeration_tracks_the_map() {
        let mut c = FlashController::new(NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 4,
        });
        assert!(c.live_logical_pages().is_empty());
        assert_eq!(c.physical_of(0), None);
        let d = vec![false; 4];
        c.write_logical(2, &d).unwrap();
        c.write_logical(0, &d).unwrap();
        assert_eq!(c.live_logical_pages(), vec![0, 2]);
        let addr = c.physical_of(2).unwrap();
        assert_eq!(c.read(addr).unwrap(), d);
        // A rewrite moves the live copy; the enumeration is unchanged.
        c.write_logical(2, &d).unwrap();
        assert_ne!(c.physical_of(2).unwrap(), addr);
        assert_eq!(c.live_logical_pages(), vec![0, 2]);
    }

    /// A controller whose page (0, 1) cells carry +30 % tunnel oxide —
    /// nominal ISPP deterministically fails verify on them.
    fn controller_with_bad_page_over(blocks: usize) -> FlashController {
        let config = NandConfig {
            blocks,
            pages_per_block: 2,
            page_width: 4,
        };
        let mut pop = crate::population::CellPopulation::paper(config.cells());
        let probe = NandArray::new(config);
        for column in 0..config.page_width {
            pop.set_cell_variation(probe.cell_index(0, 1, column), 0.3, 0.0)
                .unwrap();
        }
        FlashController::over(NandArray::with_population(config, pop))
    }

    fn controller_with_bad_page() -> FlashController {
        controller_with_bad_page_over(2)
    }

    #[test]
    fn batched_write_failure_keeps_the_pre_batch_copy() {
        // Regression: plan-time remapping must not cost the last good
        // copy when the scheduled program fails verify — the guarantee
        // write_logical documents, now preserved across flush rollback.
        let mut c = controller_with_bad_page();
        let data = vec![false, true, false, true];
        let first = c.write_batch(vec![(Some(0), data.clone())]);
        assert_eq!(first[0].clone().unwrap(), PageAddress { block: 0, page: 0 });
        // The rewrite allocates the bad page (0, 1) and fails...
        let err = c
            .write_batch(vec![(Some(0), vec![true, false, true, false])])
            .into_iter()
            .next()
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, ArrayError::VerifyFailed { .. }));
        // ...and the mapping rolled back to the intact pre-batch copy.
        assert_eq!(c.physical_of(0), Some(PageAddress { block: 0, page: 0 }));
        assert_eq!(c.read_logical(0).unwrap(), data);
    }

    #[test]
    fn batched_write_failure_keeps_the_last_in_batch_copy() {
        // Same-lpn rewrites inside one batch: the fallback is the newest
        // copy that verified, not only the pre-batch one.
        let mut c = controller_with_bad_page();
        let good = vec![false, true, true, true];
        let results = c.write_batch(vec![
            (Some(0), good.clone()),                   // lands (0,0), verifies
            (Some(0), vec![true, false, true, false]), // lands (0,1), fails
        ]);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(ArrayError::VerifyFailed { .. })));
        assert_eq!(c.physical_of(0), Some(PageAddress { block: 0, page: 0 }));
        assert_eq!(c.read_logical(0).unwrap(), good);
    }

    #[test]
    fn batched_cursor_only_advances_on_verified_programs() {
        // write()'s contract: "the cursor only advances on success, so a
        // failed write retries the same logical page" — the batched path
        // must hold it too (the cursor commits per verified program).
        let mut c = controller_with_bad_page();
        let good = vec![false, true, false, true];
        // Cursor job 1 lands (0,0) and verifies: cursor moves to lpn 1.
        assert!(c.write_batch(vec![(None, good.clone())])[0].is_ok());
        // Cursor job 2 lands the bad page (0,1) and fails: the cursor
        // must stay on lpn 1 so a retry targets the same logical page.
        assert!(c.write_batch(vec![(None, good.clone())])[0].is_err());
        assert_eq!(c.physical_of(1), None);
        let retry = vec![false, false, true, true];
        let addr = c.write(&retry).unwrap();
        assert_eq!(c.physical_of(1), Some(addr));
        assert_eq!(c.read_logical(1).unwrap(), retry);
        // Logical page 0's copy survived throughout.
        assert_eq!(c.read_logical(0).unwrap(), good);
    }

    #[test]
    fn write_batch_reports_per_op_results() {
        // Per-op contract: invalid jobs fail alone, valid neighbours in
        // the same batch land and stay readable.
        let mut c = FlashController::new(NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 4,
        });
        let good = vec![true, false, true, false];
        let results = c.write_batch(vec![
            (Some(0), good.clone()),
            (Some(99), good.clone()), // out-of-range lpn
            (Some(1), vec![true; 2]), // wrong width
            (Some(2), good.clone()),
        ]);
        assert_eq!(results.len(), 4);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(ArrayError::AddressOutOfRange { .. })
        ));
        assert!(matches!(results[2], Err(ArrayError::WrongPageWidth { .. })));
        assert!(results[3].is_ok());
        assert_eq!(c.read_logical(0).unwrap(), good);
        assert_eq!(c.read_logical(2).unwrap(), good);
        assert_eq!(c.physical_of(1), None);
    }

    #[test]
    fn explicit_erase_clears_mappings() {
        let mut c = controller();
        let d = vec![false; 4];
        let addr = c.write_logical(0, &d).unwrap();
        c.erase_block(addr.block).unwrap();
        assert!(c.read_logical(0).is_err());
        assert_eq!(c.live_pages(), 0);
    }

    #[test]
    fn fault_tolerant_write_retries_past_a_failing_page() {
        // A verify failure in fault-tolerant mode retires the block and
        // retries on a healthy one instead of surfacing the error.
        let mut c = controller_with_bad_page_over(4).with_fault_tolerance(1);
        assert_eq!(c.logical_capacity(), 4);
        let d0 = vec![false, true, false, true];
        let d1 = vec![true, true, false, false];
        c.write_logical(0, &d0).unwrap();
        // This write lands the bad page (0, 1), fails verify, retires
        // block 0 (relocating lpn 0) and retries on block 1.
        let addr = c.write_logical(1, &d1).unwrap();
        assert_ne!(addr.block, 0);
        assert_eq!(c.retired_blocks(), 1);
        assert!(c.is_block_retired(0));
        assert!(c.program_fail_count() >= 1);
        assert!(!c.read_only());
        assert_eq!(c.read_logical(0).unwrap(), d0);
        assert_eq!(c.read_logical(1).unwrap(), d1);
        // The retired block never hosts data again.
        for _ in 0..8 {
            let a = c.write_logical(2, &d0).unwrap();
            assert_ne!(a.block, 0);
        }
    }

    #[test]
    fn spare_exhaustion_enters_read_only_and_keeps_reads() {
        // Zero spares: the first retirement cannot be absorbed, so the
        // controller degrades to read-only — an error, not a panic, and
        // reads keep working.
        let mut c = controller_with_bad_page().with_fault_tolerance(0);
        let d = vec![false, true, false, true];
        c.write_logical(0, &d).unwrap();
        let err = c.write_logical(0, &[false; 4]).unwrap_err();
        assert!(matches!(err, ArrayError::ReadOnly));
        assert!(c.read_only());
        assert_eq!(c.read_logical(0).unwrap(), d);
        // Writes keep failing cleanly; reads keep succeeding.
        assert!(matches!(c.write_logical(1, &d), Err(ArrayError::ReadOnly)));
        assert_eq!(c.read_logical(0).unwrap(), d);
    }

    #[test]
    fn crash_image_replays_to_the_running_digest() {
        // Power-loss model: the crash image (medium + checkpoint +
        // journaled deltas) recovers digest-identical to the running
        // controller at any point, including mid-delta-window.
        let mut c = FlashController::new(NandConfig {
            blocks: 3,
            pages_per_block: 2,
            page_width: 4,
        })
        .with_crash_consistency(4);
        let data: Vec<Vec<bool>> = (0..4)
            .map(|i| (0..4).map(|b| (b + i) % 2 == 0).collect())
            .collect();
        for (lpn, bits) in data.iter().enumerate() {
            c.write_logical(lpn, bits).unwrap();
        }
        // Rewrites force reclaim/GC churn across the checkpoint window.
        for step in 0..5 {
            c.write_logical(step % 4, &data[step % 4]).unwrap();
            let image = c.crash_image().unwrap();
            let recovered =
                FlashController::recover(FloatingGateTransistor::mlgnr_cnt_paper(), &image)
                    .unwrap();
            assert_eq!(
                recovered.state_digest(),
                c.state_digest(),
                "recovery diverged at step {step}"
            );
            assert_eq!(recovered.live_pages(), c.live_pages());
        }
        // The crash image itself round-trips through JSON.
        let image = c.crash_image().unwrap();
        let json = serde_json::to_string(&image).unwrap();
        let decoded = CrashImage::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        let recovered =
            FlashController::recover(FloatingGateTransistor::mlgnr_cnt_paper(), &decoded).unwrap();
        assert_eq!(recovered.state_digest(), c.state_digest());
        // The delta log is bounded by the checkpoint cadence.
        assert!(c.crash_consistent());
    }

    #[test]
    fn retire_block_is_idempotent() {
        let mut c = controller_with_bad_page_over(4).with_fault_tolerance(2);
        let d = vec![true; 4];
        c.write_logical(0, &d).unwrap();
        let moved = c.retire_block(0).unwrap();
        assert_eq!(moved, 1);
        assert_eq!(c.retire_block(0).unwrap(), 0);
        assert_eq!(c.retired_blocks(), 1);
        assert_eq!(c.read_logical(0).unwrap(), d);
    }
}
