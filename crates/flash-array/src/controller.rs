//! A miniature flash controller: page allocation, erase-before-write and
//! wear statistics.
//!
//! Just enough translation-layer behaviour to exercise the array as a
//! storage device: sequential page allocation across blocks (implicit
//! wear levelling), whole-block reclaim, and wear accounting.

use crate::nand::{NandArray, NandConfig};
use crate::Result;

/// Physical address of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct PageAddress {
    /// Block index.
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

/// Wear statistics across blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WearStats {
    /// Lowest per-block erase count.
    pub min_erases: u64,
    /// Highest per-block erase count.
    pub max_erases: u64,
    /// Total erases across the array.
    pub total_erases: u64,
}

/// The controller.
#[derive(Debug, Clone)]
pub struct FlashController {
    array: NandArray,
    next: PageAddress,
}

impl FlashController {
    /// Creates a controller over a fresh array.
    #[must_use]
    pub fn new(config: NandConfig) -> Self {
        Self {
            array: NandArray::new(config),
            next: PageAddress { block: 0, page: 0 },
        }
    }

    /// The underlying array (for analyses).
    #[must_use]
    pub fn array(&self) -> &NandArray {
        &self.array
    }

    /// Writes `bits` to the next free page, erasing a block when the
    /// array wraps around. Returns the address written.
    ///
    /// # Errors
    ///
    /// Page-width mismatches and device errors propagate.
    pub fn write(&mut self, bits: &[bool]) -> Result<PageAddress> {
        let cfg = self.array.config();
        let addr = self.next;
        if !self.array.is_page_erased(addr.block, addr.page)? {
            // Reclaim the block before reusing it (erase-before-write).
            self.array.erase_block(addr.block)?;
        }
        self.array.program_page(addr.block, addr.page, bits)?;
        // Advance sequentially: pages within a block, then next block —
        // round-robin over blocks levels wear.
        self.next = if addr.page + 1 < cfg.pages_per_block {
            PageAddress {
                block: addr.block,
                page: addr.page + 1,
            }
        } else {
            PageAddress {
                block: (addr.block + 1) % cfg.blocks,
                page: 0,
            }
        };
        Ok(addr)
    }

    /// Reads a page back.
    ///
    /// # Errors
    ///
    /// Address errors propagate.
    pub fn read(&mut self, addr: PageAddress) -> Result<Vec<bool>> {
        self.array.read_page(addr.block, addr.page)
    }

    /// Explicitly erases a block.
    ///
    /// # Errors
    ///
    /// Address errors and device errors propagate.
    pub fn erase_block(&mut self, block: usize) -> Result<()> {
        self.array.erase_block(block)
    }

    /// Wear statistics.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed array; address errors are internal.
    pub fn wear_stats(&self) -> Result<WearStats> {
        let cfg = self.array.config();
        let mut min = u64::MAX;
        let mut max = 0;
        let mut total = 0;
        for b in 0..cfg.blocks {
            let e = self.array.erase_count(b)?;
            min = min.min(e);
            max = max.max(e);
            total += e;
        }
        Ok(WearStats {
            min_erases: min,
            max_erases: max,
            total_erases: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayError;

    fn controller() -> FlashController {
        FlashController::new(NandConfig {
            blocks: 2,
            pages_per_block: 2,
            page_width: 4,
        })
    }

    #[test]
    fn write_read_round_trip() {
        let mut c = controller();
        let data = vec![false, true, false, true];
        let addr = c.write(&data).unwrap();
        assert_eq!(addr, PageAddress { block: 0, page: 0 });
        assert_eq!(c.read(addr).unwrap(), data);
    }

    #[test]
    fn allocation_advances_round_robin() {
        let mut c = controller();
        let d = vec![true; 4];
        let a0 = c.write(&d).unwrap();
        let a1 = c.write(&d).unwrap();
        let a2 = c.write(&d).unwrap();
        assert_eq!((a0.block, a0.page), (0, 0));
        assert_eq!((a1.block, a1.page), (0, 1));
        assert_eq!((a2.block, a2.page), (1, 0));
    }

    #[test]
    fn wraparound_reclaims_blocks() {
        let mut c = controller();
        let d = vec![false; 4];
        // 4 pages fill the array; the 5th write wraps and forces an erase.
        for _ in 0..5 {
            c.write(&d).unwrap();
        }
        let stats = c.wear_stats().unwrap();
        assert!(stats.total_erases >= 1);
    }

    #[test]
    fn wear_spread_stays_tight_under_sequential_load() {
        let mut c = controller();
        let d = vec![false; 4];
        for _ in 0..16 {
            c.write(&d).unwrap();
        }
        let stats = c.wear_stats().unwrap();
        assert!(
            stats.max_erases - stats.min_erases <= 1,
            "wear spread {stats:?}"
        );
    }

    #[test]
    fn wrong_width_write_rejected() {
        let mut c = controller();
        assert!(matches!(
            c.write(&[true]),
            Err(ArrayError::WrongPageWidth { .. })
        ));
    }
}
