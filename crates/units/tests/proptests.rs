//! Property tests for the quantity algebra.

use gnr_units::{
    Area, Capacitance, Charge, CurrentDensity, ElectricField, Energy, Length, Mass, Temperature,
    Time, Voltage,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Voltage/Length/Field triangle: (V/d)·d == V.
    #[test]
    fn field_round_trip(v in -100.0f64..100.0, d_nm in 0.1f64..100.0) {
        let voltage = Voltage::from_volts(v);
        let length = Length::from_nanometers(d_nm);
        let back = (voltage / length) * length;
        prop_assert!((back.as_volts() - v).abs() <= 1e-12 * v.abs().max(1.0));
    }

    /// Charge/Capacitance/Voltage triangle: (C·V)/C == V.
    #[test]
    fn charge_round_trip(c_af in 0.1f64..100.0, v in -50.0f64..50.0) {
        let c = Capacitance::from_attofarads(c_af);
        let voltage = Voltage::from_volts(v);
        let back = (c * voltage) / c;
        prop_assert!((back.as_volts() - v).abs() <= 1e-12 * v.abs().max(1.0));
    }

    /// Current = J·A and Charge = I·t chain is associative with scalars.
    #[test]
    fn current_chain(j in 0.0f64..1e8, a_nm2 in 1.0f64..1e6, t_us in 0.0f64..1e4) {
        let q = (CurrentDensity::from_amps_per_square_meter(j)
            * Area::from_square_nanometers(a_nm2))
            * Time::from_microseconds(t_us);
        prop_assert!(q.as_coulombs() >= 0.0);
        let expected = j * a_nm2 * 1e-18 * t_us * 1e-6;
        prop_assert!((q.as_coulombs() - expected).abs() <= 1e-12 * expected.max(1e-30));
    }

    /// Unit conversions round trip exactly (within f64).
    #[test]
    fn conversion_round_trips(x in -1.0e6f64..1.0e6) {
        prop_assert!((Length::from_nanometers(x).as_nanometers() - x).abs() <= 1e-9 * x.abs().max(1.0));
        prop_assert!((Energy::from_ev(x).as_ev() - x).abs() <= 1e-12 * x.abs().max(1.0));
        prop_assert!((Time::from_microseconds(x).as_microseconds() - x).abs() <= 1e-9 * x.abs().max(1.0));
        prop_assert!((ElectricField::from_megavolts_per_centimeter(x)
            .as_megavolts_per_centimeter() - x).abs() <= 1e-9 * x.abs().max(1.0));
        prop_assert!((Charge::from_electrons(x).as_electrons() - x).abs() <= 1e-9 * x.abs().max(1.0));
        prop_assert!((Mass::from_electron_masses(x.abs() + 0.1).as_electron_masses()
            - (x.abs() + 0.1)).abs() <= 1e-9 * x.abs().max(1.0));
    }

    /// Addition is commutative and subtraction is its inverse.
    #[test]
    fn additive_group_laws(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        let x = Voltage::from_volts(a);
        let y = Voltage::from_volts(b);
        prop_assert_eq!((x + y).as_volts(), (y + x).as_volts());
        let diff = (x + y) - y;
        prop_assert!((diff.as_volts() - a).abs() <= 1e-6 * a.abs().max(1.0));
    }

    /// Ordering agrees with the underlying scalar, and clamp bounds.
    #[test]
    fn ordering_and_clamp(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let clamped = Temperature::from_kelvin(c.abs())
            .clamp(Temperature::from_kelvin(lo.abs().min(hi.abs())),
                   Temperature::from_kelvin(lo.abs().max(hi.abs())));
        prop_assert!(clamped.as_kelvin() >= lo.abs().min(hi.abs()) - 1e-12);
        prop_assert!(clamped.as_kelvin() <= lo.abs().max(hi.abs()) + 1e-12);
    }

    /// Celsius/Kelvin is a shift, years/seconds a scale.
    #[test]
    fn temperature_and_time_affine(t_c in -200.0f64..500.0, yrs in 0.0f64..100.0) {
        let t = Temperature::from_celsius(t_c);
        prop_assert!((t.as_kelvin() - (t_c + 273.15)).abs() < 1e-9);
        let y = Time::from_years(yrs);
        prop_assert!((y.as_years() - yrs).abs() < 1e-9);
    }

    /// Engineering display never panics and is non-empty for any finite
    /// value (C-DEBUG-NONEMPTY analogue for Display).
    #[test]
    fn display_total(x in proptest::num::f64::NORMAL) {
        let s = format!("{}", Voltage::from_volts(x));
        prop_assert!(!s.is_empty());
        let s2 = gnr_units::fmt_eng::eng(x, "V");
        prop_assert!(s2.contains('V'));
    }
}
