//! Current (amperes) and current density (amperes per square meter).

use crate::{Area, Charge, Time};

quantity!(
    /// An electric current in amperes.
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::{Current, Time};
    ///
    /// let i = Current::from_amps(1e-9);
    /// let q = i * Time::from_seconds(1e-6);
    /// assert!((q.as_coulombs() - 1e-15).abs() < 1e-27);
    /// ```
    Current,
    "A",
    from_amps,
    as_amps
);

quantity!(
    /// A current density in amperes per square meter.
    ///
    /// The tunneling literature (and the paper's figures) uses A/cm²;
    /// 1 A/cm² = 10⁴ A/m².
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::CurrentDensity;
    ///
    /// let j = CurrentDensity::from_amps_per_square_centimeter(1.0);
    /// assert_eq!(j.as_amps_per_square_meter(), 1.0e4);
    /// ```
    CurrentDensity,
    "A/m\u{00b2}",
    from_amps_per_square_meter,
    as_amps_per_square_meter
);

impl Current {
    /// Creates a current from nanoamperes (FN programming currents are < 1 nA
    /// per cell, §II of the paper).
    #[must_use]
    pub const fn from_nanoamps(na: f64) -> Self {
        Self::from_amps(na * 1.0e-9)
    }

    /// Returns the current in nanoamperes.
    #[must_use]
    pub fn as_nanoamps(self) -> f64 {
        self.as_amps() * 1.0e9
    }

    /// Creates a current from milliamperes (CHE programming currents are
    /// 0.3–1 mA, §II of the paper).
    #[must_use]
    pub const fn from_milliamps(ma: f64) -> Self {
        Self::from_amps(ma * 1.0e-3)
    }

    /// Returns the current in milliamperes.
    #[must_use]
    pub fn as_milliamps(self) -> f64 {
        self.as_amps() * 1.0e3
    }
}

impl CurrentDensity {
    /// Creates a current density from A/cm².
    #[must_use]
    pub const fn from_amps_per_square_centimeter(a_cm2: f64) -> Self {
        Self::from_amps_per_square_meter(a_cm2 * 1.0e4)
    }

    /// Returns the current density in A/cm².
    #[must_use]
    pub fn as_amps_per_square_centimeter(self) -> f64 {
        self.as_amps_per_square_meter() * 1.0e-4
    }
}

impl core::ops::Mul<Area> for CurrentDensity {
    type Output = Current;
    fn mul(self, rhs: Area) -> Current {
        Current::from_amps(self.as_amps_per_square_meter() * rhs.as_square_meters())
    }
}

impl core::ops::Mul<CurrentDensity> for Area {
    type Output = Current;
    fn mul(self, rhs: CurrentDensity) -> Current {
        rhs * self
    }
}

impl core::ops::Mul<Time> for Current {
    type Output = Charge;
    fn mul(self, rhs: Time) -> Charge {
        Charge::from_coulombs(self.as_amps() * rhs.as_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_times_area_is_current() {
        let j = CurrentDensity::from_amps_per_square_centimeter(100.0);
        let a = Area::from_square_centimeters(0.01);
        assert!(((j * a).as_amps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nanoamp_round_trip() {
        let i = Current::from_nanoamps(0.5);
        assert!((i.as_amps() - 5e-10).abs() < 1e-22);
        assert!((i.as_nanoamps() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn a_per_cm2_round_trip() {
        let j = CurrentDensity::from_amps_per_square_centimeter(2.5);
        assert!((j.as_amps_per_square_centimeter() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn current_time_charge() {
        let q = Current::from_amps(2.0) * Time::from_seconds(3.0);
        assert_eq!(q.as_coulombs(), 6.0);
    }
}
