//! Absolute temperature in kelvin.

quantity!(
    /// An absolute temperature in kelvin.
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::Temperature;
    ///
    /// let t = Temperature::from_celsius(85.0); // retention-bake condition
    /// assert!((t.as_kelvin() - 358.15).abs() < 1e-9);
    /// ```
    Temperature,
    "K",
    from_kelvin,
    as_kelvin
);

impl Temperature {
    /// Creates a temperature from degrees Celsius.
    #[must_use]
    pub const fn from_celsius(celsius: f64) -> Self {
        Self::from_kelvin(celsius + 273.15)
    }

    /// Returns the temperature in degrees Celsius.
    #[must_use]
    pub fn as_celsius(self) -> f64 {
        self.as_kelvin() - 273.15
    }

    /// Room temperature, 300 K (the simulator default).
    #[must_use]
    pub const fn room() -> Self {
        Self::from_kelvin(300.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_round_trip() {
        let t = Temperature::from_celsius(85.0);
        assert!((t.as_celsius() - 85.0).abs() < 1e-12);
    }

    #[test]
    fn room_is_300_kelvin() {
        assert_eq!(Temperature::room().as_kelvin(), 300.0);
    }
}
