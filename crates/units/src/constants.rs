//! CODATA-2018 physical constants used throughout the simulator.
//!
//! All values are exact where the SI redefinition fixed them (charge, Planck,
//! Boltzmann) and CODATA-2018 recommended values otherwise.
//!
//! # Example
//!
//! ```
//! use gnr_units::constants;
//!
//! // The FN exponent prefactor 4/3 * sqrt(2 m) / (q ħ) is finite and positive.
//! let b = 4.0 / 3.0 * (2.0 * constants::ELECTRON_MASS).sqrt()
//!     / (constants::ELEMENTARY_CHARGE * constants::REDUCED_PLANCK);
//! assert!(b.is_finite() && b > 0.0);
//! ```

use crate::{Energy, Temperature, Voltage};

/// Elementary charge `q` in coulombs (exact).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Planck constant `h` in joule-seconds (exact).
pub const PLANCK: f64 = 6.626_070_15e-34;

/// Reduced Planck constant `ħ = h / 2π` in joule-seconds.
pub const REDUCED_PLANCK: f64 = PLANCK / (2.0 * core::f64::consts::PI);

/// Free-electron rest mass `m₀` in kilograms (CODATA 2018).
pub const ELECTRON_MASS: f64 = 9.109_383_701_5e-31;

/// Vacuum permittivity `ε₀` in farads per meter (CODATA 2018).
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_812_8e-12;

/// Boltzmann constant `k_B` in joules per kelvin (exact).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// One electron-volt in joules (exact, equals [`ELEMENTARY_CHARGE`]).
pub const ELECTRON_VOLT: f64 = ELEMENTARY_CHARGE;

/// Speed of light `c` in meters per second (exact).
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Room temperature used by default across the simulator (300 K).
pub const ROOM_TEMPERATURE_KELVIN: f64 = 300.0;

/// Thermal voltage `k_B·T / q` at the given temperature.
///
/// # Example
///
/// ```
/// use gnr_units::constants::thermal_voltage;
/// use gnr_units::Temperature;
///
/// let vt = thermal_voltage(Temperature::from_kelvin(300.0));
/// assert!((vt.as_volts() - 0.02585).abs() < 1e-4);
/// ```
#[must_use]
pub fn thermal_voltage(temperature: Temperature) -> Voltage {
    Voltage::from_volts(BOLTZMANN * temperature.as_kelvin() / ELEMENTARY_CHARGE)
}

/// Thermal energy `k_B·T` at the given temperature.
#[must_use]
pub fn thermal_energy(temperature: Temperature) -> Energy {
    Energy::from_joules(BOLTZMANN * temperature.as_kelvin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_planck_is_h_over_two_pi() {
        assert!((REDUCED_PLANCK - 1.054_571_817e-34).abs() / REDUCED_PLANCK < 1e-9);
    }

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let vt = thermal_voltage(Temperature::from_kelvin(ROOM_TEMPERATURE_KELVIN));
        assert!((vt.as_volts() - 0.025_852).abs() < 1e-5);
    }

    #[test]
    fn electron_volt_matches_charge() {
        assert_eq!(ELECTRON_VOLT, ELEMENTARY_CHARGE);
    }

    #[test]
    fn thermal_energy_scales_linearly() {
        let e1 = thermal_energy(Temperature::from_kelvin(100.0));
        let e3 = thermal_energy(Temperature::from_kelvin(300.0));
        assert!((e3.as_joules() / e1.as_joules() - 3.0).abs() < 1e-12);
    }
}
