//! Internal macro generating the shared surface of every quantity newtype.
//!
//! Each quantity is a `Copy` newtype over an `f64` storing the value in its
//! base SI unit. The macro provides constructors, accessors, ordering
//! helpers, scalar arithmetic and engineering-notation [`std::fmt::Display`].

/// Defines a quantity newtype.
///
/// `quantity!(Name, "docs", "unit-symbol", from_base_ctor, as_base_getter)`
/// generates:
///
/// * `Name::from_<base>(f64) -> Name` and `Name::<as_base>(self) -> f64`
/// * `Name::ZERO`, `abs`, `min`, `max`, `clamp`, `is_finite`, `signum`
/// * `Add`, `Sub`, `Neg`, `Mul<f64>`, `Div<f64>`, `f64 * Name`,
///   `Div<Name> -> f64` (dimensionless ratio), `Sum`
/// * `Display` in engineering notation with the unit symbol
/// * `serde::{Serialize, Deserialize}` as a transparent `f64`
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $from:ident, $as:ident) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = concat!("Creates the quantity from a value in ", $unit, " (the base SI unit).")]
            #[must_use]
            pub const fn $from(value: f64) -> Self {
                Self(value)
            }

            #[doc = concat!("Returns the value in ", $unit, " (the base SI unit).")]
            #[must_use]
            pub const fn $as(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp: lo must not exceed hi");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` when the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `-1.0`, `0.0` or `1.0` according to the sign.
            #[must_use]
            pub fn signum(self) -> f64 {
                if self.0 == 0.0 {
                    0.0
                } else {
                    self.0.signum()
                }
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}", $crate::fmt_eng::eng(self.0, $unit))
            }
        }
    };
}
