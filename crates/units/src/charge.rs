//! Charge (coulombs) and areal charge density (C/m²) — the stored
//! floating-gate charge `QFG` of eq. (3).

use crate::constants::ELEMENTARY_CHARGE;
use crate::{Area, Capacitance, Voltage};

quantity!(
    /// An electric charge in coulombs.
    ///
    /// Stored floating-gate charge is negative when electrons are
    /// accumulated (programmed, logic '0') and ≥ 0 after erase (logic '1').
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::Charge;
    ///
    /// let q = Charge::from_electrons(-36.0);
    /// assert!(q.as_coulombs() < 0.0);
    /// assert!((q.as_electrons() + 36.0).abs() < 1e-9);
    /// ```
    Charge,
    "C",
    from_coulombs,
    as_coulombs
);

quantity!(
    /// An areal charge density in coulombs per square meter.
    Charge2d,
    "C/m\u{00b2}",
    from_coulombs_per_square_meter,
    as_coulombs_per_square_meter
);

/// Public alias: areal charge density (see [`Charge2d`]).
pub type ChargeDensity = Charge2d;

impl Charge {
    /// Creates a charge from a (signed) number of elementary charges.
    ///
    /// A *negative* count means surplus electrons (each electron carries
    /// `−q`), matching the sign convention of the stored charge `QFG`.
    #[must_use]
    pub fn from_electrons(count: f64) -> Self {
        Self::from_coulombs(count * ELEMENTARY_CHARGE)
    }

    /// Returns the charge as a signed number of elementary charges.
    #[must_use]
    pub fn as_electrons(self) -> f64 {
        self.as_coulombs() / ELEMENTARY_CHARGE
    }
}

impl core::ops::Div<Capacitance> for Charge {
    type Output = Voltage;
    fn div(self, rhs: Capacitance) -> Voltage {
        Voltage::from_volts(self.as_coulombs() / rhs.as_farads())
    }
}

impl core::ops::Div<Area> for Charge {
    type Output = ChargeDensity;
    fn div(self, rhs: Area) -> ChargeDensity {
        ChargeDensity::from_coulombs_per_square_meter(self.as_coulombs() / rhs.as_square_meters())
    }
}

impl core::ops::Mul<Area> for ChargeDensity {
    type Output = Charge;
    fn mul(self, rhs: Area) -> Charge {
        Charge::from_coulombs(self.as_coulombs_per_square_meter() * rhs.as_square_meters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electron_count_round_trip() {
        let q = Charge::from_electrons(-100.0);
        assert!((q.as_electrons() + 100.0).abs() < 1e-9);
        assert!(q.as_coulombs() < 0.0);
    }

    #[test]
    fn charge_over_capacitance_is_voltage() {
        // Eq. (3): the QFG/CT term.
        let q = Charge::from_coulombs(-5.76e-18);
        let ct = Capacitance::from_farads(1.92e-18);
        let dv = q / ct;
        assert!((dv.as_volts() + 3.0).abs() < 1e-12);
    }

    #[test]
    fn density_area_round_trip() {
        let q = Charge::from_coulombs(4.0e-18);
        let a = Area::from_square_nanometers(484.0);
        let rho = q / a;
        let q2 = rho * a;
        assert!((q2.as_coulombs() - q.as_coulombs()).abs() < 1e-30);
    }
}
