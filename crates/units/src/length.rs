//! Length in meters, with nanometer/angstrom conveniences (oxide
//! thicknesses, ribbon widths, interlayer spacing).

use crate::Area;

quantity!(
    /// A length in meters.
    ///
    /// Oxide thicknesses in the paper are a few nanometers, so
    /// [`Length::from_nanometers`] is the most common constructor.
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::Length;
    ///
    /// let x_to = Length::from_nanometers(5.0);
    /// assert_eq!(x_to.as_meters(), 5.0e-9);
    /// assert_eq!(x_to.as_nanometers(), 5.0);
    /// ```
    Length,
    "m",
    from_meters,
    as_meters
);

impl Length {
    /// Creates a length from nanometers.
    #[must_use]
    pub const fn from_nanometers(nm: f64) -> Self {
        Self::from_meters(nm * 1.0e-9)
    }

    /// Returns the length in nanometers.
    #[must_use]
    pub fn as_nanometers(self) -> f64 {
        self.as_meters() * 1.0e9
    }

    /// Creates a length from micrometers.
    #[must_use]
    pub const fn from_micrometers(um: f64) -> Self {
        Self::from_meters(um * 1.0e-6)
    }

    /// Returns the length in micrometers.
    #[must_use]
    pub fn as_micrometers(self) -> f64 {
        self.as_meters() * 1.0e6
    }

    /// Creates a length from ångströms (graphene lattice scales).
    #[must_use]
    pub const fn from_angstroms(a: f64) -> Self {
        Self::from_meters(a * 1.0e-10)
    }

    /// Returns the length in ångströms.
    #[must_use]
    pub fn as_angstroms(self) -> f64 {
        self.as_meters() * 1.0e10
    }
}

impl core::ops::Mul<Length> for Length {
    type Output = Area;
    fn mul(self, rhs: Length) -> Area {
        Area::from_square_meters(self.as_meters() * rhs.as_meters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanometer_round_trip() {
        let l = Length::from_nanometers(7.5);
        assert!((l.as_nanometers() - 7.5).abs() < 1e-12);
        assert!((l.as_meters() - 7.5e-9).abs() < 1e-21);
    }

    #[test]
    fn angstrom_is_tenth_of_nanometer() {
        let a = Length::from_angstroms(3.35);
        assert!((a.as_nanometers() - 0.335).abs() < 1e-12);
    }

    #[test]
    fn length_times_length_is_area() {
        let gate = Length::from_nanometers(22.0) * Length::from_nanometers(22.0);
        assert!((gate.as_square_meters() - 4.84e-16).abs() < 1e-28);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(Length::from_nanometers(5.0).to_string(), "5.000 nm");
    }

    #[test]
    fn ordering_and_clamp() {
        let a = Length::from_nanometers(4.0);
        let b = Length::from_nanometers(8.0);
        assert!(a < b);
        assert_eq!(Length::from_nanometers(10.0).clamp(a, b), b);
    }
}
