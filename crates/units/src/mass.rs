//! Mass in kilograms with electron-mass conveniences (effective tunneling
//! masses `m_ox`).

use crate::constants::ELECTRON_MASS;

quantity!(
    /// A mass in kilograms.
    ///
    /// Effective tunneling masses are quoted as multiples of the free
    /// electron mass `m₀` (SiO₂: `0.42 m₀` after Lenzlinger–Snow).
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::Mass;
    ///
    /// let m_ox = Mass::from_electron_masses(0.42);
    /// assert!((m_ox.as_electron_masses() - 0.42).abs() < 1e-12);
    /// ```
    Mass,
    "kg",
    from_kilograms,
    as_kilograms
);

impl Mass {
    /// Creates a mass from multiples of the free electron mass `m₀`.
    #[must_use]
    pub fn from_electron_masses(ratio: f64) -> Self {
        Self::from_kilograms(ratio * ELECTRON_MASS)
    }

    /// Returns the mass as a multiple of the free electron mass `m₀`.
    #[must_use]
    pub fn as_electron_masses(self) -> f64 {
        self.as_kilograms() / ELECTRON_MASS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electron_mass_round_trip() {
        let m = Mass::from_electron_masses(0.42);
        assert!((m.as_kilograms() - 0.42 * ELECTRON_MASS).abs() < 1e-42);
        assert!((m.as_electron_masses() - 0.42).abs() < 1e-12);
    }
}
