//! Energy in joules with electron-volt conveniences (barrier heights, band
//! offsets, work functions).

use crate::constants::ELECTRON_VOLT;

quantity!(
    /// An energy in joules.
    ///
    /// Barrier heights and work functions are quoted in eV;
    /// [`Energy::from_ev`] / [`Energy::as_ev`] convert exactly.
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::Energy;
    ///
    /// let phi_b = Energy::from_ev(3.2);
    /// assert!((phi_b.as_joules() - 5.127e-19).abs() < 1e-21);
    /// ```
    Energy,
    "J",
    from_joules,
    as_joules
);

impl Energy {
    /// Creates an energy from electron-volts.
    #[must_use]
    pub fn from_ev(ev: f64) -> Self {
        Self::from_joules(ev * ELECTRON_VOLT)
    }

    /// Returns the energy in electron-volts.
    #[must_use]
    pub fn as_ev(self) -> f64 {
        self.as_joules() / ELECTRON_VOLT
    }

    /// Raises the energy to the 3/2 power, returning J^{3/2}
    /// (the FN exponent uses `ΦB^{3/2}`; this keeps the call sites honest
    /// about leaving the unit system).
    ///
    /// # Panics
    ///
    /// Panics if the energy is negative (no real 3/2 power exists).
    #[must_use]
    pub fn pow_three_halves(self) -> f64 {
        assert!(
            self.as_joules() >= 0.0,
            "pow_three_halves requires a non-negative energy"
        );
        self.as_joules().powf(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ev_round_trip() {
        let e = Energy::from_ev(3.2);
        assert!((e.as_ev() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn three_halves_power_of_barrier() {
        let phi = Energy::from_ev(3.2);
        let expected = (3.2 * ELECTRON_VOLT).powf(1.5);
        assert!((phi.pow_three_halves() - expected).abs() / expected < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn three_halves_power_rejects_negative() {
        let _ = Energy::from_ev(-1.0).pow_three_halves();
    }
}
