//! Capacitance (farads) and capacitance per area (F/m²) — the floating-gate
//! capacitance network of eq. (2).

use crate::{Area, Charge, Voltage};

quantity!(
    /// A capacitance in farads.
    ///
    /// Nanoscale floating-gate capacitances are attofarads;
    /// display formatting handles the prefixes.
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::{Capacitance, Voltage};
    ///
    /// let c = Capacitance::from_farads(1.92e-18);
    /// let q = c * Voltage::from_volts(3.0);
    /// assert!((q.as_coulombs() - 5.76e-18).abs() < 1e-30);
    /// ```
    Capacitance,
    "F",
    from_farads,
    as_farads
);

quantity!(
    /// A capacitance per unit area in farads per square meter
    /// (parallel-plate oxide capacitance `ε₀·ε_r / thickness`).
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::{CapacitancePerArea, Area};
    ///
    /// let cpa = CapacitancePerArea::from_farads_per_square_meter(6.9e-3);
    /// let c = cpa * Area::from_square_nanometers(484.0);
    /// assert!(c.as_farads() > 0.0);
    /// ```
    CapacitancePerArea,
    "F/m\u{00b2}",
    from_farads_per_square_meter,
    as_farads_per_square_meter
);

impl Capacitance {
    /// Creates a capacitance from attofarads.
    #[must_use]
    pub const fn from_attofarads(af: f64) -> Self {
        Self::from_farads(af * 1.0e-18)
    }

    /// Returns the capacitance in attofarads.
    #[must_use]
    pub fn as_attofarads(self) -> f64 {
        self.as_farads() * 1.0e18
    }
}

impl core::ops::Mul<Voltage> for Capacitance {
    type Output = Charge;
    fn mul(self, rhs: Voltage) -> Charge {
        Charge::from_coulombs(self.as_farads() * rhs.as_volts())
    }
}

impl core::ops::Mul<Capacitance> for Voltage {
    type Output = Charge;
    fn mul(self, rhs: Capacitance) -> Charge {
        rhs * self
    }
}

impl core::ops::Mul<Area> for CapacitancePerArea {
    type Output = Capacitance;
    fn mul(self, rhs: Area) -> Capacitance {
        Capacitance::from_farads(self.as_farads_per_square_meter() * rhs.as_square_meters())
    }
}

impl core::ops::Mul<CapacitancePerArea> for Area {
    type Output = Capacitance;
    fn mul(self, rhs: CapacitancePerArea) -> Capacitance {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attofarad_round_trip() {
        let c = Capacitance::from_attofarads(1.92);
        assert!((c.as_farads() - 1.92e-18).abs() < 1e-30);
        assert!((c.as_attofarads() - 1.92).abs() < 1e-12);
    }

    #[test]
    fn capacitance_voltage_commutes() {
        let c = Capacitance::from_attofarads(2.0);
        let v = Voltage::from_volts(1.5);
        assert_eq!((c * v).as_coulombs(), (v * c).as_coulombs());
    }

    #[test]
    fn per_area_times_area() {
        let cpa = CapacitancePerArea::from_farads_per_square_meter(1.0e-2);
        let a = Area::from_square_meters(1.0e-16);
        assert!(((cpa * a).as_farads() - 1.0e-18).abs() < 1e-30);
    }
}
