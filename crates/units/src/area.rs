//! Area in square meters (gate, overlap and cell areas).

quantity!(
    /// An area in square meters.
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::Area;
    ///
    /// let gate = Area::from_square_nanometers(22.0 * 22.0);
    /// assert!((gate.as_square_meters() - 4.84e-16).abs() < 1e-28);
    /// ```
    Area,
    "m\u{00b2}",
    from_square_meters,
    as_square_meters
);

impl Area {
    /// Creates an area from square nanometers.
    #[must_use]
    pub const fn from_square_nanometers(nm2: f64) -> Self {
        Self::from_square_meters(nm2 * 1.0e-18)
    }

    /// Returns the area in square nanometers.
    #[must_use]
    pub fn as_square_nanometers(self) -> f64 {
        self.as_square_meters() * 1.0e18
    }

    /// Creates an area from square centimeters (device-physics convention).
    #[must_use]
    pub const fn from_square_centimeters(cm2: f64) -> Self {
        Self::from_square_meters(cm2 * 1.0e-4)
    }

    /// Returns the area in square centimeters.
    #[must_use]
    pub fn as_square_centimeters(self) -> f64 {
        self.as_square_meters() * 1.0e4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_centimeter_round_trip() {
        let a = Area::from_square_centimeters(1.0);
        assert!((a.as_square_meters() - 1e-4).abs() < 1e-16);
        assert!((a.as_square_centimeters() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn square_nanometer_round_trip() {
        let a = Area::from_square_nanometers(484.0);
        assert!((a.as_square_nanometers() - 484.0).abs() < 1e-9);
    }
}
