//! Time in seconds (program/erase pulse widths, saturation time, retention).

quantity!(
    /// A duration in seconds.
    ///
    /// Program transients live in nanoseconds–milliseconds; retention in
    /// years. Both extremes are exercised by the simulator.
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::Time;
    ///
    /// let ten_years = Time::from_years(10.0);
    /// assert!(ten_years.as_seconds() > 3.0e8);
    /// ```
    Time,
    "s",
    from_seconds,
    as_seconds
);

impl Time {
    /// Creates a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanoseconds(ns: f64) -> Self {
        Self::from_seconds(ns * 1.0e-9)
    }

    /// Returns the duration in nanoseconds.
    #[must_use]
    pub fn as_nanoseconds(self) -> f64 {
        self.as_seconds() * 1.0e9
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_microseconds(us: f64) -> Self {
        Self::from_seconds(us * 1.0e-6)
    }

    /// Returns the duration in microseconds.
    #[must_use]
    pub fn as_microseconds(self) -> f64 {
        self.as_seconds() * 1.0e6
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_milliseconds(ms: f64) -> Self {
        Self::from_seconds(ms * 1.0e-3)
    }

    /// Returns the duration in milliseconds.
    #[must_use]
    pub fn as_milliseconds(self) -> f64 {
        self.as_seconds() * 1.0e3
    }

    /// Creates a duration from Julian years (365.25 days), the retention
    /// convention.
    #[must_use]
    pub const fn from_years(years: f64) -> Self {
        Self::from_seconds(years * 365.25 * 24.0 * 3600.0)
    }

    /// Returns the duration in Julian years.
    #[must_use]
    pub fn as_years(self) -> f64 {
        self.as_seconds() / (365.25 * 24.0 * 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanosecond_round_trip() {
        let t = Time::from_nanoseconds(12.5);
        assert!((t.as_nanoseconds() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn year_conversion() {
        let t = Time::from_years(10.0);
        assert!((t.as_seconds() - 3.15576e8).abs() < 1.0);
        assert!((t.as_years() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn milliseconds_and_microseconds() {
        assert!((Time::from_milliseconds(1.0).as_microseconds() - 1000.0).abs() < 1e-9);
    }
}
