//! # gnr-units
//!
//! Dimensioned quantities and physical constants for the `gnr-flash`
//! simulator, a reproduction of Hossain et al., *"Multilayer Layer Graphene
//! Nanoribbon Flash Memory: Analysis of Programming and Erasing Operation"*
//! (IEEE SOCC 2014).
//!
//! Every physical value exchanged between crates in this workspace is a
//! newtype over `f64` carrying its SI unit in the type
//! ([C-NEWTYPE](https://rust-lang.github.io/api-guidelines/type-safety.html)).
//! Only physically meaningful arithmetic is implemented: dividing a
//! [`Voltage`] by a [`Length`] yields an [`ElectricField`] (eq. (5) of the
//! paper), multiplying a [`CurrentDensity`] by an [`Area`] yields a
//! [`Current`], and so on. Dimensionally nonsensical expressions fail to
//! compile.
//!
//! # Example
//!
//! Computing the tunnel-oxide field of the paper's worked example
//! (`VFG = 9 V` across `XTO = 5 nm`):
//!
//! ```
//! use gnr_units::{Voltage, Length};
//!
//! let v_fg = Voltage::from_volts(9.0);
//! let x_to = Length::from_nanometers(5.0);
//! let field = v_fg / x_to;
//! assert!((field.as_volts_per_meter() - 1.8e9).abs() < 1.0);
//! assert!((field.as_megavolts_per_centimeter() - 18.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod macros;

pub mod constants;
pub mod fmt_eng;

mod area;
mod capacitance;
mod charge;
mod current;
mod energy;
mod field;
mod length;
mod mass;
mod temperature;
mod time;
mod voltage;

pub use area::Area;
pub use capacitance::{Capacitance, CapacitancePerArea};
pub use charge::{Charge, ChargeDensity};
pub use current::{Current, CurrentDensity};
pub use energy::Energy;
pub use field::ElectricField;
pub use length::Length;
pub use mass::Mass;
pub use temperature::Temperature;
pub use time::Time;
pub use voltage::Voltage;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_quantity_ops_compose() {
        let v = Voltage::from_volts(9.0);
        let d = Length::from_nanometers(5.0);
        let e = v / d;
        assert!((e.as_volts_per_meter() - 1.8e9).abs() < 1e-3);
        // Round trip: E * d == v.
        let v2 = e * d;
        assert!((v2.as_volts() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn charge_capacitance_voltage_triangle() {
        let c = Capacitance::from_farads(2e-18);
        let v = Voltage::from_volts(3.0);
        let q = c * v;
        assert!((q.as_coulombs() - 6e-18).abs() < 1e-30);
        let v2 = q / c;
        assert!((v2.as_volts() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn current_area_time_chain() {
        let j = CurrentDensity::from_amps_per_square_meter(1e6);
        let a = Area::from_square_nanometers(22.0 * 22.0);
        let i = j * a;
        let q = i * Time::from_seconds(1e-9);
        assert!(q.as_coulombs() > 0.0);
        assert!(q.as_electrons() > 1.0);
    }
}
