//! Electric field in volts per meter (oxide fields driving tunneling).

use crate::{Length, Voltage};

quantity!(
    /// An electric field in volts per meter.
    ///
    /// Device literature quotes oxide fields in MV/cm;
    /// [`ElectricField::as_megavolts_per_centimeter`] converts
    /// (1 MV/cm = 10⁸ V/m).
    ///
    /// # Example
    ///
    /// ```
    /// use gnr_units::ElectricField;
    ///
    /// let e = ElectricField::from_volts_per_meter(1.8e9);
    /// assert!((e.as_megavolts_per_centimeter() - 18.0).abs() < 1e-9);
    /// ```
    ElectricField,
    "V/m",
    from_volts_per_meter,
    as_volts_per_meter
);

impl ElectricField {
    /// Creates a field from megavolts per centimeter.
    #[must_use]
    pub const fn from_megavolts_per_centimeter(mv_cm: f64) -> Self {
        Self::from_volts_per_meter(mv_cm * 1.0e8)
    }

    /// Returns the field in megavolts per centimeter.
    #[must_use]
    pub fn as_megavolts_per_centimeter(self) -> f64 {
        self.as_volts_per_meter() * 1.0e-8
    }
}

impl core::ops::Mul<Length> for ElectricField {
    type Output = Voltage;
    fn mul(self, rhs: Length) -> Voltage {
        Voltage::from_volts(self.as_volts_per_meter() * rhs.as_meters())
    }
}

impl core::ops::Mul<ElectricField> for Length {
    type Output = Voltage;
    fn mul(self, rhs: ElectricField) -> Voltage {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mv_per_cm_conversion() {
        let e = ElectricField::from_megavolts_per_centimeter(10.0);
        assert!((e.as_volts_per_meter() - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn field_times_length_recovers_voltage() {
        let v = ElectricField::from_volts_per_meter(1.8e9) * Length::from_nanometers(5.0);
        assert!((v.as_volts() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn commuted_multiplication_agrees() {
        let e = ElectricField::from_volts_per_meter(2.0e8);
        let d = Length::from_nanometers(12.0);
        assert_eq!((e * d).as_volts(), (d * e).as_volts());
    }
}
