//! Engineering-notation formatting (SI prefixes) for quantity `Display`
//! implementations and harness tables.
//!
//! # Example
//!
//! ```
//! use gnr_units::fmt_eng::eng;
//!
//! assert_eq!(eng(5.0e-9, "m"), "5.000 nm");
//! assert_eq!(eng(1.8e9, "V/m"), "1.800 GV/m");
//! assert_eq!(eng(0.0, "A"), "0.000 A");
//! ```

/// SI prefixes from `1e-24` (yocto) to `1e24` (yotta), index 8 = no prefix.
const PREFIXES: [&str; 17] = [
    "y", "z", "a", "f", "p", "n", "\u{00b5}", "m", "", "k", "M", "G", "T", "P", "E", "Z", "Y",
];

/// Formats `value` with an SI prefix and the given unit symbol.
///
/// Non-finite values are rendered as-is (`inf m`, `NaN V`); zero is rendered
/// without a prefix. Values outside the prefix table saturate at yocto/yotta.
#[must_use]
pub fn eng(value: f64, unit: &str) -> String {
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    if value == 0.0 {
        return format!("0.000 {unit}");
    }
    let exponent = value.abs().log10().floor();
    // Engineering notation: exponent a multiple of 3.
    let eng_exp = (exponent / 3.0).floor() as i32;
    let idx = (eng_exp + 8).clamp(0, 16) as usize;
    let scale = 10f64.powi((idx as i32 - 8) * 3);
    let scaled = value / scale;
    format!("{scaled:.3} {}{unit}", PREFIXES[idx])
}

/// Formats `value` in scientific notation with the unit, for log-scale
/// series (tunneling currents span > 20 decades).
#[must_use]
pub fn sci(value: f64, unit: &str) -> String {
    format!("{value:.4e} {unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanometer_range() {
        assert_eq!(eng(5.0e-9, "m"), "5.000 nm");
        assert_eq!(eng(-5.0e-9, "m"), "-5.000 nm");
    }

    #[test]
    fn unit_range_has_no_prefix() {
        assert_eq!(eng(2.5, "V"), "2.500 V");
    }

    #[test]
    fn giga_range() {
        assert_eq!(eng(1.8e9, "V/m"), "1.800 GV/m");
    }

    #[test]
    fn attofarad_range() {
        assert_eq!(eng(1.92e-18, "F"), "1.920 aF");
    }

    #[test]
    fn saturates_beyond_table() {
        // 1e30 saturates at yotta (1e24).
        assert_eq!(eng(1.0e30, "x"), "1000000.000 Yx");
    }

    #[test]
    fn non_finite_values_pass_through() {
        assert_eq!(eng(f64::INFINITY, "A"), "inf A");
        assert!(eng(f64::NAN, "A").starts_with("NaN"));
    }

    #[test]
    fn sci_formats_exponent() {
        assert_eq!(sci(1.234e-7, "A/m^2"), "1.2340e-7 A/m^2");
    }
}
