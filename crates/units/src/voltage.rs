//! Electric potential in volts (gate, floating-gate and terminal voltages).

use crate::{ElectricField, Length};

quantity!(
    /// An electric potential difference in volts.
    ///
    /// # Example
    ///
    /// Eq. (5) of the paper, `E = (VFG − VS) / XTO`:
    ///
    /// ```
    /// use gnr_units::{Voltage, Length};
    ///
    /// let e = (Voltage::from_volts(9.0) - Voltage::from_volts(0.0))
    ///     / Length::from_nanometers(5.0);
    /// assert!((e.as_volts_per_meter() - 1.8e9).abs() < 1.0);
    /// ```
    Voltage,
    "V",
    from_volts,
    as_volts
);

impl Voltage {
    /// Creates a voltage from millivolts (e.g. the paper's 50 mV drain bias).
    #[must_use]
    pub const fn from_millivolts(mv: f64) -> Self {
        Self::from_volts(mv * 1.0e-3)
    }

    /// Returns the voltage in millivolts.
    #[must_use]
    pub fn as_millivolts(self) -> f64 {
        self.as_volts() * 1.0e3
    }
}

impl core::ops::Div<Length> for Voltage {
    type Output = ElectricField;
    fn div(self, rhs: Length) -> ElectricField {
        ElectricField::from_volts_per_meter(self.as_volts() / rhs.as_meters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_from_voltage_over_length() {
        let e = Voltage::from_volts(6.0) / Length::from_nanometers(12.0);
        assert!((e.as_volts_per_meter() - 5.0e8).abs() < 1.0);
    }

    #[test]
    fn millivolt_round_trip() {
        let v = Voltage::from_millivolts(50.0);
        assert!((v.as_volts() - 0.05).abs() < 1e-15);
        assert!((v.as_millivolts() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn negation_models_erase_bias() {
        let program = Voltage::from_volts(15.0);
        let erase = -program;
        assert_eq!(erase.as_volts(), -15.0);
        assert_eq!(erase.signum(), -1.0);
    }
}
