//! The floating-gate capacitance network — eq. (2) and (3) of the paper.
//!
//! ```text
//! CT  = CFC + CFS + CFB + CFD                          (2)
//! VFG = GCR·VGS + QFG/CT,   GCR = CFC/CT               (3)
//! ```
//!
//! The generalised form implemented by
//! [`CapacitanceNetwork::floating_gate_voltage_full`] keeps the source,
//! drain and body terms; the paper's eq. (3) is the special case with all
//! of them grounded (exactly how the paper treats the 50 mV drain bias,
//! §III).

use gnr_units::{Capacitance, Charge, Voltage};

use crate::geometry::FgtGeometry;
use crate::{DeviceError, Result};
use gnr_materials::oxide::Oxide;

/// The four capacitances coupling the floating gate to its terminals.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapacitanceNetwork {
    /// Floating gate ↔ control gate (through the control oxide).
    cfc: Capacitance,
    /// Floating gate ↔ source overlap.
    cfs: Capacitance,
    /// Floating gate ↔ body/channel (through the tunnel oxide).
    cfb: Capacitance,
    /// Floating gate ↔ drain overlap.
    cfd: Capacitance,
}

impl CapacitanceNetwork {
    /// Creates the network from four explicit capacitances.
    ///
    /// # Errors
    ///
    /// [`DeviceError::InvalidParameter`] when `CFC` is non-positive or any
    /// other capacitance is negative.
    pub fn new(
        cfc: Capacitance,
        cfs: Capacitance,
        cfb: Capacitance,
        cfd: Capacitance,
    ) -> Result<Self> {
        if cfc.as_farads() <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "cfc",
                value: cfc.as_farads(),
                constraint: "must be positive",
            });
        }
        for (name, c) in [("cfs", cfs), ("cfb", cfb), ("cfd", cfd)] {
            if c.as_farads() < 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name,
                    value: c.as_farads(),
                    constraint: "must be non-negative",
                });
            }
        }
        Ok(Self { cfc, cfs, cfb, cfd })
    }

    /// Builds the network from parallel-plate estimates over the cell
    /// geometry: `CFC` spans the full gate area through the control
    /// oxide; the tunnel-oxide capacitance is split between body (80 %)
    /// and the source/drain overlaps (10 % each).
    ///
    /// Real cells tune `GCR` with wrap-around control gates; use
    /// [`Self::from_gcr`] to pin the paper's `GCR = 0.6` exactly.
    #[must_use]
    pub fn from_geometry(
        geometry: &FgtGeometry,
        tunnel_oxide: &Oxide,
        control_oxide: &Oxide,
    ) -> Self {
        let area = geometry.gate_area();
        let cfc = control_oxide.capacitance_per_area(geometry.control_oxide_thickness()) * area;
        let c_tox = tunnel_oxide.capacitance_per_area(geometry.tunnel_oxide_thickness()) * area;
        Self {
            cfc,
            cfs: c_tox * 0.1,
            cfb: c_tox * 0.8,
            cfd: c_tox * 0.1,
        }
    }

    /// Builds a network with an exact gate-coupling ratio and total
    /// capacitance — the parameterisation the paper sweeps (Figures 6
    /// and 8 vary GCR directly). The non-control capacitance is split
    /// body 80 %, source 10 %, drain 10 %.
    ///
    /// # Errors
    ///
    /// [`DeviceError::InvalidParameter`] unless `0 < gcr < 1` and
    /// `total > 0`.
    pub fn from_gcr(gcr: f64, total: Capacitance) -> Result<Self> {
        if !(gcr > 0.0 && gcr < 1.0) {
            return Err(DeviceError::InvalidParameter {
                name: "gcr",
                value: gcr,
                constraint: "must lie strictly between 0 and 1",
            });
        }
        if total.as_farads() <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "total",
                value: total.as_farads(),
                constraint: "must be positive",
            });
        }
        let cfc = total * gcr;
        let rest = total * (1.0 - gcr);
        Ok(Self {
            cfc,
            cfs: rest * 0.1,
            cfb: rest * 0.8,
            cfd: rest * 0.1,
        })
    }

    /// Floating gate ↔ control gate capacitance `CFC`.
    #[must_use]
    pub fn cfc(&self) -> Capacitance {
        self.cfc
    }

    /// Floating gate ↔ source capacitance `CFS`.
    #[must_use]
    pub fn cfs(&self) -> Capacitance {
        self.cfs
    }

    /// Floating gate ↔ body capacitance `CFB`.
    #[must_use]
    pub fn cfb(&self) -> Capacitance {
        self.cfb
    }

    /// Floating gate ↔ drain capacitance `CFD`.
    #[must_use]
    pub fn cfd(&self) -> Capacitance {
        self.cfd
    }

    /// Total capacitance `CT` — eq. (2).
    #[must_use]
    pub fn total(&self) -> Capacitance {
        self.cfc + self.cfs + self.cfb + self.cfd
    }

    /// Gate-coupling ratio `GCR = CFC / CT`.
    #[must_use]
    pub fn gcr(&self) -> f64 {
        self.cfc / self.total()
    }

    /// Floating-gate potential — eq. (3): `VFG = GCR·VGS + QFG/CT`
    /// (source, drain and body grounded).
    #[must_use]
    pub fn floating_gate_voltage(&self, vgs: Voltage, qfg: Charge) -> Voltage {
        Voltage::from_volts(self.gcr() * vgs.as_volts()) + qfg / self.total()
    }

    /// Generalised floating-gate potential with all terminal biases:
    /// `VFG = (CFC·VGS + CFS·VS + CFB·VB + CFD·VD + QFG)/CT`.
    ///
    /// Reduces exactly to eq. (3) when `VS = VB = VD = 0`.
    #[must_use]
    pub fn floating_gate_voltage_full(
        &self,
        vgs: Voltage,
        vs: Voltage,
        vb: Voltage,
        vd: Voltage,
        qfg: Charge,
    ) -> Voltage {
        let num = self.cfc * vgs + self.cfs * vs + self.cfb * vb + self.cfd * vd;
        Voltage::from_volts((num.as_coulombs() + qfg.as_coulombs()) / self.total().as_farads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_units::Length;

    #[test]
    fn papers_worked_example_vfg_9v() {
        // §III: VGS = 15 V, GCR = 0.6, QFG = 0 → VFG = 9 V.
        let net = CapacitanceNetwork::from_gcr(0.6, Capacitance::from_attofarads(5.0)).unwrap();
        let vfg = net.floating_gate_voltage(Voltage::from_volts(15.0), Charge::ZERO);
        assert!((vfg.as_volts() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn stored_electrons_lower_vfg() {
        // §III: "Negative charge accumulation on floating gate lowers VFG".
        let net = CapacitanceNetwork::from_gcr(0.6, Capacitance::from_attofarads(5.0)).unwrap();
        let vgs = Voltage::from_volts(15.0);
        let v0 = net.floating_gate_voltage(vgs, Charge::ZERO);
        let v1 = net.floating_gate_voltage(vgs, Charge::from_electrons(-50.0));
        assert!(v1 < v0);
    }

    #[test]
    fn total_is_sum_of_four() {
        let net = CapacitanceNetwork::new(
            Capacitance::from_attofarads(3.0),
            Capacitance::from_attofarads(0.5),
            Capacitance::from_attofarads(1.0),
            Capacitance::from_attofarads(0.5),
        )
        .unwrap();
        assert!((net.total().as_attofarads() - 5.0).abs() < 1e-12);
        assert!((net.gcr() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn from_gcr_round_trips() {
        for gcr in [0.3, 0.5, 0.6, 0.8] {
            let net = CapacitanceNetwork::from_gcr(gcr, Capacitance::from_attofarads(4.0)).unwrap();
            assert!((net.gcr() - gcr).abs() < 1e-12);
            assert!((net.total().as_attofarads() - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gcr_bounds_enforced() {
        let c = Capacitance::from_attofarads(4.0);
        assert!(CapacitanceNetwork::from_gcr(0.0, c).is_err());
        assert!(CapacitanceNetwork::from_gcr(1.0, c).is_err());
        assert!(CapacitanceNetwork::from_gcr(0.5, Capacitance::ZERO).is_err());
    }

    #[test]
    fn full_form_reduces_to_eq3_when_grounded() {
        let net = CapacitanceNetwork::from_gcr(0.55, Capacitance::from_attofarads(5.0)).unwrap();
        let vgs = Voltage::from_volts(12.0);
        let q = Charge::from_electrons(-20.0);
        let simple = net.floating_gate_voltage(vgs, q);
        let full =
            net.floating_gate_voltage_full(vgs, Voltage::ZERO, Voltage::ZERO, Voltage::ZERO, q);
        assert!((simple.as_volts() - full.as_volts()).abs() < 1e-12);
    }

    #[test]
    fn drain_bias_couples_through_cfd() {
        // The paper's 50 mV drain bias perturbs VFG by (CFD/CT)·50 mV —
        // small, which is why the paper neglects it.
        let net = CapacitanceNetwork::from_gcr(0.6, Capacitance::from_attofarads(5.0)).unwrap();
        let with_vd = net.floating_gate_voltage_full(
            Voltage::from_volts(15.0),
            Voltage::ZERO,
            Voltage::ZERO,
            Voltage::from_millivolts(50.0),
            Charge::ZERO,
        );
        let delta = with_vd.as_volts() - 9.0;
        assert!(delta > 0.0 && delta < 0.005, "delta = {delta}");
    }

    #[test]
    fn from_geometry_produces_physical_values() {
        use gnr_materials::oxide::Oxide;
        let g = crate::geometry::FgtGeometry::paper_nominal();
        let net = CapacitanceNetwork::from_geometry(
            &g,
            &Oxide::silicon_dioxide(),
            &Oxide::silicon_dioxide(),
        );
        // Attofarad scale for a 22x22 nm cell.
        let total = net.total().as_attofarads();
        assert!(total > 1.0 && total < 10.0, "CT = {total} aF");
        // Planar stack: thick control oxide means modest GCR.
        assert!(net.gcr() > 0.2 && net.gcr() < 0.4, "GCR = {}", net.gcr());
    }

    #[test]
    fn with_thinner_xto_cfb_grows() {
        use gnr_materials::oxide::Oxide;
        let g = crate::geometry::FgtGeometry::paper_nominal();
        let g_thin = g.with_tunnel_oxide(Length::from_nanometers(4.0)).unwrap();
        let ox = Oxide::silicon_dioxide();
        let base = CapacitanceNetwork::from_geometry(&g, &ox, &ox);
        let thin = CapacitanceNetwork::from_geometry(&g_thin, &ox, &ox);
        assert!(thin.cfb() > base.cfb());
        assert!(thin.gcr() < base.gcr());
    }
}
