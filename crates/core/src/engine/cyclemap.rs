//! Cycle-map cache: one composed charge-to-charge map per
//! `(device dynamics, P/E cycle recipe)`, with repeated-squaring levels
//! for O(log n) multi-cycle jumps.
//!
//! The flow map ([`super::flowmap`]) made a single fixed-bias pulse two
//! interpolations; its proptest-pinned semigroup property
//! `Q(t1 + t2) == Q(t2; Q(t1))` means maps *compose*: a whole P/E cycle
//! — program pulse train followed by erase pulse train, every pulse
//! already answered by a flow map — is itself a map `F(q)` from
//! pre-cycle charge to post-cycle charge. This module tabulates that
//! composition once per [`CycleRecipe`] and then precomposes it with
//! itself: level `k` stores `F^(2^k)`, so
//! [`CycleMap::iterate`] answers "where is this cell after `n` cycles"
//! in O(log n) Hermite evaluations instead of
//! `n × pulses-per-cycle` flow-map queries. Alongside each charge table
//! the map carries a wear table `S^(2^k)(q) = Σ |ΔQ|` over the same
//! `2^k` cycles, so the endurance model's injected-charge counter
//! advances in closed form with the jump.
//!
//! # Grid, accuracy, and why squaring converges
//!
//! The tables are sampled on the union of the constituent pulses'
//! master-trajectory charge nodes (downsampled to [`MAX_GRID_NODES`])
//! — the grid the dense output is most accurate on — and interpolated
//! with monotone cubic Hermite ([`gnr_numerics::interp::Pchip`]). A
//! P/E cycle ends in an erase train driving every covered charge toward
//! the erase balance point, so `F` is strongly contractive:
//! `|F(a) − F(b)| ≪ |a − b|`. Under squaring the interpolation error of
//! level `k` enters level `k+1` through that contraction, so the n-fold
//! composition does **not** accumulate error linearly — the proptest in
//! `tests/engine_cyclemap.rs` pins `iterate(q0, n)` against `n`
//! explicit pulse-by-pulse cycles at ≤1e-6 relative error over the
//! covered span.
//!
//! # Fallback contract
//!
//! [`cycle_once`] — the exact reference that also *builds* the tables —
//! chains [`ChargeBalanceEngine::pulse_final_charge`] per pulse, so it
//! inherits the flow-map-hit / exact-integration fallback per pulse and
//! the array layer's `NoTunneling → no-op` rule. Queries outside the
//! tabulated span (and every cycle of a query that escapes mid-jump)
//! run through `cycle_once` verbatim, so fallback answers are
//! **bit-identical** to pulse-by-pulse replay.
//!
//! # Determinism
//!
//! A map is a pure function of `(device dynamics key, recipe digest)`:
//! the same tables are rebuilt from physics on any process, which is
//! why campaign checkpoints never serialize them. One caveat is
//! inherent to the greedy binary decomposition:
//! `iterate(q0, a + b)` is *not* bitwise `iterate(iterate(q0, a), b)`
//! (different level sequences). Long-horizon drivers therefore advance
//! in fixed deterministic chunks and snapshot only at chunk boundaries
//! — see `workload::EnduranceCampaign` in the flash-array crate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use gnr_numerics::hash::{fnv1a_fold_f64, FNV1A_OFFSET};
use gnr_numerics::interp::Pchip;
use gnr_units::{Charge, Voltage};

use super::cache::TierStats;
use crate::pulse::SquarePulse;
use crate::transient::ProgramPulseSpec;
use crate::{DeviceError, Result};

use super::ChargeBalanceEngine;

/// Upper bound on tabulated charge nodes per level. The union of a
/// recipe's master-trajectory nodes can run to tens of thousands; a
/// P/E cycle's composed response is far smoother than any single
/// master (the erase tail flattens everything), so ~1k nodes hold the
/// 1e-6 contract with room to spare while keeping eager level builds
/// (~20 × 2 Pchip constructions) trivial.
const MAX_GRID_NODES: usize = 1025;

/// Number of repeated-squaring levels built eagerly: level `k` jumps
/// `2^k` cycles, so 21 levels cover single jumps up to ~2M cycles —
/// two decades past the 10k-cycle endurance campaigns that motivated
/// the tier. Each level is two Pchip tables; building all of them
/// costs less than one master-trajectory integration.
const MAX_LEVELS: usize = 21;

/// A fixed P/E cycle waveform: the program pulse train followed by the
/// erase pulse train, applied unconditionally (no verify branches —
/// a *representative* open-loop cycle, typically recorded from one
/// closed-loop ISPP program/erase of a fresh nominal cell so the rung
/// count matches what the array layer actually applies).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CycleRecipe {
    pulses: Vec<SquarePulse>,
}

impl CycleRecipe {
    /// Creates a recipe from the full pulse train of one cycle
    /// (program rungs then erase rungs, in application order).
    ///
    /// # Panics
    ///
    /// Panics when `pulses` is empty.
    #[must_use]
    pub fn new(pulses: Vec<SquarePulse>) -> Self {
        assert!(
            !pulses.is_empty(),
            "a cycle recipe needs at least one pulse"
        );
        Self { pulses }
    }

    /// The cycle's pulses in application order.
    #[must_use]
    pub fn pulses(&self) -> &[SquarePulse] {
        &self.pulses
    }

    /// FNV-1a digest over the exact amplitude/width bit patterns — the
    /// recipe component of the cycle-map cache key.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.pulses.iter().fold(FNV1A_OFFSET, |h, p| {
            let h = fnv1a_fold_f64(h, p.amplitude.as_volts());
            fnv1a_fold_f64(h, p.width.as_seconds())
        })
    }
}

/// Where a charge lands after some number of cycles, plus the wear
/// (total `Σ |ΔQ|` through the tunnel oxide, C) accrued on the way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleOutcome {
    /// Post-cycle stored charge (C).
    pub charge: f64,
    /// Injected-charge wear over the jump (C).
    pub wear: f64,
}

/// Runs one explicit P/E cycle from `q0` coulombs: every pulse through
/// [`ChargeBalanceEngine::pulse_final_charge`] (flow-map hit or exact
/// fallback per pulse), accumulating `|ΔQ|` wear. A pulse below the
/// tunneling floor ([`DeviceError::NoTunneling`]) is a no-op — the
/// same rule the array layer's pulse executor applies.
///
/// This is simultaneously the build primitive of [`CycleMap`] and its
/// out-of-span fallback, which is what makes fallback escapes
/// bit-identical to pulse-by-pulse replay.
///
/// # Errors
///
/// Propagates any non-`NoTunneling` engine error
/// ([`DeviceError::Numerics`]).
pub fn cycle_once(
    engine: &ChargeBalanceEngine,
    recipe: &CycleRecipe,
    q0: f64,
) -> Result<CycleOutcome> {
    let mut q = q0;
    let mut wear = 0.0;
    for &pulse in recipe.pulses() {
        let spec = ProgramPulseSpec::from_pulse(pulse, Charge::from_coulombs(q));
        match engine.pulse_final_charge(&spec) {
            Ok(qn) => {
                let qn = qn.as_coulombs();
                wear += (qn - q).abs();
                q = qn;
            }
            Err(DeviceError::NoTunneling { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(CycleOutcome { charge: q, wear })
}

/// One repeated-squaring level: `f` maps pre-charge to post-charge
/// over `2^k` cycles, `wear` the injected charge over the same span.
#[derive(Debug, Clone)]
struct Level {
    f: Pchip,
    wear: Pchip,
}

/// The composed cycle map of one `(device dynamics, recipe)` pair. See
/// the module docs for the construction, accuracy and fallback model.
#[derive(Debug, Clone)]
pub struct CycleMap {
    recipe: CycleRecipe,
    /// Tabulated charge span `[lo, hi]`; queries outside escape to
    /// [`cycle_once`]. Empty `levels` ⇒ everything escapes.
    lo: f64,
    hi: f64,
    levels: Vec<Level>,
}

impl CycleMap {
    /// Tabulates the recipe's single-cycle response on the union of its
    /// pulses' master-trajectory charge nodes, then precomposes
    /// [`MAX_LEVELS`] squaring levels. A recipe whose pulses tunnel
    /// nowhere (or whose tables fail to sample) yields an empty map:
    /// every [`Self::iterate`] query then runs explicitly.
    #[must_use]
    pub fn build(engine: &ChargeBalanceEngine, recipe: &CycleRecipe) -> Self {
        let grid = grid_nodes(engine, recipe);
        let mut empty = Self {
            recipe: recipe.clone(),
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            levels: Vec::new(),
        };
        if grid.len() < 2 {
            return empty;
        }

        // Level 0: one explicit cycle per grid node. A node that errors
        // (Numerics in a fallback integration) is dropped; the grid
        // stays strictly increasing.
        let mut xs = Vec::with_capacity(grid.len());
        let mut f1 = Vec::with_capacity(grid.len());
        let mut w1 = Vec::with_capacity(grid.len());
        for &q in &grid {
            if let Ok(out) = cycle_once(engine, recipe, q) {
                if out.charge.is_finite() && out.wear.is_finite() {
                    xs.push(q);
                    f1.push(out.charge);
                    w1.push(out.wear);
                }
            }
        }
        if xs.len() < 2 {
            return empty;
        }
        let (Ok(f), Ok(wear)) = (Pchip::new(xs.clone(), f1), Pchip::new(xs.clone(), w1)) else {
            return empty;
        };
        empty.lo = xs[0];
        empty.hi = *xs.last().expect("non-empty grid");
        let mut levels = vec![Level { f, wear }];

        // Level k+1 from level k:
        //   F_{k+1}(x) = F_k(F_k(x))
        //   S_{k+1}(x) = S_k(x) + S_k(F_k(x))
        // `Pchip::eval` clamps outside the span, but the composed image
        // of the span stays well inside it (the cycle ends in an erase
        // pulling everything toward one balance point), so the clamp is
        // never the answer for in-span queries.
        for _ in 1..MAX_LEVELS {
            let prev = levels.last().expect("level 0 exists");
            let mut fk = Vec::with_capacity(xs.len());
            let mut sk = Vec::with_capacity(xs.len());
            for &x in &xs {
                let mid = prev.f.eval(x);
                fk.push(prev.f.eval(mid));
                sk.push(prev.wear.eval(x) + prev.wear.eval(mid));
            }
            let (Ok(f), Ok(wear)) = (Pchip::new(xs.clone(), fk), Pchip::new(xs.clone(), sk)) else {
                break;
            };
            levels.push(Level { f, wear });
        }
        empty.levels = levels;
        empty
    }

    /// The recipe this map composes.
    #[must_use]
    pub fn recipe(&self) -> &CycleRecipe {
        &self.recipe
    }

    /// The tabulated charge span `(lo, hi)` in coulombs, or `None` for
    /// an empty map (every query escapes to the explicit path).
    #[must_use]
    pub fn charge_range(&self) -> Option<(f64, f64)> {
        (!self.levels.is_empty()).then_some((self.lo, self.hi))
    }

    /// Number of precomposed squaring levels (level `k` jumps `2^k`
    /// cycles in one evaluation).
    #[must_use]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Whether `q0` would be answered from the tables (`false` ⇒ the
    /// whole query runs through [`cycle_once`] verbatim).
    #[must_use]
    pub fn covers(&self, q0: f64) -> bool {
        !self.levels.is_empty() && q0 >= self.lo && q0 <= self.hi
    }

    /// Where a cell starting at `q0` coulombs lands after `n` cycles,
    /// with the wear accrued on the way.
    ///
    /// Greedy binary decomposition: the largest level `≤ remaining` is
    /// applied repeatedly, re-checking the span before each jump; the
    /// moment the charge escapes the tabulated span (or the map is
    /// empty) the remaining cycles run explicitly through
    /// [`cycle_once`] — bit-identical to pulse-by-pulse replay.
    ///
    /// Because the level sequence depends on `n`,
    /// `iterate(q0, a + b)` is generally *not* bitwise
    /// `iterate(iterate(q0, a), b)`; drivers that need resumable
    /// digests must advance in fixed chunks (see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates engine errors from explicit fallback cycles.
    pub fn iterate(&self, engine: &ChargeBalanceEngine, q0: f64, n: u64) -> Result<CycleOutcome> {
        let mut q = q0;
        let mut wear = 0.0;
        let mut remaining = n;
        while remaining > 0 {
            if !self.covers(q) {
                for _ in 0..remaining {
                    let out = cycle_once(engine, &self.recipe, q)?;
                    q = out.charge;
                    wear += out.wear;
                }
                break;
            }
            let max_level = self.levels.len() - 1;
            let k = usize::try_from(63 - remaining.leading_zeros())
                .expect("u32 fits usize")
                .min(max_level);
            let level = &self.levels[k];
            wear += level.wear.eval(q);
            q = level.f.eval(q);
            remaining -= 1u64 << k;
        }
        Ok(CycleOutcome { charge: q, wear })
    }
}

/// The sampling grid: sorted, deduplicated union of every pulse's
/// master-trajectory charge nodes, evenly downsampled (endpoints kept)
/// to [`MAX_GRID_NODES`].
fn grid_nodes(engine: &ChargeBalanceEngine, recipe: &CycleRecipe) -> Vec<f64> {
    let mut seen = std::collections::HashSet::new();
    let mut nodes: Vec<f64> = Vec::new();
    for &pulse in recipe.pulses() {
        // `cached` is a pure function of (device dynamics, bias) and
        // is shared with the flow-map tier — grid extraction warms the
        // same masters the per-pulse path uses.
        let map = super::flowmap::cached(engine, pulse.amplitude, Voltage::ZERO);
        for q in map.charge_nodes() {
            if q.is_finite() && seen.insert(q.to_bits()) {
                nodes.push(q);
            }
        }
    }
    nodes.sort_by(f64::total_cmp);
    if nodes.len() <= MAX_GRID_NODES {
        return nodes;
    }
    let last = nodes.len() - 1;
    (0..MAX_GRID_NODES)
        .map(|i| nodes[i * last / (MAX_GRID_NODES - 1)])
        .collect()
}

/// Cache key: the device's dynamics digest plus the recipe digest.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct CycleKey {
    device: u64,
    recipe: u64,
}

/// Upper bound on retained cycle maps (clear-wholesale per shard past
/// the cap, like the flow-map tier). Campaigns use one recipe over a
/// handful of variants, so the designed working set is tiny.
pub const MAX_CYCLE_MAPS: usize = 64;

type CycleSlot = Arc<OnceLock<Arc<CycleMap>>>;

const SHARD_COUNT: usize = 16;

type Shard = RwLock<HashMap<CycleKey, CycleSlot>>;

static MAPS: OnceLock<Vec<Shard>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn shards() -> &'static [Shard] {
    MAPS.get_or_init(|| {
        (0..SHARD_COUNT)
            .map(|_| RwLock::new(HashMap::new()))
            .collect()
    })
}

fn shard_of(key: &CycleKey) -> usize {
    let mixed = key.device ^ key.recipe.rotate_left(23);
    (mixed as usize) % SHARD_COUNT
}

/// Returns the shared cycle map for `engine`'s device and `recipe`,
/// building (and eagerly squaring) it on first use. Same concurrency
/// discipline as the flow-map tier: one shard read lock on a hit, a
/// per-key `OnceLock` so concurrent first queries build once, no lock
/// held across a build.
#[must_use]
pub fn cached(engine: &ChargeBalanceEngine, recipe: &CycleRecipe) -> Arc<CycleMap> {
    let key = CycleKey {
        device: engine.device_key(),
        recipe: recipe.digest(),
    };
    let shard = &shards()[shard_of(&key)];
    let hit = shard.read().get(&key).cloned();
    let slot: CycleSlot = match hit {
        Some(slot) => slot,
        None => {
            let mut map = shard.write();
            if map.len() >= MAX_CYCLE_MAPS / SHARD_COUNT && !map.contains_key(&key) {
                map.clear();
            }
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        }
    };
    let mut built_now = false;
    let map = slot.get_or_init(|| {
        built_now = true;
        Arc::new(CycleMap::build(engine, recipe))
    });
    if built_now {
        MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    Arc::clone(map)
}

/// Hit/miss/entry counters of the cycle-map cache tier.
#[must_use]
pub fn tier_stats() -> TierStats {
    TierStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: MAPS
            .get()
            .map_or(0, |shards| shards.iter().map(|s| s.read().len()).sum()),
    }
}

/// Zeroes the hit/miss counters; cached maps stay warm (see
/// [`super::cache::reset`]).
pub(crate) fn reset_counters() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Evicts every cached cycle map (counters untouched); see
/// [`super::cache::clear_entries`].
pub(crate) fn clear_entries() {
    if let Some(shards) = MAPS.get() {
        for shard in shards {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FloatingGateTransistor;
    use gnr_units::Time;

    fn engine() -> ChargeBalanceEngine {
        ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper())
    }

    fn recipe() -> CycleRecipe {
        let us = |v: f64| SquarePulse::new(Voltage::from_volts(v), Time::from_microseconds(10.0));
        CycleRecipe::new(vec![us(13.0), us(13.5), us(14.0), us(-13.0), us(-13.5)])
    }

    #[test]
    fn digest_tracks_pulse_bits() {
        let a = recipe();
        let mut pulses = a.pulses().to_vec();
        pulses[0] = SquarePulse::new(
            Voltage::from_volts(13.0 + 1e-12),
            Time::from_microseconds(10.0),
        );
        let b = CycleRecipe::new(pulses);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), recipe().digest());
    }

    #[test]
    fn single_cycle_matches_explicit_reference() {
        let engine = engine();
        let recipe = recipe();
        let map = CycleMap::build(&engine, &recipe);
        assert!(map.level_count() >= 1);
        let (lo, hi) = map.charge_range().expect("non-empty map");
        for frac in [0.1, 0.35, 0.5, 0.8] {
            let q0 = lo + frac * (hi - lo);
            let fast = map.iterate(&engine, q0, 1).unwrap();
            let exact = cycle_once(&engine, &recipe, q0).unwrap();
            let rel = ((fast.charge - exact.charge) / exact.charge.abs().max(1e-30)).abs();
            assert!(rel < 1.0e-6, "q0 {q0:e}: rel err {rel:e}");
        }
    }

    #[test]
    fn out_of_span_iterate_is_bitwise_explicit() {
        let engine = engine();
        let recipe = recipe();
        let map = CycleMap::build(&engine, &recipe);
        let (lo, hi) = map.charge_range().expect("non-empty map");
        let q0 = hi + (hi - lo); // outside the tabulated span
        let fast = map.iterate(&engine, q0, 3).unwrap();
        let mut q = q0;
        let mut wear = 0.0;
        for _ in 0..3 {
            let out = cycle_once(&engine, &recipe, q).unwrap();
            q = out.charge;
            wear += out.wear;
        }
        assert_eq!(fast.charge.to_bits(), q.to_bits());
        assert_eq!(fast.wear.to_bits(), wear.to_bits());
    }

    #[test]
    fn zero_cycles_is_identity() {
        let engine = engine();
        let map = CycleMap::build(&engine, &recipe());
        let out = map.iterate(&engine, 1.0e-18, 0).unwrap();
        assert_eq!(out.charge.to_bits(), 1.0e-18f64.to_bits());
        assert_eq!(out.wear, 0.0);
    }

    #[test]
    fn cache_shares_maps_and_counts_hits() {
        let engine = engine();
        let recipe = recipe();
        let before = tier_stats();
        let a = cached(&engine, &recipe);
        let b = cached(&engine, &recipe);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one map");
        let after = tier_stats();
        assert!(after.hits > before.hits);
        assert!(after.entries >= 1);
    }

    #[test]
    fn wear_is_positive_and_grows_with_cycles() {
        let engine = engine();
        let map = CycleMap::build(&engine, &recipe());
        let (lo, hi) = map.charge_range().expect("non-empty map");
        let q0 = 0.5 * (lo + hi);
        let one = map.iterate(&engine, q0, 1).unwrap();
        let many = map.iterate(&engine, q0, 64).unwrap();
        assert!(one.wear > 0.0);
        assert!(many.wear > one.wear);
    }
}
