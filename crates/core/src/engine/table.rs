//! Memoized log-space `J(E)` lookup tables.
//!
//! The FN current `J = A·E²·exp(−B/E)` spans tens of decades over a
//! pulse, but it is a smooth, monotone function of the field, so the
//! engine samples `ln J` on a uniform `ln E` grid once per distinct
//! model and interpolates afterwards. In log-log coordinates the
//! curvature of the FN law is `|d²ln J/d(ln E)²| = B/E`, so the
//! interpolation error is largest at the low-field end and bounded by
//! `(h²/8)·B/E_lo` nats — with the default resolution that is well
//! below 0.1 % relative error everywhere in the table domain (the
//! `tests` here and the workspace-level proptest pin this down).

use std::sync::Arc;

use gnr_numerics::interp::LinearInterpolator;
use gnr_tunneling::TunnelingModel;
use gnr_units::{CurrentDensity, ElectricField};

/// Default number of interpolation nodes.
pub const DEFAULT_NODES: usize = 2048;

/// Hard ceiling of every table domain (V/m) — far beyond any physical
/// oxide field (breakdown is ~1 GV/m).
const E_MAX: f64 = 1.0e11;

/// Lowest field magnitude ever probed when locating the table floor
/// (V/m). Below that, FN current underflows `f64` for any realistic
/// barrier.
const E_PROBE_MIN: f64 = 1.0e6;

/// Current-density floor (A/m²): fields whose current falls below this
/// are left to the exact model (which typically underflows to zero
/// there anyway).
const J_FLOOR: f64 = 1.0e-250;

/// A [`TunnelingModel`] memoized as a log-space lookup table.
///
/// Inside the tabulated field range, `current_density` is two array
/// reads and an `exp`; outside it (tiny fields whose current underflows,
/// or absurdly large fields), the call falls through to the exact inner
/// model, so the table never changes *which* biases conduct.
pub struct TabulatedJ {
    inner: Arc<dyn TunnelingModel>,
    /// `ln J` over uniform `ln E`.
    table: LinearInterpolator,
    e_lo: f64,
    e_hi: f64,
}

impl TabulatedJ {
    /// Tabulates `inner` at the default resolution.
    #[must_use]
    pub fn new(inner: Arc<dyn TunnelingModel>) -> Self {
        Self::with_resolution(inner, DEFAULT_NODES)
    }

    /// Tabulates `inner` with `nodes` log-spaced samples.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 8` or the model conducts nowhere below
    /// the table ceiling.
    #[must_use]
    pub fn with_resolution(inner: Arc<dyn TunnelingModel>, nodes: usize) -> Self {
        assert!(nodes >= 8, "a J(E) table needs at least 8 nodes");

        // Locate the lowest field whose current is representable: probe
        // upward in eighth-decades until the model conducts.
        let mut e_lo = E_PROBE_MIN;
        let step = 10.0f64.powf(0.125);
        while e_lo < E_MAX {
            let j = inner
                .current_density(ElectricField::from_volts_per_meter(e_lo))
                .as_amps_per_square_meter();
            if j > J_FLOOR {
                break;
            }
            e_lo *= step;
        }
        assert!(
            e_lo < E_MAX,
            "tunneling model conducts nowhere below {E_MAX} V/m"
        );

        let (ln_lo, ln_hi) = (e_lo.ln(), E_MAX.ln());
        let h = (ln_hi - ln_lo) / (nodes - 1) as f64;
        let xs: Vec<f64> = (0..nodes).map(|i| ln_lo + h * i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| {
                let j = inner
                    .current_density(ElectricField::from_volts_per_meter(x.exp()))
                    .as_amps_per_square_meter();
                if j > 0.0 {
                    j.ln()
                } else {
                    J_FLOOR.ln()
                }
            })
            .collect();
        let table = LinearInterpolator::new(xs, ys).expect("log grid is strictly increasing");
        Self {
            inner,
            table,
            e_lo,
            e_hi: E_MAX,
        }
    }

    /// The tabulated field-magnitude range (V/m); outside it the exact
    /// model is evaluated directly.
    #[must_use]
    pub fn domain(&self) -> (f64, f64) {
        (self.e_lo, self.e_hi)
    }

    /// Number of interpolation nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.table.xs().len()
    }

    /// The exact model backing this table.
    #[must_use]
    pub fn inner(&self) -> &Arc<dyn TunnelingModel> {
        &self.inner
    }
}

impl TunnelingModel for TabulatedJ {
    fn current_density(&self, field: ElectricField) -> CurrentDensity {
        let e = field.as_volts_per_meter();
        let mag = e.abs();
        if mag <= self.e_lo || mag >= self.e_hi {
            return self.inner.current_density(field);
        }
        let ln_j = self.table.eval(mag.ln());
        CurrentDensity::from_amps_per_square_meter(e.signum() * ln_j.exp())
    }

    fn name(&self) -> &'static str {
        "tabulated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_tunneling::fn_model::FnModel;
    use gnr_units::{Energy, Mass};

    fn paper_like_model() -> FnModel {
        FnModel::new(Energy::from_ev(3.6), Mass::from_electron_masses(0.42))
    }

    #[test]
    fn table_matches_direct_fn_within_a_tenth_of_a_percent() {
        let exact = paper_like_model();
        let table = TabulatedJ::new(Arc::new(exact));
        // The Figure 6–9 field range: 0.7–3 GV/m.
        for i in 0..500 {
            let e = 7.0e8 + 4.6e6 * f64::from(i);
            let field = ElectricField::from_volts_per_meter(e);
            let j_exact = exact.current_density(field).as_amps_per_square_meter();
            let j_table = table.current_density(field).as_amps_per_square_meter();
            let rel = ((j_table - j_exact) / j_exact).abs();
            assert!(rel < 1.0e-3, "rel err {rel:e} at E = {e:e}");
        }
    }

    #[test]
    fn table_is_odd_in_the_field() {
        let table = TabulatedJ::new(Arc::new(paper_like_model()));
        let field = ElectricField::from_volts_per_meter(1.8e9);
        let fwd = table.current_density(field).as_amps_per_square_meter();
        let rev = table.current_density(-field).as_amps_per_square_meter();
        assert!(fwd > 0.0);
        assert!((fwd + rev).abs() <= 1e-12 * fwd);
    }

    #[test]
    fn zero_and_tiny_fields_fall_through_to_the_exact_model() {
        let table = TabulatedJ::new(Arc::new(paper_like_model()));
        assert_eq!(
            table
                .current_density(ElectricField::from_volts_per_meter(0.0))
                .as_amps_per_square_meter(),
            0.0
        );
        let tiny = ElectricField::from_volts_per_meter(1.0e5);
        assert_eq!(
            table.current_density(tiny).as_amps_per_square_meter(),
            paper_like_model()
                .current_density(tiny)
                .as_amps_per_square_meter()
        );
    }

    #[test]
    fn resolution_is_configurable() {
        let coarse = TabulatedJ::with_resolution(Arc::new(paper_like_model()), 64);
        let fine = TabulatedJ::with_resolution(Arc::new(paper_like_model()), 4096);
        assert_eq!(coarse.nodes(), 64);
        assert_eq!(fine.nodes(), 4096);
        let field = ElectricField::from_volts_per_meter(1.2e9);
        let exact = paper_like_model()
            .current_density(field)
            .as_amps_per_square_meter();
        let ec = (coarse.current_density(field).as_amps_per_square_meter() - exact).abs();
        let ef = (fine.current_density(field).as_amps_per_square_meter() - exact).abs();
        assert!(ef <= ec, "finer tables are at least as accurate");
    }
}
