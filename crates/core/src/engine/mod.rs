//! The batched, cache-backed charge-balance simulation engine.
//!
//! # Why this layer exists
//!
//! The paper's central computation is the charge balance
//! `dQFG/dt = A·(J_control − J_tunnel)` (Figures 4–9 are all views of
//! it). The seed implementation evaluated both FN exponentials inside
//! the ODE right-hand side on every step of every pulse of every cell —
//! an array-level operation (page program, block erase, ISPP ladder)
//! re-derived the same `J(E)` curves thousands of times, serially.
//!
//! This module splits the computation into reusable pieces:
//!
//! * **[`table::TabulatedJ`]** — a tunneling model memoized as a
//!   log-space `J(E)` lookup on `gnr_numerics::interp`: `ln J` sampled
//!   over a uniform `ln E` grid, two array reads + one `exp` per query,
//!   exact-model fallback outside the tabulated range. Relative error
//!   is bounded by the grid curvature (`≲0.1 %`, pinned by a proptest).
//! * **[`cache`]** — a process-wide table cache keyed on the FN
//!   `(A, B)` coefficient bits. Every cell of an array, every GCR/XTO
//!   variant of a sweep, and every worker thread share the same four
//!   path tables, built once. [`cache::stats`] exposes hit/miss/entry
//!   telemetry for both this cache and the flow-map cache below.
//! * **[`flowmap`]** — the trajectory tier: for a fixed pulse bias the
//!   charge balance is a 1-D *autonomous* ODE, so one dense master
//!   trajectory per `(device dynamics, pulse bias)` answers any
//!   `(Q0, Δt)` fixed-width pulse with two monotone interpolations
//!   ([`ChargeBalanceEngine::pulse_final_charge`], gated by
//!   [`EngineMode`]), with exact fallback outside the tabulated charge
//!   range or time horizon.
//! * **[`ChargeBalanceEngine`]** — owns a device plus four pluggable
//!   [`TunnelingModel`] paths (channel→FG, FG→channel, FG→gate,
//!   gate→FG) and runs the adaptive Dopri45 charge-balance loop that
//!   used to live inside `transient.rs`. `TransientSimulator` is now a
//!   thin facade over this type, so the sequential and batched paths
//!   execute byte-for-byte the same code.
//! * **[`batch::BatchSimulator`]** — rayon fan-out of independent
//!   engine runs (one per [`ProgramPulseSpec`] or per array cell),
//!   order-preserving and deterministic, which is what makes the
//!   "many cells are programmed at a time" NAND story (§II of the
//!   paper) actually parallel in this codebase.
//!
//! # Determinism
//!
//! A batched run is *bit-identical* to the equivalent sequential run:
//! each unit of work owns its integration state, the shared tables are
//! immutable after construction, and the fan-out preserves input order.
//! `tests/batch_parity.rs` asserts this end to end.

pub mod batch;
pub mod cache;
pub mod cyclemap;
pub mod flowmap;
pub mod table;

use std::fmt;
use std::sync::Arc;

use gnr_numerics::ode::{CrossingDirection, Dopri45, Event, OdeOptions};
use gnr_tunneling::TunnelingModel;
use gnr_units::{Charge, CurrentDensity, Voltage};

use crate::backend::BackendKind;
use crate::device::{FloatingGateTransistor, TunnelingState};
use crate::transient::{ProgramPulseSpec, TransientResult, TransientSample};
use crate::{DeviceError, Result};

pub use batch::BatchSimulator;
pub use cyclemap::{cycle_once, CycleMap, CycleOutcome, CycleRecipe};
pub use flowmap::PulseFlowMap;
pub use table::TabulatedJ;

/// Charging rates below this magnitude (A) count as "no tunneling":
/// [`ChargeBalanceEngine::run`] and
/// [`ChargeBalanceEngine::pulse_final_charge`] reject such bias points
/// with [`DeviceError::NoTunneling`], and the flow map does not build
/// branches from start points under it. One constant, three call sites
/// — the contracts must never drift apart.
pub(crate) const MIN_TUNNELING_RATE_AMPS: f64 = 1.0e-32;

/// How the engine answers fixed-duration pulse queries
/// ([`ChargeBalanceEngine::pulse_final_charge`]).
///
/// Full transients ([`ChargeBalanceEngine::run`]) always integrate
/// exactly — the mode only governs the final-charge fast path the array
/// layer rides (ISPP rungs, page programs, block erases).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EngineMode {
    /// Adaptive Dopri45 integration per pulse — the historical path,
    /// kept as the escape hatch for accuracy cross-checks.
    Exact,
    /// Answer from the process-wide [`flowmap`] cache: one master
    /// integration per `(device dynamics, pulse bias)`, two monotone
    /// interpolations per query, exact fallback outside the tabulated
    /// charge range or past the integrated horizon.
    ///
    /// The win assumes `(device, bias)` pairs recur — which they do for
    /// uniform and few-variant arrays (every production-scale path
    /// here). A Monte-Carlo population whose every cell carries unique
    /// continuous variation deltas makes every key single-use: each
    /// pulse then pays a master build instead of one integration.
    /// Select [`EngineMode::Exact`] (via
    /// [`BatchSimulator::with_mode`]) for such per-cell-unique sweeps.
    #[default]
    FlowMap,
}

/// The four directional tunneling paths of the cell (paper Figure 3/4),
/// as pluggable current models.
#[derive(Clone)]
pub struct TunnelPaths {
    /// Channel → floating gate through the tunnel oxide (program `Jin`).
    pub channel_emit: Arc<dyn TunnelingModel>,
    /// Floating gate → channel through the tunnel oxide (erase).
    pub fg_emit_tunnel: Arc<dyn TunnelingModel>,
    /// Floating gate → control gate through the control oxide (`Jout`).
    pub fg_emit_control: Arc<dyn TunnelingModel>,
    /// Control gate → floating gate through the control oxide.
    pub gate_emit: Arc<dyn TunnelingModel>,
}

impl TunnelPaths {
    /// Cache-backed tables for the device's four FN paths under the
    /// default [`BackendKind::GnrFloatingGate`] backend.
    #[must_use]
    pub fn cached(device: &FloatingGateTransistor) -> Self {
        Self::cached_for(BackendKind::GnrFloatingGate, device)
    }

    /// Cache-backed tables for the device's four FN paths, keyed under
    /// `backend` so two backends sharing coefficient bits never alias a
    /// table entry.
    #[must_use]
    pub fn cached_for(backend: BackendKind, device: &FloatingGateTransistor) -> Self {
        Self {
            channel_emit: cache::tabulated_for(backend, device.channel_emission_model()),
            fg_emit_tunnel: cache::tabulated_for(backend, device.fg_emission_model()),
            fg_emit_control: cache::tabulated_for(backend, device.fg_control_emission_model()),
            gate_emit: cache::tabulated_for(backend, device.gate_emission_model()),
        }
    }

    /// Exact (untabulated) FN evaluation — the seed behaviour, kept for
    /// accuracy cross-checks.
    #[must_use]
    pub fn exact(device: &FloatingGateTransistor) -> Self {
        Self {
            channel_emit: Arc::new(*device.channel_emission_model()),
            fg_emit_tunnel: Arc::new(*device.fg_emission_model()),
            fg_emit_control: Arc::new(*device.fg_control_emission_model()),
            gate_emit: Arc::new(*device.gate_emission_model()),
        }
    }
}

impl fmt::Debug for TunnelPaths {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TunnelPaths")
            .field("channel_emit", &self.channel_emit.name())
            .field("fg_emit_tunnel", &self.fg_emit_tunnel.name())
            .field("fg_emit_control", &self.fg_emit_control.name())
            .field("gate_emit", &self.gate_emit.name())
            .finish()
    }
}

/// The charge-balance engine: a device, four pluggable tunneling paths
/// and the adaptive integration loop behind every transient in the
/// workspace.
#[derive(Debug, Clone)]
pub struct ChargeBalanceEngine {
    device: FloatingGateTransistor,
    paths: TunnelPaths,
    ode_options: OdeOptions,
    saturation_fraction: f64,
    mode: EngineMode,
    /// `true` when the paths are the standard cache-backed tables of
    /// [`TunnelPaths::cached`]. The flow-map cache keys on the *device*
    /// (its dynamics digest), so only engines whose current models are
    /// the canonical device tables may share it — custom paths
    /// ([`Self::with_paths`]) always integrate exactly.
    standard_paths: bool,
    /// `true` once [`Self::with_ode_options`] overrode the defaults.
    /// Custom tolerances mean the caller wants *that* integration
    /// accuracy, which the flow map (built at its own fixed tolerance)
    /// cannot honour — such engines answer pulse queries exactly.
    custom_ode_options: bool,
    /// The device backend this engine's dynamics belong to — folded
    /// into [`Self::device_key`] so every memoization tier (J-tables,
    /// flow maps, cycle maps) is backend-disjoint.
    backend: BackendKind,
    /// [`BackendKind::fold_key`] over the owned device's
    /// [`FloatingGateTransistor::dynamics_key`], computed once at
    /// construction so the per-pulse flow-map lookup does not re-hash
    /// the (immutable) device parameters.
    device_key: u64,
}

impl ChargeBalanceEngine {
    /// Builds the engine with cache-backed `J(E)` tables and default
    /// tolerances (rtol 1e-8, atol 1e-10, saturation at 1 % of the
    /// initial net current) under the default
    /// [`BackendKind::GnrFloatingGate`] backend.
    #[must_use]
    pub fn new(device: &FloatingGateTransistor) -> Self {
        Self::new_for(BackendKind::GnrFloatingGate, device)
    }

    /// [`Self::new`] under an explicit floating-gate backend: the four
    /// `J(E)` tables and the engine's [`Self::device_key`] are keyed on
    /// `(backend, dynamics)` so CNT and GNR devices sharing parameter
    /// bits never alias a cache entry at any memoization tier.
    #[must_use]
    pub fn new_for(backend: BackendKind, device: &FloatingGateTransistor) -> Self {
        let paths = TunnelPaths::cached_for(backend, device);
        let mut engine = Self::with_paths(device, paths);
        engine.standard_paths = true;
        engine.backend = backend;
        engine.device_key = backend.fold_key(device.dynamics_key());
        engine
    }

    /// Builds the engine around explicit current models (exact FN, WKB,
    /// image-force FN, CHE surrogates, …). Custom-path engines never
    /// consult the flow-map cache (its keys identify the *device*, not
    /// the models), so every pulse integrates exactly.
    #[must_use]
    pub fn with_paths(device: &FloatingGateTransistor, paths: TunnelPaths) -> Self {
        Self {
            device: device.clone(),
            paths,
            ode_options: OdeOptions::with_tolerances(1.0e-8, 1.0e-10),
            saturation_fraction: 0.01,
            mode: EngineMode::default(),
            standard_paths: false,
            custom_ode_options: false,
            backend: BackendKind::GnrFloatingGate,
            device_key: BackendKind::GnrFloatingGate.fold_key(device.dynamics_key()),
        }
    }

    /// Selects how fixed-duration pulse queries are answered (see
    /// [`EngineMode`]); [`EngineMode::Exact`] is the cross-check escape
    /// hatch.
    #[must_use]
    pub fn with_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// The engine's pulse-query mode.
    #[must_use]
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// The backend this engine's dynamics belong to.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The backend-qualified dynamics key
    /// ([`BackendKind::fold_key`] over the owned device's
    /// [`FloatingGateTransistor::dynamics_key`]), memoized at
    /// construction (the flow-map cache key component).
    #[must_use]
    pub fn device_key(&self) -> u64 {
        self.device_key
    }

    /// Overrides the ODE solver options.
    ///
    /// Custom options also opt pulse queries out of the flow-map fast
    /// path: [`Self::pulse_final_charge`] then integrates at exactly
    /// these tolerances instead of answering from a master trajectory
    /// built at the map's own fixed tolerance — a convergence
    /// cross-check engine behaves as requested without needing
    /// [`EngineMode::Exact`] spelled out.
    #[must_use]
    pub fn with_ode_options(mut self, opts: OdeOptions) -> Self {
        self.ode_options = opts;
        self.custom_ode_options = true;
        self
    }

    /// Overrides the saturation detection fraction: `t_sat` fires when
    /// `|Jout|` reaches `(1 − fraction)·|Jin|`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    #[must_use]
    pub fn with_saturation_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "saturation fraction must be in (0, 1)"
        );
        self.saturation_fraction = fraction;
        self
    }

    /// The device this engine simulates.
    #[must_use]
    pub fn device(&self) -> &FloatingGateTransistor {
        &self.device
    }

    /// The current models on the four tunneling paths.
    #[must_use]
    pub fn paths(&self) -> &TunnelPaths {
        &self.paths
    }

    /// Signed electron flow through the tunnel oxide via the engine's
    /// path models (table-backed by default).
    #[must_use]
    pub fn tunnel_flow(&self, vfg: Voltage, vs: Voltage) -> CurrentDensity {
        crate::device::signed_flow(
            self.device.tunnel_oxide_field(vfg, vs),
            self.paths.channel_emit.as_ref(),
            self.paths.fg_emit_tunnel.as_ref(),
        )
    }

    /// Signed electron flow through the control oxide via the engine's
    /// path models.
    #[must_use]
    pub fn control_flow(&self, vgs: Voltage, vfg: Voltage) -> CurrentDensity {
        crate::device::signed_flow(
            self.device.control_oxide_field(vgs, vfg),
            self.paths.fg_emit_control.as_ref(),
            self.paths.gate_emit.as_ref(),
        )
    }

    /// Full tunneling state at a bias point — the engine-side mirror of
    /// [`FloatingGateTransistor::tunneling_state`].
    #[must_use]
    pub fn tunneling_state(&self, vgs: Voltage, vs: Voltage, qfg: Charge) -> TunnelingState {
        let vfg = self.device.floating_gate_voltage(vgs, qfg);
        let jt = self.tunnel_flow(vfg, vs);
        let jc = self.control_flow(vgs, vfg);
        let area = self.device.geometry().gate_area();
        let dq_dt = area.as_square_meters()
            * (jc.as_amps_per_square_meter() - jt.as_amps_per_square_meter());
        TunnelingState {
            vfg,
            tunnel_flow: jt,
            control_flow: jc,
            charge_rate_amps: dq_dt,
        }
    }

    /// Runs one transient (the charge-balance loop formerly inside
    /// `TransientSimulator::run`).
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoTunneling`] when the bias point produces no
    /// measurable charging current; [`DeviceError::Numerics`] if the
    /// integrator fails.
    pub fn run(&self, spec: &ProgramPulseSpec) -> Result<TransientResult> {
        let ct = self.device.capacitances().total();
        let y0 = spec.initial_charge.as_coulombs() / ct.as_farads();

        let s0 = self.tunneling_state(spec.vgs, spec.vs, spec.initial_charge);
        let i0 = s0.charge_rate_amps.abs();
        if i0 < MIN_TUNNELING_RATE_AMPS {
            return Err(DeviceError::NoTunneling {
                vgs: spec.vgs.as_volts(),
            });
        }
        // Initial time constant: move CT·1V at the initial rate.
        let tau0 = ct.as_farads() / i0;

        match spec.duration {
            Some(d) => self.run_window(spec, y0, d.as_seconds(), false),
            None => {
                // Find t_sat with a terminal event, widening the window
                // geometrically: the flows approach each other over many
                // decades of time.
                let mut t_end = 1.0e4 * tau0;
                for _ in 0..5 {
                    let probe = self.run_window(spec, y0, t_end, true)?;
                    if let Some(ts) = probe.saturation_time() {
                        return self.run_window(spec, y0, 1.5 * ts.as_seconds(), false);
                    }
                    t_end *= 1.0e3;
                }
                // No balance within 1e19·τ0 — report the longest trace.
                self.run_window(spec, y0, t_end / 1.0e3, false)
            }
        }
    }

    /// Final stored charge after one fixed-duration pulse — the
    /// array-layer hot path (ISPP rungs, page programs, block erases,
    /// soft-program compaction), which needs only where the charge
    /// *lands*, not the trace.
    ///
    /// In [`EngineMode::FlowMap`] (the default for table-backed engines)
    /// the answer comes from the process-wide [`flowmap`] cache: one
    /// master integration per `(device dynamics, pulse bias)` ever, two
    /// monotone interpolations per query. Queries outside the tabulated
    /// charge range, past the integrated horizon, saturation-seeking
    /// specs (`duration: None`), custom-path engines and engines with
    /// overridden ODE tolerances ([`Self::with_ode_options`]) fall back
    /// to the exact integration of [`Self::run`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::run`]:
    /// [`DeviceError::NoTunneling`] below the tunneling floor at the
    /// spec's own initial charge, [`DeviceError::Numerics`] if the
    /// fallback integrator fails.
    pub fn pulse_final_charge(&self, spec: &ProgramPulseSpec) -> Result<Charge> {
        if self.mode == EngineMode::FlowMap && self.standard_paths && !self.custom_ode_options {
            if let Some(duration) = spec.duration {
                // The NoTunneling contract must hold at the spec's *own*
                // initial charge even when the map could answer (its
                // tabulated span may tunnel where the cell does not);
                // every fallback path below re-enforces it inside
                // `run()`, so the guard lives only on the hit path.
                let s0 = self.tunneling_state(spec.vgs, spec.vs, spec.initial_charge);
                if s0.charge_rate_amps.abs() < MIN_TUNNELING_RATE_AMPS {
                    return Err(DeviceError::NoTunneling {
                        vgs: spec.vgs.as_volts(),
                    });
                }
                let map = flowmap::cached(self, spec.vgs, spec.vs);
                gnr_telemetry::counter_add!("engine.flowmap.queries", 1);
                if let Some(q) =
                    map.final_charge(spec.initial_charge.as_coulombs(), duration.as_seconds())
                {
                    gnr_telemetry::counter_add!("engine.flowmap.answers", 1);
                    return Ok(Charge::from_coulombs(q));
                }
                gnr_telemetry::counter_add!("engine.flowmap.escapes", 1);
            }
        }
        self.run(spec).map(|r| r.final_charge())
    }

    /// The shared [`cyclemap::CycleMap`] for this engine's device and a
    /// P/E cycle `recipe` — the time-scale-jumping tier above the flow
    /// map. `None` whenever fixed-pulse queries would not ride the flow
    /// map either (exact mode, custom paths, overridden tolerances):
    /// an interpolated multi-cycle jump has no business answering for
    /// an engine whose per-pulse contract is exact integration, so
    /// callers must then iterate cycles explicitly (e.g. through
    /// [`cyclemap::cycle_once`], which honours this engine's own
    /// per-pulse path).
    #[must_use]
    pub fn cycle_map(&self, recipe: &cyclemap::CycleRecipe) -> Option<Arc<CycleMap>> {
        (self.mode == EngineMode::FlowMap && self.standard_paths && !self.custom_ode_options)
            .then(|| cyclemap::cached(self, recipe))
    }

    /// Column-batched form of [`Self::pulse_final_charge`]: final
    /// charges after one shared fixed-width `pulse` applied to a whole
    /// column of initial charges (coulombs), index-aligned with `q0s`.
    /// This is the array layer's kernel entry point — a cell-state group
    /// column of a page program, ISPP rung or block erase dispatches
    /// here as a single call.
    ///
    /// On the flow-map path the `(device dynamics, pulse bias)` cache
    /// entry is resolved **once per call** — one probe, one `Arc`
    /// clone, one relaxed hit/miss update for the whole column — and
    /// the queries run through [`PulseFlowMap::final_charges_batch`] in
    /// charge-sorted order (a permutation sort here; answers scatter
    /// back to input order). Every element is bit-identical to calling
    /// [`Self::pulse_final_charge`] with the same `(pulse, q0)`: map
    /// queries are pure, declined cells (the kernel's per-query
    /// fallback flags) integrate through the verbatim exact path, and
    /// the [`DeviceError::NoTunneling`] floor is enforced per query at
    /// its own initial charge. Engines that never consult the flow map
    /// (exact mode, custom paths or tolerances) take the per-query
    /// scalar loop unchanged.
    ///
    /// # Errors
    ///
    /// Per element, the same contract as [`Self::pulse_final_charge`].
    pub fn pulse_final_charges(
        &self,
        pulse: crate::pulse::SquarePulse,
        q0s: &[f64],
    ) -> Vec<Result<Charge>> {
        if q0s.is_empty() {
            return Vec::new();
        }
        let _zone = gnr_telemetry::zone!("engine.pulse_batch");
        let eligible =
            self.mode == EngineMode::FlowMap && self.standard_paths && !self.custom_ode_options;
        if !eligible {
            return q0s
                .iter()
                .map(|&q0| {
                    self.pulse_final_charge(&ProgramPulseSpec::from_pulse(
                        pulse,
                        Charge::from_coulombs(q0),
                    ))
                })
                .collect();
        }
        let vgs = pulse.amplitude;
        let vs = Voltage::ZERO; // matches ProgramPulseSpec::from_pulse
        let map = flowmap::cached(self, vgs, vs);
        let mut order: Vec<usize> = (0..q0s.len()).collect();
        order.sort_by(|&a, &b| q0s[a].total_cmp(&q0s[b]));
        let sorted: Vec<f64> = order.iter().map(|&i| q0s[i]).collect();
        let mut sorted_out = vec![None; q0s.len()];
        map.final_charges_batch(&sorted, pulse.width.as_seconds(), &mut sorted_out);
        let escaped = sorted_out.iter().filter(|a| a.is_none()).count() as u64;
        gnr_telemetry::counter_add!("engine.flowmap.queries", q0s.len() as u64);
        gnr_telemetry::counter_add!("engine.flowmap.answers", q0s.len() as u64 - escaped);
        gnr_telemetry::counter_add!("engine.flowmap.escapes", escaped);
        if escaped > 0 {
            // One aggregated event per column keeps the journal
            // deterministic: this kernel always runs on the caller
            // thread (the array layer buckets columns sequentially).
            gnr_telemetry::journal::record(gnr_telemetry::journal::EventKind::FlowMapEscape {
                queries: escaped,
            });
        }
        let mut answers = vec![None; q0s.len()];
        for (&i, &a) in order.iter().zip(&sorted_out) {
            answers[i] = a;
        }
        q0s.iter()
            .zip(answers)
            .map(|(&q0, answer)| {
                let q0 = Charge::from_coulombs(q0);
                // Scalar contract, per query: the tunneling floor holds
                // at the cell's own charge (the map is consulted first
                // here, but its query is pure, so the reordering is
                // unobservable), and declined cells escape to the exact
                // integration verbatim.
                let s0 = self.tunneling_state(vgs, vs, q0);
                if s0.charge_rate_amps.abs() < MIN_TUNNELING_RATE_AMPS {
                    return Err(DeviceError::NoTunneling {
                        vgs: vgs.as_volts(),
                    });
                }
                match answer {
                    Some(q) => Ok(Charge::from_coulombs(q)),
                    None => self
                        .run(&ProgramPulseSpec::from_pulse(pulse, q0))
                        .map(|r| r.final_charge()),
                }
            })
            .collect()
    }

    fn run_window(
        &self,
        spec: &ProgramPulseSpec,
        y0: f64,
        t_end: f64,
        terminal: bool,
    ) -> Result<TransientResult> {
        let _zone = gnr_telemetry::zone!("engine.ode");
        let ct = self.device.capacitances().total().as_farads();
        let vgs = spec.vgs;
        let vs = spec.vs;

        let rhs = |_t: f64, y: &[f64], dydt: &mut [f64]| {
            let q = Charge::from_coulombs(y[0] * ct);
            let state = self.tunneling_state(vgs, vs, q);
            dydt[0] = state.charge_rate_amps / ct;
        };

        // Saturation = the paper's Jin/Jout crossing: fires when the
        // smaller flow reaches (1 − fraction) of the larger one.
        let balance = 1.0 - self.saturation_fraction;
        let sat_condition = move |_t: f64, y: &[f64]| {
            let q = Charge::from_coulombs(y[0] * ct);
            let state = self.tunneling_state(vgs, vs, q);
            let j_in = state.tunnel_flow.abs().as_amps_per_square_meter();
            let j_out = state.control_flow.abs().as_amps_per_square_meter();
            balance * j_in - j_out
        };
        let event = Event {
            label: "saturation",
            condition: &sat_condition,
            direction: CrossingDirection::Falling,
            terminal,
        };

        let (sol, hits) = Dopri45::new(self.ode_options.clone())
            .integrate_with_events(rhs, 0.0, &[y0], t_end, &[event])
            .map_err(DeviceError::from)?;

        let samples: Vec<TransientSample> = sol
            .times()
            .iter()
            .zip(sol.states())
            .map(|(&t, y)| {
                let q = Charge::from_coulombs(y[0] * ct);
                let state = self.tunneling_state(vgs, vs, q);
                TransientSample {
                    t,
                    charge: q.as_coulombs(),
                    vfg: state.vfg.as_volts(),
                    j_in: state.tunnel_flow.abs().as_amps_per_square_meter(),
                    j_out: state.control_flow.abs().as_amps_per_square_meter(),
                }
            })
            .collect();

        gnr_telemetry::counter_add!("engine.ode.integrations", 1);
        gnr_telemetry::counter_add!("engine.ode.steps", sol.accepted_steps() as u64);
        gnr_telemetry::counter_add!("engine.ode.rhs_evals", sol.rhs_evaluations() as u64);

        let first_hit = hits.first();
        Ok(TransientResult::from_parts(
            *spec,
            samples,
            first_hit.map(|h| h.t),
            first_hit.map(|h| h.state[0] * ct),
            sol.accepted_steps(),
            sol.rhs_evaluations(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use gnr_units::Time;

    #[test]
    fn engine_matches_device_state_to_table_accuracy() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::new(&device);
        let vgs = presets::program_vgs();
        let exact = device.tunneling_state(vgs, Voltage::ZERO, Charge::ZERO);
        let tabbed = engine.tunneling_state(vgs, Voltage::ZERO, Charge::ZERO);
        assert_eq!(exact.vfg, tabbed.vfg, "eq. (3) is not interpolated");
        let rel = ((tabbed.tunnel_flow.as_amps_per_square_meter()
            - exact.tunnel_flow.as_amps_per_square_meter())
            / exact.tunnel_flow.as_amps_per_square_meter())
        .abs();
        assert!(rel < 1.0e-3, "table error {rel:e}");
    }

    #[test]
    fn exact_paths_reproduce_device_flows_bitwise() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::with_paths(&device, TunnelPaths::exact(&device));
        let vgs = presets::program_vgs();
        for q_e in [-50.0, 0.0, 25.0] {
            let q = Charge::from_electrons(q_e);
            let a = device.tunneling_state(vgs, Voltage::ZERO, q);
            let b = engine.tunneling_state(vgs, Voltage::ZERO, q);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn backend_engines_separate_keys_but_gnr_stays_the_default() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let gnr = ChargeBalanceEngine::new(&device);
        let gnr2 = ChargeBalanceEngine::new_for(BackendKind::GnrFloatingGate, &device);
        let cnt = ChargeBalanceEngine::new_for(BackendKind::CntFloatingGate, &device);
        assert_eq!(gnr.backend(), BackendKind::GnrFloatingGate);
        assert_eq!(gnr.device_key(), gnr2.device_key());
        assert_ne!(
            gnr.device_key(),
            cnt.device_key(),
            "same device bits under two backends must not share flow/cycle keys"
        );
        assert_eq!(cnt.backend(), BackendKind::CntFloatingGate);
    }

    #[test]
    fn engine_run_reaches_saturation_like_the_seed() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::new(&device);
        let result = engine
            .run(&ProgramPulseSpec::program(presets::program_vgs()))
            .unwrap();
        assert!(result.saturation_time().is_some());
        assert!(result.final_charge().as_coulombs() < 0.0);
    }

    #[test]
    fn engine_rejects_sub_threshold_bias() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::new(&device);
        let err = engine.run(&ProgramPulseSpec::program(Voltage::from_volts(1.0)));
        assert!(matches!(err, Err(DeviceError::NoTunneling { .. })));
    }

    #[test]
    fn pulse_final_charge_matches_exact_mode_within_parity() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let fast = ChargeBalanceEngine::new(&device);
        let exact = ChargeBalanceEngine::new(&device).with_mode(EngineMode::Exact);
        assert_eq!(fast.mode(), EngineMode::FlowMap);
        assert_eq!(exact.mode(), EngineMode::Exact);
        let spec = ProgramPulseSpec::program(presets::program_vgs())
            .with_duration(Time::from_microseconds(10.0));
        let qf = fast.pulse_final_charge(&spec).unwrap().as_coulombs();
        let qe = exact.pulse_final_charge(&spec).unwrap().as_coulombs();
        let rel = ((qf - qe) / qe.abs().max(1e-30)).abs();
        assert!(rel < 1.0e-6, "flow-map vs exact rel err {rel:e}");
    }

    #[test]
    fn exact_mode_reproduces_run_bitwise() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::new(&device).with_mode(EngineMode::Exact);
        let spec = ProgramPulseSpec::program(presets::program_vgs())
            .with_duration(Time::from_microseconds(25.0));
        assert_eq!(
            engine.pulse_final_charge(&spec).unwrap(),
            engine.run(&spec).unwrap().final_charge()
        );
    }

    #[test]
    fn custom_ode_options_opt_out_of_the_flow_map() {
        // A convergence cross-check engine must integrate at its
        // requested tolerances, not answer from the fixed-tolerance
        // master trajectory.
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::new(&device)
            .with_ode_options(OdeOptions::with_tolerances(1.0e-12, 1.0e-14));
        assert_eq!(engine.mode(), EngineMode::FlowMap, "mode is untouched");
        let spec = ProgramPulseSpec::program(presets::program_vgs())
            .with_duration(Time::from_microseconds(10.0));
        assert_eq!(
            engine.pulse_final_charge(&spec).unwrap(),
            engine.run(&spec).unwrap().final_charge(),
            "custom tolerances must reach the pulse query bit-for-bit"
        );
    }

    #[test]
    fn custom_path_engines_never_consult_the_flow_map() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::with_paths(&device, TunnelPaths::exact(&device));
        assert!(!engine.standard_paths);
        let spec = ProgramPulseSpec::program(presets::program_vgs())
            .with_duration(Time::from_microseconds(10.0));
        assert_eq!(
            engine.pulse_final_charge(&spec).unwrap(),
            engine.run(&spec).unwrap().final_charge()
        );
    }

    #[test]
    fn pulse_final_charge_rejects_sub_threshold_bias() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::new(&device);
        let err = engine.pulse_final_charge(
            &ProgramPulseSpec::program(Voltage::from_volts(1.0))
                .with_duration(Time::from_microseconds(10.0)),
        );
        assert!(matches!(err, Err(DeviceError::NoTunneling { .. })));
    }

    #[test]
    fn column_dispatch_matches_scalar_queries_bitwise() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let cfc = device.capacitances().cfc().as_farads();
        // Unsorted charges spanning in-range, duplicate and far
        // out-of-span (exact-fallback) states.
        let q0s: Vec<f64> = [0.0, -2.0, 3.5, -2.0, 40.0, 0.7]
            .iter()
            .map(|vt| -vt * cfc)
            .collect();
        for (engine, label) in [
            (ChargeBalanceEngine::new(&device), "flow-map"),
            (
                ChargeBalanceEngine::new(&device).with_mode(EngineMode::Exact),
                "exact",
            ),
        ] {
            let pulse = crate::pulse::SquarePulse::new(
                presets::program_vgs(),
                Time::from_microseconds(10.0),
            );
            let batch = engine.pulse_final_charges(pulse, &q0s);
            for (&q0, got) in q0s.iter().zip(batch) {
                let want = engine.pulse_final_charge(&ProgramPulseSpec::from_pulse(
                    pulse,
                    Charge::from_coulombs(q0),
                ));
                match (got, want) {
                    (Ok(a), Ok(b)) => assert_eq!(
                        a.as_coulombs().to_bits(),
                        b.as_coulombs().to_bits(),
                        "{label}: q0 {q0:e}"
                    ),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("{label}: q0 {q0:e} diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn column_dispatch_enforces_the_tunneling_floor_per_query() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::new(&device);
        let pulse =
            crate::pulse::SquarePulse::new(Voltage::from_volts(1.0), Time::from_microseconds(10.0));
        let results = engine.pulse_final_charges(pulse, &[0.0, 0.0]);
        assert_eq!(results.len(), 2);
        for r in results {
            assert!(matches!(r, Err(DeviceError::NoTunneling { .. })));
        }
        assert!(engine.pulse_final_charges(pulse, &[]).is_empty());
    }

    #[test]
    fn fixed_duration_windows_are_respected() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let engine = ChargeBalanceEngine::new(&device);
        let result = engine
            .run(
                &ProgramPulseSpec::program(presets::program_vgs())
                    .with_duration(Time::from_microseconds(10.0)),
            )
            .unwrap();
        let t_last = result.samples().last().unwrap().t;
        assert!((t_last - 1.0e-5).abs() / 1.0e-5 < 1e-6);
    }
}
