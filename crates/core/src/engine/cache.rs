//! Process-wide cache of [`TabulatedJ`] tables.
//!
//! Two devices with the same emitting barrier and oxide mass share the
//! same FN law regardless of geometry or GCR, so their tables are
//! interchangeable *within one backend*. The cache keys on the backend
//! discriminant plus the `(A, B)` coefficient bits of the [`FnModel`]
//! and hands out `Arc`s: a NAND array of thousands of
//! nominally identical cells builds each of its four tunneling-path
//! tables exactly once, and every simulator thread reads them without
//! further synchronisation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use gnr_tunneling::fn_model::FnModel;

use super::table::TabulatedJ;
use crate::backend::BackendKind;

/// Hit/miss/entry counters of one memoization tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TierStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the entry.
    pub misses: u64,
    /// Entries currently retained.
    pub entries: usize,
}

impl TierStats {
    /// Hit fraction `hits / (hits + misses)` (0 for an untouched tier).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Telemetry of the engine's process-wide caches: the `J(E)` table
/// tier, the pulse flow-map tier and the P/E cycle-map tier. Benches
/// record this in their JSON so cache efficiency shows up in the perf
/// trajectory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineCacheStats {
    /// The [`TabulatedJ`] table cache (keyed on FN `(A, B)` bits).
    pub j_tables: TierStats,
    /// The [`super::flowmap`] cache (keyed on device dynamics + pulse
    /// bias bits).
    pub flow_maps: TierStats,
    /// The [`super::cyclemap`] cache (keyed on device dynamics + cycle
    /// recipe digest).
    pub cycle_maps: TierStats,
}

/// Mirrors the tier counters into the unified telemetry registry as the
/// `engine.cache` gauge collector. The tier atomics stay the source of
/// truth (this function and [`stats`] are pure reads of them), so the
/// facade and the registry can never disagree; registration happens on
/// first cache touch *after* telemetry is enabled, keeping a disabled
/// process entirely out of the registry.
fn install_telemetry_collector() {
    static INSTALLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    if !gnr_telemetry::enabled() || INSTALLED.swap(true, Ordering::Relaxed) {
        return;
    }
    gnr_telemetry::register_collector("engine.cache", || {
        let s = stats();
        let tier = |name: &str, t: TierStats| {
            vec![
                (format!("engine.cache.{name}.hits"), t.hits),
                (format!("engine.cache.{name}.misses"), t.misses),
                (format!("engine.cache.{name}.entries"), t.entries as u64),
            ]
        };
        let mut out = tier("j_tables", s.j_tables);
        out.extend(tier("flow_maps", s.flow_maps));
        out.extend(tier("cycle_maps", s.cycle_maps));
        out
    });
}

/// Snapshot of every cache tier's counters.
#[must_use]
pub fn stats() -> EngineCacheStats {
    install_telemetry_collector();
    EngineCacheStats {
        j_tables: TierStats {
            hits: TABLE_HITS.load(Ordering::Relaxed),
            misses: TABLE_MISSES.load(Ordering::Relaxed),
            entries: cached_tables(),
        },
        flow_maps: super::flowmap::tier_stats(),
        cycle_maps: super::cyclemap::tier_stats(),
    }
}

static TABLE_HITS: AtomicU64 = AtomicU64::new(0);
static TABLE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Cache key: the exact bit patterns of the FN `(A, B)` coefficients
/// plus the backend discriminant — two backends can share coefficient
/// bits (a CNT device reusing the paper's floating gate, say) yet must
/// never alias a cache entry, or a backend-level change of table policy
/// would silently leak across technologies.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct FnKey {
    backend: u64,
    a_bits: u64,
    b_bits: u64,
}

/// Shard count of the table cache: reads take one shard *read* lock
/// (shared across threads) plus a lock-free per-key `OnceLock`, so the
/// hot path — engine construction resolving its four tunneling paths —
/// never serialises on a process-wide mutex.
const SHARD_COUNT: usize = 16;

type TableSlot = Arc<OnceLock<Arc<TabulatedJ>>>;
type Shard = RwLock<HashMap<FnKey, TableSlot>>;

static TABLES: OnceLock<Vec<Shard>> = OnceLock::new();

/// Upper bound on retained tables. Real workloads use a handful of
/// distinct `(A, B)` pairs (one per electrode/oxide interface), but a
/// Monte-Carlo sweep over continuously perturbed barriers would otherwise
/// grow the cache without bound — at `MAX_TABLES / SHARD_COUNT` per
/// shard the shard is cleared wholesale (outstanding `Arc`s stay valid;
/// tables rebuild on demand in microseconds).
const MAX_TABLES: usize = 256;

fn shards() -> &'static [Shard] {
    TABLES.get_or_init(|| {
        (0..SHARD_COUNT)
            .map(|_| RwLock::new(HashMap::new()))
            .collect()
    })
}

fn shard_of(key: &FnKey) -> usize {
    let mixed = key.a_bits ^ key.b_bits.rotate_left(23) ^ key.backend.rotate_left(41);
    (mixed as usize) % SHARD_COUNT
}

/// Returns the shared table for `model` under the default
/// ([`BackendKind::GnrFloatingGate`]) backend — see [`tabulated_for`].
#[must_use]
pub fn tabulated(model: &FnModel) -> Arc<TabulatedJ> {
    tabulated_for(BackendKind::GnrFloatingGate, model)
}

/// Returns the shared table for `model` under `backend`, building it on
/// first use. The per-key `OnceLock` keeps concurrent first lookups
/// from building the table twice while never holding any shard lock
/// across the build.
#[must_use]
pub fn tabulated_for(backend: BackendKind, model: &FnModel) -> Arc<TabulatedJ> {
    install_telemetry_collector();
    let coeffs = model.coefficients();
    let key = FnKey {
        backend: backend.discriminant(),
        a_bits: coeffs.a.to_bits(),
        b_bits: coeffs.b.to_bits(),
    };
    let shard = &shards()[shard_of(&key)];
    let hit = shard.read().get(&key).cloned();
    let slot: TableSlot = match hit {
        Some(slot) => slot,
        None => {
            let mut map = shard.write();
            if map.len() >= MAX_TABLES / SHARD_COUNT && !map.contains_key(&key) {
                map.clear();
            }
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        }
    };
    let mut built_now = false;
    let table = slot.get_or_init(|| {
        built_now = true;
        Arc::new(TabulatedJ::new(Arc::new(*model)))
    });
    if built_now {
        TABLE_MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        TABLE_HITS.fetch_add(1, Ordering::Relaxed);
    }
    Arc::clone(table)
}

/// Number of distinct tables currently cached (observability hook).
#[must_use]
pub fn cached_tables() -> usize {
    TABLES
        .get()
        .map_or(0, |shards| shards.iter().map(|s| s.read().len()).sum())
}

/// Zeroes the hit/miss counters of every cache tier — **entries stay
/// warm**. Benches call this right before their measured phase so the
/// recorded `engine_cache` stats reflect only that phase — setup
/// traffic (parity sweeps, exact-mode baselines) would otherwise swamp
/// the counters. Resumed campaigns rely on the same split: calling
/// `reset` after a checkpoint restore scopes the recorded stats to
/// exactly the post-restore segment *without* cold-rebuilding masters
/// (eviction is the separate, explicit [`clear_entries`]).
pub fn reset() {
    TABLE_HITS.store(0, Ordering::Relaxed);
    TABLE_MISSES.store(0, Ordering::Relaxed);
    super::flowmap::reset_counters();
    super::cyclemap::reset_counters();
}

/// Evicts every retained entry from every cache tier (counters
/// untouched; outstanding `Arc`s stay valid and entries rebuild on
/// demand). The cold-start escape hatch `reset` deliberately is not:
/// use it to measure build costs or to bound memory, never as part of
/// scoping telemetry to a measured phase.
pub fn clear_entries() {
    if let Some(shards) = TABLES.get() {
        for shard in shards {
            shard.write().clear();
        }
    }
    super::flowmap::clear_entries();
    super::cyclemap::clear_entries();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_units::{Energy, Mass};

    #[test]
    fn identical_models_share_one_table() {
        let m1 = FnModel::new(Energy::from_ev(3.31), Mass::from_electron_masses(0.42));
        let m2 = FnModel::new(Energy::from_ev(3.31), Mass::from_electron_masses(0.42));
        let t1 = tabulated(&m1);
        let t2 = tabulated(&m2);
        assert!(
            Arc::ptr_eq(&t1, &t2),
            "same coefficients must share a table"
        );
    }

    #[test]
    fn same_model_under_distinct_backends_never_aliases() {
        let m = FnModel::new(Energy::from_ev(3.44), Mass::from_electron_masses(0.42));
        let gnr = tabulated_for(BackendKind::GnrFloatingGate, &m);
        let cnt = tabulated_for(BackendKind::CntFloatingGate, &m);
        assert!(
            !Arc::ptr_eq(&gnr, &cnt),
            "backend discriminant must separate identical coefficient bits"
        );
        // The default-path helper is the GNR entry.
        assert!(Arc::ptr_eq(&gnr, &tabulated(&m)));
    }

    #[test]
    fn distinct_models_get_distinct_tables() {
        let m1 = FnModel::new(Energy::from_ev(3.32), Mass::from_electron_masses(0.42));
        let m2 = FnModel::new(Energy::from_ev(3.87), Mass::from_electron_masses(0.42));
        assert!(!Arc::ptr_eq(&tabulated(&m1), &tabulated(&m2)));
        assert!(cached_tables() >= 2);
    }

    #[test]
    fn stats_track_table_hits_and_misses() {
        let m = FnModel::new(Energy::from_ev(3.05), Mass::from_electron_masses(0.37));
        let before = stats();
        let _first = tabulated(&m); // builds (miss) unless another test won
        let _second = tabulated(&m); // guaranteed hit
        let after = stats();
        assert!(after.j_tables.hits > before.j_tables.hits);
        assert!(after.j_tables.entries >= 1);
        assert!(after.j_tables.hit_rate() > 0.0);
    }

    #[test]
    fn hit_rate_of_an_untouched_tier_is_zero() {
        assert_eq!(TierStats::default().hit_rate(), 0.0);
    }
}
