//! Process-wide cache of [`TabulatedJ`] tables.
//!
//! Two devices with the same emitting barrier and oxide mass share the
//! same FN law regardless of geometry or GCR, so their tables are
//! interchangeable. The cache keys on the `(A, B)` coefficient bits of
//! the [`FnModel`] and hands out `Arc`s: a NAND array of thousands of
//! nominally identical cells builds each of its four tunneling-path
//! tables exactly once, and every simulator thread reads them without
//! further synchronisation.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use gnr_tunneling::fn_model::FnModel;

use super::table::TabulatedJ;

/// Cache key: the exact bit patterns of the FN `(A, B)` coefficients.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct FnKey {
    a_bits: u64,
    b_bits: u64,
}

static TABLES: OnceLock<Mutex<HashMap<FnKey, Arc<TabulatedJ>>>> = OnceLock::new();

/// Upper bound on retained tables. Real workloads use a handful of
/// distinct `(A, B)` pairs (one per electrode/oxide interface), but a
/// Monte-Carlo sweep over continuously perturbed barriers would otherwise
/// grow the cache without bound — at the cap the cache is cleared
/// wholesale (outstanding `Arc`s stay valid; tables rebuild on demand in
/// microseconds).
const MAX_TABLES: usize = 256;

/// Returns the shared table for `model`, building it on first use.
#[must_use]
pub fn tabulated(model: &FnModel) -> Arc<TabulatedJ> {
    let coeffs = model.coefficients();
    let key = FnKey {
        a_bits: coeffs.a.to_bits(),
        b_bits: coeffs.b.to_bits(),
    };
    let cache = TABLES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock();
    if map.len() >= MAX_TABLES && !map.contains_key(&key) {
        map.clear();
    }
    Arc::clone(
        map.entry(key)
            .or_insert_with(|| Arc::new(TabulatedJ::new(Arc::new(*model)))),
    )
}

/// Number of distinct tables currently cached (observability hook).
#[must_use]
pub fn cached_tables() -> usize {
    TABLES.get().map_or(0, |cache| cache.lock().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_units::{Energy, Mass};

    #[test]
    fn identical_models_share_one_table() {
        let m1 = FnModel::new(Energy::from_ev(3.31), Mass::from_electron_masses(0.42));
        let m2 = FnModel::new(Energy::from_ev(3.31), Mass::from_electron_masses(0.42));
        let t1 = tabulated(&m1);
        let t2 = tabulated(&m2);
        assert!(
            Arc::ptr_eq(&t1, &t2),
            "same coefficients must share a table"
        );
    }

    #[test]
    fn distinct_models_get_distinct_tables() {
        let m1 = FnModel::new(Energy::from_ev(3.32), Mass::from_electron_masses(0.42));
        let m2 = FnModel::new(Energy::from_ev(3.87), Mass::from_electron_masses(0.42));
        assert!(!Arc::ptr_eq(&tabulated(&m1), &tabulated(&m2)));
        assert!(cached_tables() >= 2);
    }
}
