//! Flow-map pulse-response cache: one master integration per
//! `(device dynamics, pulse bias)`, O(1) per distinct cell state.
//!
//! For a fixed pulse bias the charge balance
//! `dQFG/dt = A·(J_control − J_tunnel)` is a **one-dimensional
//! autonomous** ODE: every initial charge lies on the same integral
//! curve, differing only by a time shift. A [`PulseFlowMap`] therefore
//! integrates one dense master trajectory `Q(t)` per
//! `(device dynamics key, VGS bits, VS bits)` — reusing the Dopri45
//! dense output — and answers any `(Q0, Δt)` query with two monotone
//! interpolations:
//!
//! 1. inverse lookup `Q0 → t0` on the monotone master
//!    ([`gnr_numerics::interp::invert_monotone_hermite`]);
//! 2. cubic-Hermite evaluation of `Q(t0 + Δt)`
//!    ([`gnr_numerics::interp::hermite_segment`]).
//!
//! The map covers both sides of the pulse's equilibrium with one branch
//! each (a cell over-programmed relative to a low ISPP rung relaxes
//! *toward* the rung's balance point from below, so both flow
//! directions occur in real ladders). Queries outside the tabulated
//! charge range, or whose end time falls past the integrated horizon
//! (pulses that would ride into saturation), return `None` and the
//! engine falls back to the exact integration path — which is cheap
//! exactly there, because the dynamics near equilibrium are slow.
//!
//! The same memoize-the-physics move that took per-step FN exponentials
//! to [`super::table::TabulatedJ`] lookups, applied one level up: a NAND
//! page program over thousands of distinct cell states costs ~one
//! integration total, not one per `(variant, charge)` group.
//!
//! # When the map pays off
//!
//! A master build costs roughly a saturation-length integration at
//! tight tolerance — hundreds of times one fixed-width pulse — so the
//! cache wins when keys recur: uniform arrays (one variant × a handful
//! of rung amplitudes), few-variant corners, and any workload that
//! reprograms cells (GC churn re-answers the same key millions of
//! times). The pathological shape is a Monte-Carlo population whose
//! every cell carries unique continuous variation deltas *and* is
//! pulsed only once: every key is single-use, and past
//! [`MAX_FLOW_MAPS`] the wholesale clear also discards whatever reuse
//! existed. For that shape keep the exact engine
//! ([`super::EngineMode::Exact`] via
//! [`super::BatchSimulator::with_mode`]); the mode cannot be inferred
//! here because eligibility must stay a pure function of the query
//! (anything history- or population-dependent would break the
//! parallel-vs-sequential and grouped-vs-per-cell bit-parity
//! contracts).
//!
//! # Determinism and accuracy
//!
//! A map is a pure function of its cache key: the master is integrated
//! with fixed tight tolerances (`MASTER_RTOL`/`MASTER_ATOL` — much
//! tighter than the engine's defaults so the third-order dense output
//! stays inside the parity budget) and the interpolations are
//! deterministic, so every thread —
//! and the grouped and per-cell array paths — sees bit-identical
//! answers. Flow-map vs exact-engine parity is pinned at ≤1e-6 relative
//! final-charge error by `tests/engine_flowmap.rs`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use gnr_numerics::interp::{hermite_segment, invert_hermite_segment, invert_monotone_hermite};
use gnr_numerics::ode::{CrossingDirection, Dopri45, Event, OdeOptions};
use gnr_units::{Charge, Voltage};

use super::cache::TierStats;
use super::ChargeBalanceEngine;

/// Threshold-shift span (V) the master trajectories cover on each side
/// of neutrality: `|ΔVT| ≤ 12 V` translates to `|Q| ≤ 12·CFC`, several
/// volts beyond any state the array layer produces (ISPP targets sit at
/// +2 V, deep saturation under +8 V, the soft-program floor at −0.5 V).
/// Charges outside the span fall back to the exact engine.
const VT_SPAN_VOLTS: f64 = 12.0;

/// Master-integration tolerances: much tighter than the engine's
/// runtime defaults (1e-8/1e-10) because queries read the *dense
/// output* between accepted steps — third-order Hermite over steps
/// sized for fifth-order accuracy, so the interpolation error is
/// ~`rtol^(4/5)`, not `rtol` — and the parity budget is 1e-6 relative.
/// (At 1e-10 the worst observed corner was 2.5e-6; the two extra
/// decades shrink steps ~2.5× and the Hermite error ~40×.)
const MASTER_RTOL: f64 = 1.0e-12;
const MASTER_ATOL: f64 = 1.0e-14;

/// The master integration stops at the pulse's flow balance: when the
/// smaller of the two oxide flows reaches `(1 − fraction)` of the
/// larger one — the same `Jin = Jout` criterion the engine's saturation
/// search uses, tightened from 1 % to 1 ppm so the horizon sits deep in
/// the flat tail. The criterion is scale-free (a branch started at an
/// extreme charge has astronomically larger initial currents than the
/// mid-range states queries actually visit, so any start-relative rate
/// floor would fire decades too early). Queries whose shifted window
/// crosses the horizon fall back to the exact engine.
const BALANCE_FRACTION: f64 = 1.0e-6;

/// Window-widening factor and probe count of the horizon search (the
/// flows approach each other over many decades of time, exactly as in
/// [`ChargeBalanceEngine::run`]'s saturation search — but a branch
/// started at an extreme charge has a far smaller initial time constant
/// than a mid-range state, so more widenings are allowed).
const WINDOW_GROWTH: f64 = 1.0e3;
const MAX_WINDOWS: usize = 8;

/// One monotone branch of the master trajectory: the integral curve
/// from one extreme of the covered charge range toward the pulse's
/// balance point. `charges` is strictly monotone, `times` strictly
/// increasing; `rates` holds `dQ/dt` at the nodes for Hermite sampling.
#[derive(Debug, Clone)]
struct Branch {
    times: Vec<f64>,
    charges: Vec<f64>,
    rates: Vec<f64>,
}

impl Branch {
    fn lo(&self) -> f64 {
        self.charges[0].min(*self.charges.last().expect("non-empty branch"))
    }

    fn hi(&self) -> f64 {
        self.charges[0].max(*self.charges.last().expect("non-empty branch"))
    }

    fn contains(&self, q: f64) -> bool {
        q >= self.lo() && q <= self.hi()
    }

    /// Flow orientation on the charge axis: `+1.0` for an increasing
    /// branch, `-1.0` for a decreasing one (`charges` is strictly
    /// monotone, so the segment-local and trajectory-global orientations
    /// coincide — the bit-identity hinge of the batched walk).
    fn orientation(&self) -> f64 {
        if *self.charges.last().expect("non-empty branch") > self.charges[0] {
            1.0
        } else {
            -1.0
        }
    }

    /// Inverse lookup `Q → t` on the monotone master.
    fn time_of_charge(&self, q: f64) -> Option<f64> {
        invert_monotone_hermite(&self.times, &self.charges, &self.rates, q)
    }

    /// Cursor-walk form of [`Self::time_of_charge`] for in-range `q`:
    /// instead of a binary search per query, the bracketing segment is
    /// reached by advancing/retreating `cursor` (the upper node index of
    /// the candidate segment, kept in `1..len`). Because the node values
    /// are strictly monotone, the walk lands on the *same* unique
    /// bracket the binary search's insertion point denotes, the
    /// exact-node early returns replicate its `Ok(i)` arm, and the
    /// shared [`invert_hermite_segment`] bisection does the rest — so
    /// the answer is bit-identical to the scalar path. Sorted queries
    /// amortise the walk to O(queries + segments); unsorted ones merely
    /// re-seek.
    fn time_of_charge_at_cursor(&self, cursor: &mut usize, sign: f64, q: f64) -> f64 {
        let last = self.charges.len() - 1;
        let tv = sign * q;
        let mut c = (*cursor).clamp(1, last);
        while c < last && sign * self.charges[c] < tv {
            c += 1;
        }
        while c > 1 && sign * self.charges[c - 1] > tv {
            c -= 1;
        }
        *cursor = c;
        if sign * self.charges[c] == tv {
            return self.times[c];
        }
        if sign * self.charges[c - 1] == tv {
            return self.times[c - 1];
        }
        invert_hermite_segment(
            self.times[c - 1],
            self.times[c],
            self.charges[c - 1],
            self.charges[c],
            self.rates[c - 1],
            self.rates[c],
            q,
        )
    }

    /// Cursor-walk form of [`Self::charge_at`] (same contract as
    /// [`Self::time_of_charge_at_cursor`], on the strictly increasing
    /// time axis).
    fn charge_at_cursor(&self, cursor: &mut usize, t: f64) -> f64 {
        let last = self.times.len() - 1;
        let mut c = (*cursor).clamp(1, last);
        while c < last && self.times[c] < t {
            c += 1;
        }
        while c > 1 && self.times[c - 1] > t {
            c -= 1;
        }
        *cursor = c;
        if self.times[c] == t {
            return self.charges[c];
        }
        if self.times[c - 1] == t {
            return self.charges[c - 1];
        }
        hermite_segment(
            t,
            self.times[c - 1],
            self.times[c],
            self.charges[c - 1],
            self.charges[c],
            self.rates[c - 1],
            self.rates[c],
        )
    }

    /// Dense-output sample `t → Q` (`t` must lie inside the horizon).
    fn charge_at(&self, t: f64) -> f64 {
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).expect("finite times"))
        {
            Ok(i) => return self.charges[i],
            Err(i) => i,
        };
        let hi = idx.min(self.times.len() - 1).max(1);
        let lo = hi - 1;
        hermite_segment(
            t,
            self.times[lo],
            self.times[hi],
            self.charges[lo],
            self.charges[hi],
            self.rates[lo],
            self.rates[hi],
        )
    }
}

/// The flow map of one `(device dynamics, pulse bias)` pair. See the
/// module docs for the construction and query model.
#[derive(Debug, Clone)]
pub struct PulseFlowMap {
    branches: Vec<Branch>,
}

impl PulseFlowMap {
    /// Integrates the master trajectories for `engine`'s device at the
    /// pulse bias `(vgs, vs)`. One branch per flow direction; a branch
    /// whose extreme start point has no measurable tunneling current is
    /// simply absent (its charge range falls back to the exact engine).
    #[must_use]
    pub fn build(engine: &ChargeBalanceEngine, vgs: Voltage, vs: Voltage) -> Self {
        let caps = engine.device().capacitances();
        let ct = caps.total().as_farads();
        let q_span = VT_SPAN_VOLTS * caps.cfc().as_farads();
        let branches = [q_span, -q_span]
            .into_iter()
            .filter_map(|q_start| build_branch(engine, vgs, vs, q_start, ct))
            .collect();
        Self { branches }
    }

    /// Number of tabulated branches (0 when the bias tunnels nowhere in
    /// the covered charge range — every query then falls back).
    #[must_use]
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// The integrated time horizon (s): the latest master-trajectory
    /// time any branch covers. Queries whose shifted window ends past
    /// this fall back to the exact engine. `None` for an empty map.
    #[must_use]
    pub fn horizon_seconds(&self) -> Option<f64> {
        self.branches
            .iter()
            .map(|b| *b.times.last().expect("non-empty branch"))
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// The tabulated charge range `(lo, hi)` in coulombs, or `None` for
    /// an empty map.
    #[must_use]
    pub fn charge_range(&self) -> Option<(f64, f64)> {
        let lo = self
            .branches
            .iter()
            .map(Branch::lo)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .branches
            .iter()
            .map(Branch::hi)
            .fold(f64::NEG_INFINITY, f64::max);
        (lo <= hi).then_some((lo, hi))
    }

    /// Final charge (C) after holding the pulse bias for `dt` seconds
    /// starting from `q0` coulombs — the time-shift answer
    /// `Q(t0 + dt)` with `Q(t0) = q0`.
    ///
    /// Returns `None` (callers fall back to the exact engine) when `q0`
    /// lies outside the tabulated charge range or the shifted window
    /// `t0 + dt` runs past the integrated horizon (a pulse riding into
    /// saturation at the boundary).
    #[must_use]
    pub fn final_charge(&self, q0: f64, dt: f64) -> Option<f64> {
        if !dt.is_finite() || dt < 0.0 {
            return None;
        }
        let branch = self.branches.iter().find(|b| b.contains(q0))?;
        let t0 = branch.time_of_charge(q0)?;
        let te = t0 + dt;
        if te > *branch.times.last().expect("non-empty branch") {
            return None;
        }
        Some(branch.charge_at(te))
    }

    /// The master trajectory's charge nodes across all branches —
    /// exactly where the dense output is most accurate, which is why
    /// [`super::cyclemap::CycleMap`] samples its composed maps on this
    /// grid instead of a uniform one. Unordered; callers sort/dedup.
    pub(crate) fn charge_nodes(&self) -> impl Iterator<Item = f64> + '_ {
        self.branches.iter().flat_map(|b| b.charges.iter().copied())
    }

    /// Column-batched form of [`Self::final_charge`]: answers
    /// `out[i] = final_charge(q0s[i], dt)` for a whole column of initial
    /// charges in one pass. `None` entries are the per-query fallback
    /// flags — the caller escapes those cells to the exact engine,
    /// exactly as it would after a scalar decline.
    ///
    /// Instead of one binary search per query (inverse lookup *and*
    /// dense-output sample), per-branch cursors walk the master
    /// trajectory's segments in a monotone merge: a column sorted by
    /// initial charge visits each segment at most once, so the whole
    /// column costs O(queries + segments) rather than
    /// O(queries · log segments). Every answer is **bit-identical** to
    /// the scalar path (pinned by proptest in `tests/engine_flowmap.rs`):
    /// the walk lands on the same bracketing segment the binary search's
    /// insertion point denotes, and the segment-level bisection is the
    /// shared [`invert_hermite_segment`]. Unsorted or duplicate inputs
    /// stay correct — the cursors re-seek in either direction — they
    /// just forfeit the amortisation.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != q0s.len()`.
    pub fn final_charges_batch(&self, q0s: &[f64], dt: f64, out: &mut [Option<f64>]) {
        assert_eq!(
            q0s.len(),
            out.len(),
            "output column must match the query column"
        );
        if !dt.is_finite() || dt < 0.0 {
            out.fill(None);
            return;
        }
        // (orientation, inverse cursor, sample cursor) per branch.
        let mut cursors: Vec<(f64, usize, usize)> = self
            .branches
            .iter()
            .map(|b| (b.orientation(), 1, 1))
            .collect();
        for (&q0, slot) in q0s.iter().zip(out.iter_mut()) {
            *slot = None;
            let Some(bi) = self.branches.iter().position(|b| b.contains(q0)) else {
                continue;
            };
            let branch = &self.branches[bi];
            let (sign, q_cursor, t_cursor) = &mut cursors[bi];
            // `contains` passed, so the scalar inverse's range check
            // cannot decline: the walk always yields the entry time.
            let t0 = branch.time_of_charge_at_cursor(q_cursor, *sign, q0);
            let te = t0 + dt;
            if te > *branch.times.last().expect("non-empty branch") {
                continue;
            }
            *slot = Some(branch.charge_at_cursor(t_cursor, te));
        }
    }
}

/// Integrates one branch from `q_start` toward the balance point,
/// widening the window geometrically until the charging rate has
/// decayed below the horizon floor. Returns `None` when the start point
/// does not tunnel or the trajectory is degenerate.
fn build_branch(
    engine: &ChargeBalanceEngine,
    vgs: Voltage,
    vs: Voltage,
    q_start: f64,
    ct: f64,
) -> Option<Branch> {
    let rate0 = engine
        .tunneling_state(vgs, vs, Charge::from_coulombs(q_start))
        .charge_rate_amps;
    if rate0.abs() < super::MIN_TUNNELING_RATE_AMPS {
        return None;
    }
    let tau0 = ct / rate0.abs();

    // State variable is Q/CT (volts), matching the engine's own loop so
    // tolerances are scale-free.
    let y0 = q_start / ct;
    let rhs = |_t: f64, y: &[f64], dydt: &mut [f64]| {
        let state = engine.tunneling_state(vgs, vs, Charge::from_coulombs(y[0] * ct));
        dydt[0] = state.charge_rate_amps / ct;
    };
    // Balance horizon: fires when the two flow magnitudes agree to
    // `BALANCE_FRACTION`, whichever direction the branch flows.
    let balance = 1.0 - BALANCE_FRACTION;
    let horizon_condition = move |_t: f64, y: &[f64]| {
        let state = engine.tunneling_state(vgs, vs, Charge::from_coulombs(y[0] * ct));
        let jt = state.tunnel_flow.abs().as_amps_per_square_meter();
        let jc = state.control_flow.abs().as_amps_per_square_meter();
        balance * jt.max(jc) - jt.min(jc)
    };
    let solver = Dopri45::new(OdeOptions::with_tolerances(MASTER_RTOL, MASTER_ATOL));
    let mut t_end = 1.0e4 * tau0;
    let mut best = None;
    for _ in 0..MAX_WINDOWS {
        let event = Event {
            label: "horizon",
            condition: &horizon_condition,
            direction: CrossingDirection::Falling,
            terminal: true,
        };
        match solver.integrate_with_events(rhs, 0.0, &[y0], t_end, &[event]) {
            Ok((sol, hits)) => {
                let saturated = !hits.is_empty();
                best = Some(sol);
                if saturated {
                    break;
                }
                t_end *= WINDOW_GROWTH;
            }
            // Keep the longest successful window; a failed widening just
            // shortens the horizon (queries past it fall back).
            Err(_) => break,
        }
    }
    let sol = best?;

    // Extract the strictly monotone prefix in charge units. The flow is
    // monotone by construction; ulp-level wiggle at the flat tail is
    // trimmed so the inverse lookup stays well-defined.
    let direction = rate0.signum();
    let times = sol.times();
    let states = sol.state_column(0);
    let derivs = sol.deriv_column(0);
    let mut branch = Branch {
        times: Vec::with_capacity(times.len()),
        charges: Vec::with_capacity(times.len()),
        rates: Vec::with_capacity(times.len()),
    };
    for i in 0..times.len() {
        let t = times[i];
        let q = states[i] * ct;
        let rate = derivs[i] * ct;
        if let (Some(&tp), Some(&qp)) = (branch.times.last(), branch.charges.last()) {
            if t <= tp || (q - qp) * direction <= 0.0 {
                break;
            }
        }
        branch.times.push(t);
        branch.charges.push(q);
        branch.rates.push(rate);
    }
    (branch.times.len() >= 2).then_some(branch)
}

/// Cache key: the device's dynamics digest plus the exact pulse-bias
/// bits. Everything else a query needs (`Q0`, `Δt`) is an argument.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct FlowKey {
    device: u64,
    vgs_bits: u64,
    vs_bits: u64,
}

/// Upper bound on retained flow maps (same clear-wholesale policy as the
/// `J(E)` table cache: outstanding `Arc`s stay valid, maps rebuild on
/// demand). Sized for the designed working set — a handful of variants
/// × the rung amplitudes of the recipes; per-cell-unique Monte-Carlo
/// populations blow past it and should run [`super::EngineMode::Exact`]
/// (see the module docs).
pub const MAX_FLOW_MAPS: usize = 256;

type FlowSlot = Arc<OnceLock<Arc<PulseFlowMap>>>;

/// Shard count of the process-wide map cache. Keys scatter across
/// shards by a cheap bit mix, so the hot path is one shard *read* lock
/// (shared, contention-free across threads) plus a lock-free per-key
/// `OnceLock` — no process-wide mutex anywhere on a hit. Each shard
/// holds at most `MAX_FLOW_MAPS / SHARD_COUNT` entries and clears
/// wholesale past that, preserving the old cache-wide policy per shard.
const SHARD_COUNT: usize = 16;

type Shard = RwLock<HashMap<FlowKey, FlowSlot>>;

static MAPS: OnceLock<Vec<Shard>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn shards() -> &'static [Shard] {
    MAPS.get_or_init(|| {
        (0..SHARD_COUNT)
            .map(|_| RwLock::new(HashMap::new()))
            .collect()
    })
}

fn shard_of(key: &FlowKey) -> usize {
    // The dynamics digest is already a hash; fold in the bias bits.
    let mixed = key.device ^ key.vgs_bits.rotate_left(17) ^ key.vs_bits.rotate_left(31);
    (mixed as usize) % SHARD_COUNT
}

/// Returns the shared flow map for `engine`'s device at the pulse bias
/// `(vgs, vs)`, integrating the master trajectories on first use. A hit
/// costs one shard read lock and one slot clone; the per-key `OnceLock`
/// keeps concurrent first queries from integrating twice while never
/// holding any map lock across a build. One probe serves a whole query
/// column on the batched path, so the hit/miss counters run at
/// per-operation scale there (one relaxed `fetch_add` per column).
#[must_use]
pub fn cached(engine: &ChargeBalanceEngine, vgs: Voltage, vs: Voltage) -> Arc<PulseFlowMap> {
    let key = FlowKey {
        device: engine.device_key(),
        vgs_bits: vgs.as_volts().to_bits(),
        vs_bits: vs.as_volts().to_bits(),
    };
    let shard = &shards()[shard_of(&key)];
    let hit = shard.read().get(&key).cloned();
    let slot: FlowSlot = match hit {
        Some(slot) => slot,
        None => {
            let mut map = shard.write();
            if map.len() >= MAX_FLOW_MAPS / SHARD_COUNT && !map.contains_key(&key) {
                map.clear();
            }
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        }
    };
    let mut built_now = false;
    let map = slot.get_or_init(|| {
        built_now = true;
        Arc::new(PulseFlowMap::build(engine, vgs, vs))
    });
    if built_now {
        MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    Arc::clone(map)
}

/// Hit/miss/entry counters of the flow-map cache (observability; the
/// benches record these in their JSON so cache efficiency shows up in
/// the perf trajectory).
#[must_use]
pub fn tier_stats() -> TierStats {
    TierStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: MAPS
            .get()
            .map_or(0, |shards| shards.iter().map(|s| s.read().len()).sum()),
    }
}

/// Zeroes the hit/miss counters (the cached maps themselves stay warm).
/// Benches call this through [`super::cache::reset`] so recorded stats
/// reflect only the measured phase.
pub(crate) fn reset_counters() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Evicts every cached flow map (counters untouched). Outstanding
/// `Arc`s stay valid; subsequent queries rebuild on demand. Exposed via
/// [`super::cache::clear_entries`] — `reset` deliberately does *not* do
/// this, so a resumed campaign keeps warm masters while its recorded
/// stats cover only the post-restore segment.
pub(crate) fn clear_entries() {
    if let Some(shards) = MAPS.get() {
        for shard in shards {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FloatingGateTransistor;
    use crate::presets;
    use crate::transient::ProgramPulseSpec;
    use gnr_units::Time;

    fn engine() -> ChargeBalanceEngine {
        ChargeBalanceEngine::new(&FloatingGateTransistor::mlgnr_cnt_paper())
    }

    #[test]
    fn program_map_matches_exact_engine() {
        let engine = engine();
        let vgs = presets::program_vgs();
        let map = PulseFlowMap::build(&engine, vgs, Voltage::ZERO);
        assert!(map.branch_count() >= 1);
        for q0_e in [0.0, -40.0, -120.0, 30.0] {
            let q0 = Charge::from_electrons(q0_e);
            let dt = 1.0e-5;
            let exact = engine
                .run(
                    &ProgramPulseSpec::program(vgs)
                        .with_initial_charge(q0)
                        .with_duration(Time::from_seconds(dt)),
                )
                .unwrap()
                .final_charge()
                .as_coulombs();
            let fast = map
                .final_charge(q0.as_coulombs(), dt)
                .expect("inside tabulated range");
            let rel = ((fast - exact) / exact.abs().max(1e-30)).abs();
            assert!(rel < 1.0e-6, "q0 {q0_e} e: rel err {rel:e}");
        }
    }

    #[test]
    fn out_of_range_charge_returns_none() {
        let engine = engine();
        let map = PulseFlowMap::build(&engine, presets::program_vgs(), Voltage::ZERO);
        let (lo, hi) = map.charge_range().expect("non-empty map");
        assert_eq!(map.final_charge(hi * 2.0 + 1.0, 1.0e-6), None);
        assert_eq!(map.final_charge(lo * 2.0 - 1.0, 1.0e-6), None);
        assert_eq!(map.final_charge(0.0, f64::NAN), None);
        assert_eq!(map.final_charge(0.0, -1.0), None);
    }

    #[test]
    fn horizon_overrun_returns_none() {
        let engine = engine();
        let map = PulseFlowMap::build(&engine, presets::program_vgs(), Voltage::ZERO);
        // A pulse far longer than the integrated horizon must fall back.
        assert_eq!(map.final_charge(0.0, 1.0e12), None);
    }

    #[test]
    fn sub_threshold_bias_falls_back_near_neutrality() {
        // At 0.2 V the *extremes* of the covered span still tunnel (the
        // stored charge alone drives the oxide fields), but the region
        // realistic cells occupy is below the tunneling floor: the
        // branches asymptote before reaching it, and a neutral-charge
        // query must fall back (the engine reports `NoTunneling` there
        // before ever consulting the map).
        let engine = engine();
        let map = PulseFlowMap::build(&engine, Voltage::from_volts(0.2), Voltage::ZERO);
        assert_eq!(map.final_charge(0.0, 1.0e-5), None);
    }

    #[test]
    fn batch_answers_match_scalar_queries_bitwise() {
        let engine = engine();
        let map = PulseFlowMap::build(&engine, presets::program_vgs(), Voltage::ZERO);
        let (lo, hi) = map.charge_range().expect("non-empty map");
        // Unsorted, duplicated, boundary and out-of-range charges in one
        // column; every answer must carry the scalar path's exact bits.
        let q0s = [
            0.0,
            hi,
            lo,
            0.4 * lo + 0.6 * hi,
            0.0,
            hi + (hi - lo), // out of span → fallback flag
            0.9 * lo,
            f64::NAN, // matches no branch → fallback flag
            0.1 * hi,
        ];
        for dt in [1.0e-6, 1.0e-4, 1.0e12, 0.0] {
            let mut out = vec![Some(f64::NAN); q0s.len()];
            map.final_charges_batch(&q0s, dt, &mut out);
            for (&q0, &got) in q0s.iter().zip(&out) {
                let want = map.final_charge(q0, dt);
                assert_eq!(
                    got.map(f64::to_bits),
                    want.map(f64::to_bits),
                    "q0 {q0:e}, dt {dt:e}"
                );
            }
        }
        // Rejected dt clears the whole column.
        let mut out = vec![Some(0.0); q0s.len()];
        map.final_charges_batch(&q0s, f64::NAN, &mut out);
        assert!(out.iter().all(Option::is_none));
        map.final_charges_batch(&q0s, -1.0, &mut out);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn cache_shares_maps_and_counts_hits() {
        let engine = engine();
        let vgs = Voltage::from_volts(14.25);
        let before = tier_stats();
        let a = cached(&engine, vgs, Voltage::ZERO);
        let b = cached(&engine, vgs, Voltage::ZERO);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one map");
        let after = tier_stats();
        assert!(after.hits > before.hits);
        assert!(after.entries >= 1);
    }

    #[test]
    fn erase_bias_covers_programmed_charges() {
        let engine = engine();
        let vgs = presets::erase_vgs();
        let map = PulseFlowMap::build(&engine, vgs, Voltage::ZERO);
        // A programmed cell (negative charge) erases along the map.
        let q0 = Charge::from_electrons(-120.0).as_coulombs();
        let q1 = map.final_charge(q0, 1.0e-4).expect("covered");
        assert!(q1 > q0, "erase must remove electrons: {q0:e} -> {q1:e}");
    }
}
