//! Rayon fan-out of independent charge-balance runs.
//!
//! A NAND page program, a block erase, an ISPP ladder per cell, a
//! `t_sat(VGS)` sweep — all are embarrassingly parallel collections of
//! independent transients. [`BatchSimulator`] fans them out across
//! cores while sharing the process-wide `J(E)` table cache, and its
//! output order always matches input order, so a batched run is
//! bit-identical to the equivalent sequential loop (asserted by
//! `tests/batch_parity.rs`).

use rayon::prelude::*;

use crate::backend::BackendKind;
use crate::device::FloatingGateTransistor;
use crate::transient::{ProgramPulseSpec, TransientResult};
use crate::Result;

use super::{ChargeBalanceEngine, EngineMode};

/// Fan-out executor for independent simulation work.
///
/// Construction is cheap; the expensive state (the `J(E)` tables) lives
/// in the process-wide cache and is shared by every batch and thread.
#[derive(Debug, Clone)]
pub struct BatchSimulator {
    parallel: bool,
    saturation_fraction: Option<f64>,
    mode: EngineMode,
}

impl Default for BatchSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchSimulator {
    /// A parallel batch simulator with the engine's default tolerances.
    #[must_use]
    pub fn new() -> Self {
        Self {
            parallel: true,
            saturation_fraction: None,
            mode: EngineMode::default(),
        }
    }

    /// Forces sequential execution (parity testing, profiling baselines).
    #[must_use]
    pub fn sequential() -> Self {
        Self {
            parallel: false,
            saturation_fraction: None,
            mode: EngineMode::default(),
        }
    }

    /// Selects the pulse-query mode ([`EngineMode`]) of every engine
    /// this batch builds — [`EngineMode::Exact`] is the whole-array
    /// escape hatch for flow-map cross-checks.
    #[must_use]
    pub fn with_mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// The pulse-query mode this batch's engines run in.
    #[must_use]
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Whether this batch fans out across threads.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Overrides the saturation detection fraction of every engine this
    /// batch builds.
    #[must_use]
    pub fn with_saturation_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "saturation fraction must be in (0, 1)"
        );
        self.saturation_fraction = Some(fraction);
        self
    }

    /// Builds the engine this batch would use for `device`, with every
    /// configured override applied. Consumers that fan out stateful work
    /// (the ISPP ladders) build one engine per unit of work through this
    /// so the batch configuration reaches every transient.
    #[must_use]
    pub fn engine_for(&self, device: &FloatingGateTransistor) -> ChargeBalanceEngine {
        self.engine_for_kind(BackendKind::GnrFloatingGate, device)
    }

    /// [`Self::engine_for`] under an explicit floating-gate backend —
    /// the array layer routes its per-variant engine construction here
    /// so a CNT population never shares a cache entry with a GNR one.
    #[must_use]
    pub fn engine_for_kind(
        &self,
        kind: BackendKind,
        device: &FloatingGateTransistor,
    ) -> ChargeBalanceEngine {
        let mut engine = ChargeBalanceEngine::new_for(kind, device).with_mode(self.mode);
        if let Some(fraction) = self.saturation_fraction {
            engine = engine.with_saturation_fraction(fraction);
        }
        engine
    }

    /// Runs every spec against one shared device, in input order.
    ///
    /// Each element of the output corresponds to the spec at the same
    /// index; failures are per-spec, not batch-wide.
    #[must_use]
    pub fn run(
        &self,
        device: &FloatingGateTransistor,
        specs: &[ProgramPulseSpec],
    ) -> Vec<Result<TransientResult>> {
        let engine = self.engine_for(device);
        self.scatter(specs.to_vec(), |spec| engine.run(&spec))
    }

    /// Generic order-preserving fan-out of `op` over independent work
    /// items — the primitive the array layer (ISPP, page program, block
    /// erase) routes through.
    pub fn scatter<T, R, F>(&self, items: Vec<T>, op: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if self.parallel {
            items.into_par_iter().map(op).collect()
        } else {
            items.into_iter().map(op).collect()
        }
    }

    /// Order-preserving fan-out over an index range `0..n` — the
    /// struct-of-arrays primitive: `op` reads whatever shared columns it
    /// closes over, so nothing per-cell (no device clones, no cell
    /// structs) is materialised to distribute the work.
    pub fn map_indices<R, F>(&self, n: usize, op: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.parallel {
            (0..n).into_par_iter().map(op).collect()
        } else {
            (0..n).map(op).collect()
        }
    }

    /// Order-preserving fan-out of `op` over contiguous index chunks of
    /// `0..n`: `op` receives each chunk's `(start, len)` and the results
    /// come back in chunk order regardless of scheduling. The batched
    /// *sampling* primitive: per-chunk partial results (error counts,
    /// RNG draws keyed on absolute index) reduce deterministically, so a
    /// parallel scan is bit-identical to the sequential one.
    ///
    /// `n == 0` is an explicit no-op: `op` is never called and the
    /// result is empty — grouped-submission paths (merged multi-plane
    /// rounds whose every job failed validation) rely on this.
    pub fn map_chunks<R, F>(&self, n: usize, chunk: usize, op: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let spans: Vec<(usize, usize)> = (0..n)
            .step_by(chunk)
            .map(|start| (start, chunk.min(n - start)))
            .collect();
        self.scatter(spans, |(start, len)| op(start, len))
    }

    /// Order-preserving fan-out over independent work *queues*: items of
    /// one queue run sequentially in queue order, while distinct queues
    /// run concurrently — the plane-parallel execution primitive of the
    /// array layer's P/E scheduler (each NAND plane is a queue whose
    /// commands must stay ordered, but planes are mutually independent).
    /// `op` receives `(queue_index, item)`; `output[q][k]` corresponds to
    /// `queues[q][k]` regardless of scheduling.
    ///
    /// Empty input is an explicit no-op: no queues (or only empty
    /// queues) call `op` zero times and return the same shape back —
    /// the contract an idle scheduler round depends on.
    pub fn scatter_queues<T, R, F>(&self, queues: Vec<Vec<T>>, op: F) -> Vec<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.scatter(
            queues.into_iter().enumerate().collect(),
            |(q, items): (usize, Vec<T>)| items.into_iter().map(|item| op(q, item)).collect(),
        )
    }

    /// In-place fan-out over disjoint contiguous chunks of a state
    /// column. `op` receives the chunk's starting index in the full
    /// column and the mutable chunk, so per-element work can still be
    /// addressed globally (e.g. to read sibling read-only columns).
    ///
    /// # Panics
    ///
    /// Panics when `chunk` is zero.
    pub fn for_each_chunk_mut<T, F>(&self, column: &mut [T], chunk: usize, op: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        if self.parallel {
            let pieces: Vec<(usize, &mut [T])> = column
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, c)| (i * chunk, c))
                .collect();
            pieces.into_par_iter().for_each(|(start, c)| op(start, c));
        } else {
            for (i, c) in column.chunks_mut(chunk).enumerate() {
                op(i * chunk, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use gnr_units::Voltage;

    #[test]
    fn batched_specs_match_sequential_exactly() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let specs: Vec<ProgramPulseSpec> = (0..6)
            .map(|i| ProgramPulseSpec::program(Voltage::from_volts(13.0 + 0.5 * f64::from(i))))
            .collect();
        let parallel = BatchSimulator::new().run(&device, &specs);
        let sequential = BatchSimulator::sequential().run(&device, &specs);
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(
                p.samples(),
                s.samples(),
                "batched trace must be bit-identical"
            );
            assert_eq!(p.saturation_time(), s.saturation_time());
        }
    }

    #[test]
    fn per_spec_failures_stay_local() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let specs = vec![
            ProgramPulseSpec::program(Voltage::from_volts(1.0)), // no tunneling
            ProgramPulseSpec::program(presets::program_vgs()),
        ];
        let results = BatchSimulator::new().run(&device, &specs);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
    }

    #[test]
    fn scatter_preserves_order() {
        let batch = BatchSimulator::new();
        let doubled = batch.scatter((0..100).collect::<Vec<i64>>(), |x| x * 2);
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, 2 * i as i64);
        }
    }

    #[test]
    fn queue_fan_out_preserves_per_queue_order() {
        for batch in [BatchSimulator::new(), BatchSimulator::sequential()] {
            let queues: Vec<Vec<u64>> = (0..7).map(|q| (0..=q).collect()).collect();
            let out = batch.scatter_queues(queues.clone(), |q, item| (q as u64) * 100 + item);
            assert_eq!(out.len(), 7);
            for (q, results) in out.iter().enumerate() {
                let expected: Vec<u64> = (0..=q as u64).map(|k| q as u64 * 100 + k).collect();
                assert_eq!(*results, expected, "queue {q}");
            }
        }
        assert!(BatchSimulator::new()
            .scatter_queues(Vec::<Vec<u8>>::new(), |_, x| x)
            .is_empty());
    }

    #[test]
    fn map_indices_matches_sequential() {
        let shared: Vec<f64> = (0..257).map(f64::from).collect();
        let parallel = BatchSimulator::new().map_indices(shared.len(), |i| shared[i] * 3.0);
        let sequential =
            BatchSimulator::sequential().map_indices(shared.len(), |i| shared[i] * 3.0);
        assert_eq!(parallel, sequential);
        assert_eq!(parallel[200], 600.0);
    }

    #[test]
    fn chunked_mutation_covers_every_element_once() {
        for batch in [BatchSimulator::new(), BatchSimulator::sequential()] {
            let mut column = vec![0u64; 1000];
            batch.for_each_chunk_mut(&mut column, 64, |start, chunk| {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot += (start + offset) as u64;
                }
            });
            for (i, v) in column.iter().enumerate() {
                assert_eq!(*v, i as u64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        BatchSimulator::new().for_each_chunk_mut(&mut [0u8; 4], 0, |_, _| {});
    }

    #[test]
    fn map_chunks_empty_input_is_a_noop() {
        for batch in [BatchSimulator::new(), BatchSimulator::sequential()] {
            let out = batch.map_chunks(0, 64, |_, _| panic!("op must not run on empty input"));
            assert!(out.is_empty());
        }
    }

    #[test]
    fn scatter_queues_empty_input_is_a_noop() {
        for batch in [BatchSimulator::new(), BatchSimulator::sequential()] {
            // No queues at all.
            let out = batch.scatter_queues(Vec::<Vec<u8>>::new(), |_, _: u8| -> u8 {
                panic!("op must not run on empty input")
            });
            assert!(out.is_empty());
            // Queues present but all empty: shape is preserved, op never
            // runs.
            let out = batch.scatter_queues(vec![Vec::<u8>::new(); 3], |_, _: u8| -> u8 {
                panic!("op must not run on empty queues")
            });
            assert_eq!(out.len(), 3);
            assert!(out.iter().all(Vec::is_empty));
        }
    }

    #[test]
    fn batch_mode_reaches_built_engines() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let batch = BatchSimulator::new().with_mode(crate::engine::EngineMode::Exact);
        assert_eq!(batch.mode(), crate::engine::EngineMode::Exact);
        assert_eq!(
            batch.engine_for(&device).mode(),
            crate::engine::EngineMode::Exact
        );
        assert_eq!(
            BatchSimulator::new().engine_for(&device).mode(),
            crate::engine::EngineMode::FlowMap
        );
    }

    #[test]
    fn map_chunks_covers_the_range_in_order() {
        for batch in [BatchSimulator::new(), BatchSimulator::sequential()] {
            let sums = batch.map_chunks(1000, 64, |start, len| {
                (start..start + len).map(|i| i as u64).sum::<u64>()
            });
            assert_eq!(sums.len(), 16); // ceil(1000 / 64)
            assert_eq!(sums.iter().sum::<u64>(), 999 * 1000 / 2);
            // First chunk is exactly 0..64 — order is positional.
            assert_eq!(sums[0], (0..64).sum::<u64>());
        }
        assert!(BatchSimulator::new().map_chunks(0, 8, |_, _| 1).is_empty());
    }
}
