//! Program/erase pulse waveforms.
//!
//! The transient simulator consumes a single [`SquarePulse`]; the
//! flash-array layer chains pulses into ISPP ladders
//! ([`IsppLadder`]) with verify steps between them.

use gnr_units::{Time, Voltage};

/// A single rectangular gate pulse.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SquarePulse {
    /// Gate amplitude (negative for erase).
    pub amplitude: Voltage,
    /// Pulse width.
    pub width: Time,
}

impl SquarePulse {
    /// Creates a pulse.
    ///
    /// # Panics
    ///
    /// Panics when the width is not positive.
    #[must_use]
    pub fn new(amplitude: Voltage, width: Time) -> Self {
        assert!(width.as_seconds() > 0.0, "pulse width must be positive");
        Self { amplitude, width }
    }
}

/// An incremental-step-pulse-programming (ISPP) ladder: each pulse is
/// `step` higher than the last, capped at `max_amplitude`.
///
/// ISPP is the standard NAND programming algorithm; each rung is applied
/// and followed by a verify read, stopping at the first pass.
///
/// # Example
///
/// ```
/// use gnr_flash::pulse::IsppLadder;
/// use gnr_units::{Time, Voltage};
///
/// let ladder = IsppLadder::new(
///     Voltage::from_volts(13.0),
///     Voltage::from_volts(0.5),
///     Voltage::from_volts(15.0),
///     Time::from_microseconds(10.0),
/// );
/// let amps: Vec<f64> = ladder.map(|p| p.amplitude.as_volts()).collect();
/// assert_eq!(amps, vec![13.0, 13.5, 14.0, 14.5, 15.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IsppLadder {
    next: f64,
    step: f64,
    max: f64,
    width: Time,
    /// +1 for program ladders, −1 for erase ladders.
    direction: f64,
}

impl IsppLadder {
    /// Creates a program ladder from `start` to `max_amplitude` in `step`
    /// increments.
    ///
    /// # Panics
    ///
    /// Panics when `step` is not positive, the width is not positive, or
    /// `max_amplitude < start` for a positive ladder (and symmetrically
    /// for negative/erase ladders).
    #[must_use]
    pub fn new(start: Voltage, step: Voltage, max_amplitude: Voltage, width: Time) -> Self {
        assert!(step.as_volts() > 0.0, "step must be positive");
        assert!(width.as_seconds() > 0.0, "width must be positive");
        let direction = if start.as_volts() < 0.0 || max_amplitude.as_volts() < 0.0 {
            assert!(
                max_amplitude.as_volts() <= start.as_volts(),
                "erase ladder requires max_amplitude <= start (more negative)"
            );
            -1.0
        } else {
            assert!(
                max_amplitude.as_volts() >= start.as_volts(),
                "program ladder requires max_amplitude >= start"
            );
            1.0
        };
        Self {
            next: start.as_volts(),
            step: step.as_volts(),
            max: max_amplitude.as_volts(),
            width,
            direction,
        }
    }
}

impl Iterator for IsppLadder {
    type Item = SquarePulse;

    fn next(&mut self) -> Option<SquarePulse> {
        let remaining = (self.max - self.next) * self.direction;
        if remaining < -1e-12 {
            return None;
        }
        let pulse = SquarePulse::new(Voltage::from_volts(self.next), self.width);
        self.next += self.step * self.direction;
        Some(pulse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_ladder_steps_up_inclusively() {
        let l = IsppLadder::new(
            Voltage::from_volts(12.0),
            Voltage::from_volts(1.0),
            Voltage::from_volts(15.0),
            Time::from_microseconds(5.0),
        );
        let v: Vec<f64> = l.map(|p| p.amplitude.as_volts()).collect();
        assert_eq!(v, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn erase_ladder_steps_down() {
        let l = IsppLadder::new(
            Voltage::from_volts(-12.0),
            Voltage::from_volts(1.0),
            Voltage::from_volts(-14.0),
            Time::from_microseconds(5.0),
        );
        let v: Vec<f64> = l.map(|p| p.amplitude.as_volts()).collect();
        assert_eq!(v, vec![-12.0, -13.0, -14.0]);
    }

    #[test]
    fn single_rung_when_start_equals_max() {
        let l = IsppLadder::new(
            Voltage::from_volts(15.0),
            Voltage::from_volts(0.5),
            Voltage::from_volts(15.0),
            Time::from_microseconds(1.0),
        );
        assert_eq!(l.count(), 1);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = IsppLadder::new(
            Voltage::from_volts(12.0),
            Voltage::ZERO,
            Voltage::from_volts(15.0),
            Time::from_microseconds(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_pulse_panics() {
        let _ = SquarePulse::new(Voltage::from_volts(15.0), Time::from_seconds(0.0));
    }
}
