//! Device backends: one array stack, many cell physics.
//!
//! The engine and the array layer evolve a **1-D cell state** — a single
//! `f64` per cell whose meaning depends on the device technology:
//!
//! * floating-gate backends ([`BackendKind::GnrFloatingGate`],
//!   [`BackendKind::CntFloatingGate`]) store the floating-gate charge in
//!   coulombs and evolve it through the FN charge-balance ODE (with the
//!   flow-map / cycle-map memoization tiers);
//! * [`BackendKind::PcmResistive`] stores the amorphous phase fraction
//!   `a ∈ [0, 1]` of a phase-change element and evolves it through
//!   closed-form set/reset kinetics — no FN tunneling, no flow maps, the
//!   exact-path bookkeeping (`engine.flowmap.escapes`, the
//!   `flowmap_escape` journal event) records every pulse.
//!
//! [`DeviceBackend`] is the trait contract; [`CellBackend`] is the
//! concrete closed set the array layer ships. Every memoization key in
//! [`crate::engine`] folds [`BackendKind::fold_key`] over the raw
//! dynamics key so two backends can never alias a cache entry even if
//! their parameter bits collide.

use gnr_numerics::hash::{fnv1a_fold_f64, FNV1A_OFFSET, FNV1A_PRIME};

use crate::device::FloatingGateTransistor;
use crate::engine::ChargeBalanceEngine;
use crate::pulse::SquarePulse;
use crate::{DeviceError, Result};

/// The closed set of device technologies the stack ships.
///
/// `Copy` + unit-only so it can ride inside every snapshot, cache key
/// and telemetry record without allocation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum BackendKind {
    /// The paper's device: MLGNR channel, CNT floating gate, FN
    /// program/erase through the tunnel oxide. The default — every
    /// pre-backend API routes here bit-identically.
    #[default]
    GnrFloatingGate,
    /// CNT-channel floating gate (JETC 2015 sibling device): same FN
    /// charge-balance machinery with CNT band parameters, so the flow-map
    /// and cycle-map tiers apply unchanged.
    CntFloatingGate,
    /// Phase-change element with GNR electrodes (arXiv:1508.05109
    /// sibling): crystalline-fraction state, threshold-gated set/reset
    /// kinetics, no flow maps — exercises the exact-engine fallback.
    PcmResistive,
}

impl BackendKind {
    /// Stable lowercase name used in telemetry, bench JSON and CI
    /// grep-asserts.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::GnrFloatingGate => "gnr-floating-gate",
            Self::CntFloatingGate => "cnt-floating-gate",
            Self::PcmResistive => "pcm-resistive",
        }
    }

    /// Inverse of [`BackendKind::name`]; also accepts the short aliases
    /// `gnr` / `cnt` / `pcm` used by `GNR_BENCH_BACKEND`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "gnr-floating-gate" | "gnr" => Some(Self::GnrFloatingGate),
            "cnt-floating-gate" | "cnt" => Some(Self::CntFloatingGate),
            "pcm-resistive" | "pcm" => Some(Self::PcmResistive),
            _ => None,
        }
    }

    /// Small stable discriminant folded into every cache key.
    #[must_use]
    pub const fn discriminant(self) -> u64 {
        match self {
            Self::GnrFloatingGate => 0,
            Self::CntFloatingGate => 1,
            Self::PcmResistive => 2,
        }
    }

    /// Whether the flow-map / cycle-map memoization tiers apply: they
    /// tabulate FN pulse responses, so only floating-gate backends
    /// qualify — PCM pulses always take the exact path.
    #[must_use]
    pub const fn uses_flow_maps(self) -> bool {
        !matches!(self, Self::PcmResistive)
    }

    /// Folds this backend's discriminant into a raw dynamics key
    /// (FNV-1a step), yielding the backend-qualified key every
    /// memoization tier uses. Distinct backends over identical device
    /// bits therefore never alias.
    #[must_use]
    pub const fn fold_key(self, raw: u64) -> u64 {
        let h = (FNV1A_OFFSET ^ self.discriminant()).wrapping_mul(FNV1A_PRIME);
        (h ^ raw).wrapping_mul(FNV1A_PRIME)
    }
}

/// The 1-D cell-state contract every backend satisfies.
///
/// `state` is the single `f64` the array layer stores per cell: FG
/// charge in coulombs for floating-gate backends, amorphous fraction
/// for PCM. The trait is the abstraction seam; the hot array kernels
/// dispatch on [`CellBackend`] concretely so the FG paths stay
/// bit-identical to the pre-backend code.
pub trait DeviceBackend {
    /// Which technology this is.
    fn kind(&self) -> BackendKind;

    /// Stable display name (defaults to the kind's name).
    fn label(&self) -> &'static str {
        self.kind().name()
    }

    /// Backend-qualified dynamics key: the raw parameter digest with
    /// [`BackendKind::fold_key`] applied.
    fn dynamics_key(&self) -> u64;

    /// Threshold-voltage shift read out of the state (volts).
    fn vt_shift_volts(&self, state: f64) -> f64;

    /// Final state after one rectangular pulse.
    ///
    /// # Errors
    ///
    /// [`DeviceError::NoTunneling`] when the pulse is below the
    /// backend's activation threshold — callers treat it as a no-op,
    /// the same contract the FN engine uses for sub-threshold biases.
    fn pulse_final_state(&self, pulse: SquarePulse, state: f64) -> Result<f64>;

    /// Wear accumulated by a state transition, in the injected-charge
    /// units (coulombs) the endurance models consume.
    fn wear_increment(&self, from: f64, to: f64) -> f64;

    /// Charge-to-threshold conversion (farads) the reliability layer
    /// divides trap charge by; for PCM an *effective* capacitance
    /// chosen so the endurance models' trap offsets stay in volts.
    fn effective_cfc_farads(&self) -> f64;
}

/// Phase-change cell: amorphous-fraction state with threshold-gated
/// set/reset kinetics.
///
/// The state variable is the amorphous fraction `a ∈ [0, 1]`; the
/// threshold window maps linearly: `vt_shift = vt_window · a`. A pulse
/// at amplitude `V` with `|V|` below the switching threshold does
/// nothing (reads and pass-biases disturb nothing); above it, the
/// fraction relaxes exponentially toward the target phase with a rate
/// that grows exponentially in the overdrive:
///
/// ```text
/// r(V)      = r_ref · exp(k · (|V| − V_ref))
/// a' (set)  = 1 − (1 − a) · exp(−r·t)     (V > 0, amorphize)
/// a' (reset)=      a      · exp(−r·t)     (V < 0, crystallize)
/// ```
///
/// The constants are chosen so the stock ISPP ladders converge: the
/// 13→16 V program ladder reaches the +2 V verify level in two rungs
/// and the −13 V erase rung lands under the +0.3 V erase target in one.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PcmDevice {
    /// Full threshold window at `a = 1` (volts).
    vt_window_volts: f64,
    /// Minimum `|V|` that moves the phase state (volts).
    switching_threshold_volts: f64,
    /// Amorphization rate at the reference amplitude (1/s).
    set_rate_hz: f64,
    /// Crystallization rate at the reference amplitude (1/s).
    reset_rate_hz: f64,
    /// Exponential overdrive sensitivity `k` (1/V).
    rate_exponent_per_volt: f64,
    /// Reference amplitude the rates are quoted at (volts).
    reference_volts: f64,
    /// Effective charge-to-threshold capacitance for the reliability
    /// models (farads).
    effective_cfc_farads: f64,
    /// Injected-charge equivalent per unit |Δa| (coulombs) — feeds the
    /// same wear column the FG backends fill with |ΔQ|.
    wear_scale_coulombs: f64,
}

impl PcmDevice {
    /// Nominal PCM-like element parameterized to the stock P/E recipes.
    #[must_use]
    pub const fn paper() -> Self {
        Self {
            vt_window_volts: 6.0,
            switching_threshold_volts: 12.0,
            set_rate_hz: 1.8e4,
            reset_rate_hz: 2.5e5,
            rate_exponent_per_volt: 1.1,
            reference_volts: 13.0,
            effective_cfc_farads: 1.0e-17,
            wear_scale_coulombs: 1.0e-16,
        }
    }

    /// Full threshold window at `a = 1` (volts).
    #[must_use]
    pub const fn vt_window_volts(&self) -> f64 {
        self.vt_window_volts
    }

    /// Minimum `|V|` that moves the phase state (volts).
    #[must_use]
    pub const fn switching_threshold_volts(&self) -> f64 {
        self.switching_threshold_volts
    }

    /// Effective charge-to-threshold capacitance (farads).
    #[must_use]
    pub const fn effective_cfc_farads(&self) -> f64 {
        self.effective_cfc_farads
    }

    /// Injected-charge equivalent per unit |Δa| (coulombs).
    #[must_use]
    pub const fn wear_scale_coulombs(&self) -> f64 {
        self.wear_scale_coulombs
    }

    /// Backend-qualified dynamics key over the parameter bits.
    #[must_use]
    pub fn dynamics_key(&self) -> u64 {
        let mut h = FNV1A_OFFSET;
        for v in [
            self.vt_window_volts,
            self.switching_threshold_volts,
            self.set_rate_hz,
            self.reset_rate_hz,
            self.rate_exponent_per_volt,
            self.reference_volts,
            self.effective_cfc_farads,
            self.wear_scale_coulombs,
        ] {
            h = fnv1a_fold_f64(h, v);
        }
        BackendKind::PcmResistive.fold_key(h)
    }

    /// Threshold shift read out of the fraction (volts).
    #[must_use]
    pub fn vt_shift_volts(&self, fraction: f64) -> f64 {
        self.vt_window_volts * fraction
    }

    /// Final amorphous fraction after one rectangular pulse, or `None`
    /// when `|V|` is below the switching threshold (sub-threshold
    /// no-op: reads, pass biases and soft-program floors all land
    /// here).
    #[must_use]
    pub fn pulse_final_fraction(
        &self,
        amplitude_volts: f64,
        width_seconds: f64,
        fraction: f64,
    ) -> Option<f64> {
        let magnitude = amplitude_volts.abs();
        if magnitude < self.switching_threshold_volts || width_seconds <= 0.0 {
            return None;
        }
        let overdrive = magnitude - self.reference_volts;
        let scale = (self.rate_exponent_per_volt * overdrive).exp();
        let rate = if amplitude_volts > 0.0 {
            self.set_rate_hz * scale
        } else {
            self.reset_rate_hz * scale
        };
        let decay = (-rate * width_seconds).exp();
        let next = if amplitude_volts > 0.0 {
            1.0 - (1.0 - fraction) * decay
        } else {
            fraction * decay
        };
        Some(next.clamp(0.0, 1.0))
    }

    /// Wear (injected-charge equivalent, coulombs) of a fraction move.
    #[must_use]
    pub fn wear_increment(&self, from: f64, to: f64) -> f64 {
        (to - from).abs() * self.wear_scale_coulombs
    }
}

/// The concrete backend value the array layer threads through the
/// blueprint/variant seam: a floating-gate device tagged with its
/// material kind, or a PCM element.
///
/// Use the constructors — they keep the tag honest (a
/// [`CellBackend::FloatingGate`] never carries
/// [`BackendKind::PcmResistive`]).
// One value per array construction, never per cell — the variant size
// gap doesn't matter, and boxing would cost an indirection on every
// engine build.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CellBackend {
    /// FN floating-gate cell (GNR or CNT channel).
    FloatingGate {
        /// Which floating-gate material system this is.
        kind: BackendKind,
        /// The device whose charge-balance dynamics the engine evolves.
        device: FloatingGateTransistor,
    },
    /// Phase-change cell.
    Pcm(PcmDevice),
}

impl CellBackend {
    /// The paper's GNR floating-gate device as a backend.
    #[must_use]
    pub fn gnr(device: FloatingGateTransistor) -> Self {
        Self::FloatingGate {
            kind: BackendKind::GnrFloatingGate,
            device,
        }
    }

    /// A CNT-channel floating-gate device as a backend.
    #[must_use]
    pub fn cnt(device: FloatingGateTransistor) -> Self {
        Self::FloatingGate {
            kind: BackendKind::CntFloatingGate,
            device,
        }
    }

    /// A PCM element as a backend.
    #[must_use]
    pub fn pcm(device: PcmDevice) -> Self {
        Self::Pcm(device)
    }

    /// The nominal preset for a kind: the paper device for GNR,
    /// [`crate::presets::cnt_floating_gate`] for CNT,
    /// [`PcmDevice::paper`] for PCM.
    #[must_use]
    pub fn preset(kind: BackendKind) -> Self {
        match kind {
            BackendKind::GnrFloatingGate => Self::gnr(FloatingGateTransistor::mlgnr_cnt_paper()),
            BackendKind::CntFloatingGate => Self::cnt(crate::presets::cnt_floating_gate()),
            BackendKind::PcmResistive => Self::pcm(PcmDevice::paper()),
        }
    }

    /// Which technology this is.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        match self {
            Self::FloatingGate { kind, .. } => *kind,
            Self::Pcm(_) => BackendKind::PcmResistive,
        }
    }

    /// The floating-gate device, when this is a floating-gate backend.
    #[must_use]
    pub fn floating_gate_device(&self) -> Option<&FloatingGateTransistor> {
        match self {
            Self::FloatingGate { device, .. } => Some(device),
            Self::Pcm(_) => None,
        }
    }

    /// The PCM element, when this is the PCM backend.
    #[must_use]
    pub fn pcm_device(&self) -> Option<&PcmDevice> {
        match self {
            Self::FloatingGate { .. } => None,
            Self::Pcm(d) => Some(d),
        }
    }
}

impl DeviceBackend for CellBackend {
    fn kind(&self) -> BackendKind {
        self.kind()
    }

    fn dynamics_key(&self) -> u64 {
        match self {
            Self::FloatingGate { kind, device } => kind.fold_key(device.dynamics_key()),
            Self::Pcm(d) => d.dynamics_key(),
        }
    }

    fn vt_shift_volts(&self, state: f64) -> f64 {
        match self {
            Self::FloatingGate { device, .. } => {
                let cfc = device.capacitances().cfc().as_farads();
                -(state / cfc)
            }
            Self::Pcm(d) => d.vt_shift_volts(state),
        }
    }

    fn pulse_final_state(&self, pulse: SquarePulse, state: f64) -> Result<f64> {
        match self {
            Self::FloatingGate { kind, device } => {
                let engine = ChargeBalanceEngine::new_for(*kind, device);
                let spec = crate::transient::ProgramPulseSpec::from_pulse(
                    pulse,
                    gnr_units::Charge::from_coulombs(state),
                );
                let q = engine.pulse_final_charge(&spec)?;
                Ok(q.as_coulombs())
            }
            Self::Pcm(d) => d
                .pulse_final_fraction(pulse.amplitude.as_volts(), pulse.width.as_seconds(), state)
                .ok_or(DeviceError::NoTunneling {
                    vgs: pulse.amplitude.as_volts(),
                }),
        }
    }

    fn wear_increment(&self, from: f64, to: f64) -> f64 {
        match self {
            Self::FloatingGate { .. } => (to - from).abs(),
            Self::Pcm(d) => d.wear_increment(from, to),
        }
    }

    fn effective_cfc_farads(&self) -> f64 {
        match self {
            Self::FloatingGate { device, .. } => device.capacitances().cfc().as_farads(),
            Self::Pcm(d) => d.effective_cfc_farads(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in [
            BackendKind::GnrFloatingGate,
            BackendKind::CntFloatingGate,
            BackendKind::PcmResistive,
        ] {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(
            BackendKind::from_name("pcm"),
            Some(BackendKind::PcmResistive)
        );
        assert_eq!(BackendKind::from_name("nvm"), None);
    }

    #[test]
    fn fold_key_separates_backends_over_identical_bits() {
        let raw = 0xdead_beef_u64;
        let gnr = BackendKind::GnrFloatingGate.fold_key(raw);
        let cnt = BackendKind::CntFloatingGate.fold_key(raw);
        let pcm = BackendKind::PcmResistive.fold_key(raw);
        assert_ne!(gnr, cnt);
        assert_ne!(gnr, pcm);
        assert_ne!(cnt, pcm);
    }

    #[test]
    fn pcm_sub_threshold_is_a_no_op() {
        let d = PcmDevice::paper();
        // Reads (2 V), pass biases (7 V / 5 V) and the 11 V soft-program
        // floor all sit below the 12 V switching threshold.
        for v in [2.0, 5.0, 7.0, 11.0, -11.0] {
            assert!(d.pulse_final_fraction(v, 1.0e-4, 0.5).is_none());
        }
    }

    #[test]
    fn pcm_ispp_ladder_converges() {
        let d = PcmDevice::paper();
        // Program ladder (13 V, 13.5 V … at 10 µs) reaches the +2 V
        // verify level within two rungs.
        let a1 = d.pulse_final_fraction(13.0, 1.0e-5, 0.0).unwrap();
        assert!(d.vt_shift_volts(a1) < 2.0, "one rung should not suffice");
        let a2 = d.pulse_final_fraction(13.5, 1.0e-5, a1).unwrap();
        assert!(d.vt_shift_volts(a2) >= 2.0, "two rungs reach verify");
        // Erase: one −13 V rung lands under the +0.3 V erase target.
        let e = d.pulse_final_fraction(-13.0, 1.0e-5, a2).unwrap();
        assert!(d.vt_shift_volts(e) <= 0.3);
    }

    #[test]
    fn pcm_fraction_stays_clamped() {
        let d = PcmDevice::paper();
        let a = d.pulse_final_fraction(16.0, 1.0, 0.9).unwrap();
        assert!(a <= 1.0);
        let b = d.pulse_final_fraction(-16.0, 1.0, 0.1).unwrap();
        assert!(b >= 0.0);
    }

    #[test]
    fn cell_backend_tags_are_honest() {
        let gnr = CellBackend::preset(BackendKind::GnrFloatingGate);
        assert_eq!(gnr.kind(), BackendKind::GnrFloatingGate);
        assert!(gnr.floating_gate_device().is_some());
        assert!(gnr.pcm_device().is_none());
        let pcm = CellBackend::preset(BackendKind::PcmResistive);
        assert_eq!(pcm.kind(), BackendKind::PcmResistive);
        assert!(pcm.pcm_device().is_some());
    }

    #[test]
    fn backend_dynamics_keys_differ() {
        let gnr = CellBackend::preset(BackendKind::GnrFloatingGate);
        let pcm = CellBackend::preset(BackendKind::PcmResistive);
        assert_ne!(
            DeviceBackend::dynamics_key(&gnr),
            DeviceBackend::dynamics_key(&pcm)
        );
        // Same device bits under two FG kinds must not alias either.
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let as_gnr = CellBackend::gnr(device.clone());
        let as_cnt = CellBackend::cnt(device);
        assert_ne!(
            DeviceBackend::dynamics_key(&as_gnr),
            DeviceBackend::dynamics_key(&as_cnt)
        );
    }
}
