//! Design-point optimisation — the paper's §V future work, implemented.
//!
//! > "Our future work will involve optimizing the supply voltage,
//! > tunneling current density and oxide thickness for optimum
//! > performance."
//!
//! The trade-off the conclusion describes: higher `VGS` / thinner `XTO`
//! program faster but overstress the oxide. This module searches the
//! (VGS, XTO) plane for the **fastest programming point whose oxide
//! stress stays below a reliability budget**, using a penalised
//! Nelder–Mead over the continuous design space with a coarse-grid seed.

use gnr_numerics::optimize::nelder_mead;
use gnr_units::{Charge, Length, Voltage};

use crate::device::FgtBuilder;
use crate::geometry::FgtGeometry;
use crate::{DeviceError, Result};

/// The optimisation constraints and bounds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DesignSpec {
    /// Allowed VGS range (V).
    pub vgs_range: (f64, f64),
    /// Allowed tunnel-oxide range (nm); the upper bound must stay below
    /// the control-oxide thickness.
    pub xto_range_nm: (f64, f64),
    /// Gate-coupling ratio (held fixed; the paper's sweeps treat GCR as a
    /// discrete design choice).
    pub gcr: f64,
    /// Maximum tolerated tunnel-oxide stress (fraction of breakdown
    /// field; < 1 for any margin).
    pub max_stress: f64,
}

impl Default for DesignSpec {
    fn default() -> Self {
        Self {
            vgs_range: (8.0, 17.0),
            xto_range_nm: (4.0, 8.0),
            gcr: crate::presets::PAPER_GCR,
            max_stress: 0.95,
        }
    }
}

/// The optimised design point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OptimalDesign {
    /// Programming voltage (V).
    pub vgs: f64,
    /// Tunnel-oxide thickness (nm).
    pub xto_nm: f64,
    /// Programming current density at the point (A/m²) — the speed
    /// figure of merit (programming time ∝ 1/J).
    pub j_program: f64,
    /// Tunnel-oxide stress ratio at the point.
    pub stress: f64,
}

/// Evaluates one design point: `(J_program, stress)`; `None` when the
/// device cannot be built (XTO ≥ XCO etc.).
fn evaluate(spec: &DesignSpec, vgs: f64, xto_nm: f64) -> Option<(f64, f64)> {
    let geometry = FgtGeometry::paper_nominal()
        .with_tunnel_oxide(Length::from_nanometers(xto_nm))
        .ok()?;
    let device = FgtBuilder::default()
        .geometry(geometry)
        .gcr(spec.gcr)
        .build()
        .ok()?;
    let v = Voltage::from_volts(vgs);
    let state = device.tunneling_state(v, Voltage::ZERO, Charge::ZERO);
    let (stress, _) = device.stress_ratios(v, Voltage::ZERO, Charge::ZERO);
    Some((state.tunnel_flow.abs().as_amps_per_square_meter(), stress))
}

/// Finds the fastest programming point under the stress budget.
///
/// # Errors
///
/// [`DeviceError::InvalidParameter`] when the spec bounds are degenerate
/// or no feasible point exists; numerical errors propagate.
pub fn fastest_reliable_program(spec: &DesignSpec) -> Result<OptimalDesign> {
    let (v_lo, v_hi) = spec.vgs_range;
    let (x_lo, x_hi) = spec.xto_range_nm;
    if !(v_lo < v_hi) || !(x_lo < x_hi) {
        return Err(DeviceError::InvalidParameter {
            name: "design bounds",
            value: v_lo,
            constraint: "ranges must be non-degenerate and increasing",
        });
    }
    if !(spec.max_stress > 0.0) {
        return Err(DeviceError::InvalidParameter {
            name: "max_stress",
            value: spec.max_stress,
            constraint: "must be positive",
        });
    }

    // Coarse feasibility grid: seed the simplex from the best feasible
    // cell (the objective is monotone in VGS but the stress boundary cuts
    // a curve through the plane).
    let mut best: Option<(f64, f64, f64, f64)> = None; // (vgs, xto, j, stress)
    for i in 0..12 {
        for j in 0..12 {
            let vgs = v_lo + (v_hi - v_lo) * i as f64 / 11.0;
            let xto = x_lo + (x_hi - x_lo) * j as f64 / 11.0;
            if let Some((jf, stress)) = evaluate(spec, vgs, xto) {
                if stress <= spec.max_stress {
                    match best {
                        Some((_, _, jb, _)) if jb >= jf => {}
                        _ => best = Some((vgs, xto, jf, stress)),
                    }
                }
            }
        }
    }
    let (v0, x0, _, _) = best.ok_or(DeviceError::InvalidParameter {
        name: "design space",
        value: spec.max_stress,
        constraint: "no feasible point satisfies the stress budget",
    })?;

    // Penalised continuous refinement: minimise −log10(J) + penalty.
    let objective = |p: &[f64]| -> f64 {
        let vgs = p[0];
        let xto = p[1];
        if vgs < v_lo || vgs > v_hi || xto < x_lo || xto > x_hi {
            return 1.0e6;
        }
        match evaluate(spec, vgs, xto) {
            Some((j, stress)) if j > 0.0 => {
                let violation = (stress - spec.max_stress).max(0.0);
                -j.log10() + 1.0e4 * violation * violation + 1.0e2 * violation
            }
            _ => 1.0e6,
        }
    };
    let result = nelder_mead(
        objective,
        &[v0, x0],
        &[0.2 * (v_hi - v_lo), 0.2 * (x_hi - x_lo)],
        1e-10,
        2000,
    )
    .map_err(DeviceError::from)?;

    let vgs = result.x[0].clamp(v_lo, v_hi);
    let xto = result.x[1].clamp(x_lo, x_hi);
    let (j_program, stress) = evaluate(spec, vgs, xto).ok_or(DeviceError::InvalidParameter {
        name: "optimum",
        value: xto,
        constraint: "optimiser left the buildable region",
    })?;
    Ok(OptimalDesign {
        vgs,
        xto_nm: xto,
        j_program,
        stress,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_is_feasible_and_on_the_stress_boundary() {
        let spec = DesignSpec::default();
        let opt = fastest_reliable_program(&spec).unwrap();
        assert!(
            opt.stress <= spec.max_stress + 1e-3,
            "stress {}",
            opt.stress
        );
        // The FN objective is monotone in field, so the optimum pushes
        // against the stress budget.
        assert!(opt.stress > 0.85 * spec.max_stress, "stress {}", opt.stress);
        assert!(opt.j_program > 0.0);
        assert!((spec.vgs_range.0..=spec.vgs_range.1).contains(&opt.vgs));
        assert!((spec.xto_range_nm.0..=spec.xto_range_nm.1).contains(&opt.xto_nm));
    }

    #[test]
    fn tighter_stress_budget_means_slower_programming() {
        let strict = DesignSpec {
            max_stress: 0.7,
            ..DesignSpec::default()
        };
        let loose = DesignSpec {
            max_stress: 0.95,
            ..DesignSpec::default()
        };
        let s = fastest_reliable_program(&strict).unwrap();
        let l = fastest_reliable_program(&loose).unwrap();
        assert!(
            l.j_program > s.j_program,
            "loose {} !> strict {}",
            l.j_program,
            s.j_program
        );
    }

    #[test]
    fn infeasible_budget_is_reported() {
        // A stress budget of 1e-6 cannot be met anywhere in the range
        // where tunneling is on.
        let spec = DesignSpec {
            max_stress: 1.0e-6,
            ..DesignSpec::default()
        };
        assert!(matches!(
            fastest_reliable_program(&spec),
            Err(DeviceError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn degenerate_bounds_rejected() {
        let spec = DesignSpec {
            vgs_range: (10.0, 10.0),
            ..DesignSpec::default()
        };
        assert!(fastest_reliable_program(&spec).is_err());
    }

    #[test]
    fn higher_gcr_allows_lower_voltage_at_same_stress() {
        // More coupling means the same oxide field at lower VGS: the
        // optimum VGS must not increase with GCR.
        let lo = fastest_reliable_program(&DesignSpec {
            gcr: 0.5,
            ..DesignSpec::default()
        })
        .unwrap();
        let hi = fastest_reliable_program(&DesignSpec {
            gcr: 0.7,
            ..DesignSpec::default()
        })
        .unwrap();
        assert!(hi.vgs <= lo.vgs + 1e-6, "hi {} vs lo {}", hi.vgs, lo.vgs);
    }
}
