//! Cell geometry: gate dimensions and oxide thicknesses.

use gnr_units::{Area, Length};

use crate::{DeviceError, Result};

/// The physical dimensions of one floating-gate cell.
///
/// The paper's Figure 1 stack, from bottom to top: MLGNR channel →
/// tunnel oxide (`XTO`) → CNT floating gate → control oxide (`XCO`) →
/// control gate. "The thickness of the control oxide is always greater
/// than the tunnel oxide" (§III) — enforced here.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FgtGeometry {
    gate_length: Length,
    gate_width: Length,
    tunnel_oxide_thickness: Length,
    control_oxide_thickness: Length,
}

impl FgtGeometry {
    /// Creates a geometry.
    ///
    /// # Errors
    ///
    /// [`DeviceError::InvalidParameter`] when any dimension is
    /// non-positive, or the control oxide is not thicker than the tunnel
    /// oxide (§III of the paper).
    pub fn new(
        gate_length: Length,
        gate_width: Length,
        tunnel_oxide_thickness: Length,
        control_oxide_thickness: Length,
    ) -> Result<Self> {
        for (name, v) in [
            ("gate_length", gate_length),
            ("gate_width", gate_width),
            ("tunnel_oxide_thickness", tunnel_oxide_thickness),
            ("control_oxide_thickness", control_oxide_thickness),
        ] {
            if v.as_meters() <= 0.0 {
                return Err(DeviceError::InvalidParameter {
                    name,
                    value: v.as_meters(),
                    constraint: "must be positive",
                });
            }
        }
        if control_oxide_thickness <= tunnel_oxide_thickness {
            return Err(DeviceError::InvalidParameter {
                name: "control_oxide_thickness",
                value: control_oxide_thickness.as_nanometers(),
                constraint: "must exceed the tunnel oxide thickness (paper §III)",
            });
        }
        Ok(Self {
            gate_length,
            gate_width,
            tunnel_oxide_thickness,
            control_oxide_thickness,
        })
    }

    /// The paper's nominal 22 nm-node geometry: 22 nm × 22 nm gate,
    /// `XTO` = 5 nm (the ITRS value the paper quotes for 8–14 nm nodes),
    /// `XCO` = 12 nm.
    #[must_use]
    pub fn paper_nominal() -> Self {
        Self::new(
            Length::from_nanometers(22.0),
            Length::from_nanometers(22.0),
            Length::from_nanometers(5.0),
            Length::from_nanometers(12.0),
        )
        .expect("paper nominal geometry is valid")
    }

    /// Returns a copy with a different tunnel-oxide thickness (the
    /// Figure 7/9 sweep axis).
    ///
    /// # Errors
    ///
    /// As for [`Self::new`].
    pub fn with_tunnel_oxide(&self, xto: Length) -> Result<Self> {
        Self::new(
            self.gate_length,
            self.gate_width,
            xto,
            self.control_oxide_thickness,
        )
    }

    /// Gate length.
    #[must_use]
    pub fn gate_length(&self) -> Length {
        self.gate_length
    }

    /// Gate width.
    #[must_use]
    pub fn gate_width(&self) -> Length {
        self.gate_width
    }

    /// Tunnel-oxide thickness `XTO`.
    #[must_use]
    pub fn tunnel_oxide_thickness(&self) -> Length {
        self.tunnel_oxide_thickness
    }

    /// Control-oxide thickness `XCO`.
    #[must_use]
    pub fn control_oxide_thickness(&self) -> Length {
        self.control_oxide_thickness
    }

    /// Gate (and tunneling) area `L × W`.
    #[must_use]
    pub fn gate_area(&self) -> Area {
        self.gate_length * self.gate_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_nominal_has_expected_values() {
        let g = FgtGeometry::paper_nominal();
        assert!((g.tunnel_oxide_thickness().as_nanometers() - 5.0).abs() < 1e-12);
        assert!((g.control_oxide_thickness().as_nanometers() - 12.0).abs() < 1e-12);
        assert!((g.gate_area().as_square_nanometers() - 484.0).abs() < 1e-9);
    }

    #[test]
    fn control_oxide_must_be_thicker() {
        let r = FgtGeometry::new(
            Length::from_nanometers(22.0),
            Length::from_nanometers(22.0),
            Length::from_nanometers(8.0),
            Length::from_nanometers(8.0),
        );
        assert!(matches!(r, Err(DeviceError::InvalidParameter { .. })));
    }

    #[test]
    fn non_positive_dimensions_rejected() {
        let r = FgtGeometry::new(
            Length::from_nanometers(0.0),
            Length::from_nanometers(22.0),
            Length::from_nanometers(5.0),
            Length::from_nanometers(12.0),
        );
        assert!(r.is_err());
    }

    #[test]
    fn with_tunnel_oxide_swaps_only_xto() {
        let g = FgtGeometry::paper_nominal();
        let g2 = g.with_tunnel_oxide(Length::from_nanometers(7.0)).unwrap();
        assert!((g2.tunnel_oxide_thickness().as_nanometers() - 7.0).abs() < 1e-12);
        assert_eq!(g2.control_oxide_thickness(), g.control_oxide_thickness());
        // XTO >= XCO rejected.
        assert!(g.with_tunnel_oxide(Length::from_nanometers(12.0)).is_err());
    }
}
