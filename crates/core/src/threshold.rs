//! Threshold-voltage analysis, read model and logic-state classification.
//!
//! §I of the paper: accumulated electrons (programming) encode logic '0';
//! depleted electrons (erase) encode logic '1'. The observable is the
//! threshold-voltage shift of the transistor,
//!
//! ```text
//! ΔVT = −QFG / CFC
//! ```
//!
//! (stored electrons screen the control gate, so a *negative* `QFG`
//! *raises* the threshold). The read model is a simple ambipolar
//! graphene-FET conductance law — enough to turn charge into current and
//! current into a read decision, which is all the array layer needs.

use gnr_units::{Charge, Current, Voltage};

use crate::device::FloatingGateTransistor;

/// The logic state of a cell, paper §I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LogicState {
    /// Electrons accumulated on the FG → high threshold → logic '0'.
    Programmed0,
    /// Electrons depleted → low threshold → logic '1'.
    Erased1,
}

/// Threshold shift produced by a stored charge: `ΔVT = −QFG/CFC`.
#[must_use]
pub fn vt_shift(device: &FloatingGateTransistor, qfg: Charge) -> Voltage {
    -(qfg / device.capacitances().cfc())
}

/// Classifies the logic state from a threshold shift against a decision
/// level (half the nominal window is typical).
#[must_use]
pub fn classify(shift: Voltage, decision_level: Voltage) -> LogicState {
    if shift > decision_level {
        LogicState::Programmed0
    } else {
        LogicState::Erased1
    }
}

/// The programmed/erased threshold pair of one cell.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemoryWindow {
    /// Threshold shift in the programmed state.
    pub programmed_shift: Voltage,
    /// Threshold shift in the erased state.
    pub erased_shift: Voltage,
}

impl MemoryWindow {
    /// The window width (programmed − erased shift).
    #[must_use]
    pub fn width(&self) -> Voltage {
        self.programmed_shift - self.erased_shift
    }

    /// Whether the window exceeds a sensing margin.
    #[must_use]
    pub fn is_open(&self, margin: Voltage) -> bool {
        self.width() > margin
    }

    /// The midpoint decision level for reads.
    #[must_use]
    pub fn decision_level(&self) -> Voltage {
        Voltage::from_volts(0.5 * (self.programmed_shift.as_volts() + self.erased_shift.as_volts()))
    }
}

/// A minimal electron-branch read model for the MLGNR channel:
/// `I_D = I_leak + gm·max(V_read − V_dirac − ΔVT, 0)`.
///
/// Reads sense the electron branch only — a programmed cell (threshold
/// shifted above the read voltage) is simply *off*. The hole branch of
/// the ambipolar graphene FET is suppressed by the n-type source/drain
/// doping assumed for the cell.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReadModel {
    /// Charge-neutrality (Dirac) point of the fresh channel.
    pub dirac_voltage: Voltage,
    /// Transconductance of the electron branch (A per volt of overdrive).
    pub transconductance: f64,
    /// Off-state leakage floor.
    pub leakage: Current,
}

impl ReadModel {
    /// A read model scaled to the 22 nm cell: µA-class on-current at 1 V
    /// overdrive, nA leakage.
    #[must_use]
    pub fn paper_nominal() -> Self {
        Self {
            dirac_voltage: Voltage::from_volts(0.0),
            transconductance: 2.0e-6,
            leakage: Current::from_nanoamps(1.0),
        }
    }

    /// Drain current at a read gate voltage for a cell with threshold
    /// shift `shift`: electron-branch conduction, clamped to the leakage
    /// floor once the shift pushes the cell past the read point.
    #[must_use]
    pub fn drain_current(&self, v_read: Voltage, shift: Voltage) -> Current {
        let overdrive = v_read.as_volts() - self.dirac_voltage.as_volts() - shift.as_volts();
        Current::from_amps(self.leakage.as_amps() + self.transconductance * overdrive.max(0.0))
    }

    /// Read decision: programmed cells (large positive shift) conduct
    /// *less* than the reference current at the read point.
    #[must_use]
    pub fn read_state(&self, v_read: Voltage, shift: Voltage, reference: Current) -> LogicState {
        if self.drain_current(v_read, shift) < reference {
            LogicState::Programmed0
        } else {
            LogicState::Erased1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> FloatingGateTransistor {
        FloatingGateTransistor::mlgnr_cnt_paper()
    }

    #[test]
    fn stored_electrons_raise_threshold() {
        let d = device();
        let shift = vt_shift(&d, Charge::from_electrons(-50.0));
        assert!(shift.as_volts() > 0.0);
    }

    #[test]
    fn shift_is_linear_in_charge() {
        let d = device();
        let s1 = vt_shift(&d, Charge::from_electrons(-10.0));
        let s2 = vt_shift(&d, Charge::from_electrons(-20.0));
        assert!((s2.as_volts() / s1.as_volts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn window_width_and_decision() {
        let w = MemoryWindow {
            programmed_shift: Voltage::from_volts(4.0),
            erased_shift: Voltage::from_volts(-1.0),
        };
        assert!((w.width().as_volts() - 5.0).abs() < 1e-12);
        assert!(w.is_open(Voltage::from_volts(1.0)));
        assert!(!w.is_open(Voltage::from_volts(6.0)));
        assert!((w.decision_level().as_volts() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn classify_by_decision_level() {
        let dl = Voltage::from_volts(1.5);
        assert_eq!(
            classify(Voltage::from_volts(4.0), dl),
            LogicState::Programmed0
        );
        assert_eq!(classify(Voltage::from_volts(-1.0), dl), LogicState::Erased1);
    }

    #[test]
    fn programmed_cell_conducts_less() {
        let rm = ReadModel::paper_nominal();
        let v_read = Voltage::from_volts(2.0);
        let i_erased = rm.drain_current(v_read, Voltage::ZERO);
        let i_prog = rm.drain_current(v_read, Voltage::from_volts(1.8));
        assert!(i_prog < i_erased);
    }

    #[test]
    fn read_state_matches_shift() {
        let rm = ReadModel::paper_nominal();
        let v_read = Voltage::from_volts(2.0);
        let reference = rm.drain_current(v_read, Voltage::from_volts(1.0));
        assert_eq!(
            rm.read_state(v_read, Voltage::from_volts(1.9), reference),
            LogicState::Programmed0
        );
        assert_eq!(
            rm.read_state(v_read, Voltage::ZERO, reference),
            LogicState::Erased1
        );
    }

    #[test]
    fn full_program_gives_multi_volt_window() {
        use crate::presets;
        use crate::transient::{ProgramPulseSpec, TransientSimulator};
        let d = device();
        let q = TransientSimulator::new(&d)
            .run(&ProgramPulseSpec::program(presets::program_vgs()))
            .unwrap()
            .final_charge();
        let shift = vt_shift(&d, q);
        assert!(shift.as_volts() > 1.0, "window = {} V", shift.as_volts());
    }
}
