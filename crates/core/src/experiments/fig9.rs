//! Figure 9 — [Erase] `JFN` vs `VGS` for five tunnel-oxide thicknesses.
//!
//! Paper caption: *"FN tunneling current density (JFN) versus Control gate
//! voltage (VGS) for five different tunnel oxide thickness (XTO).
//! GCR=60%, VGS <0V."*
//!
//! Expected shape (§IV.b): `JFN` increases as `VGS` goes more negative
//! for a given `XTO`; "the tunneling current increases significantly when
//! XTO is less than 7nm similar to the programing operation".

use crate::experiments::sweep_util::{device_with_xto, j_vs_vgs, series};
use crate::experiments::{monotone_decreasing, FigureData};
use crate::presets;
use crate::Result;

/// Generates the Figure 9 data (thickest oxide first).
///
/// # Errors
///
/// Propagates device-construction errors (none for the preset grids).
pub fn generate() -> Result<FigureData> {
    let grid = presets::vgs_grid(presets::FIG8_VGS_RANGE);
    let mut fig = FigureData {
        id: "fig9".into(),
        title: "[Erase] FN current density vs control gate voltage, five XTO".into(),
        x_label: "VGS (V)".into(),
        y_label: "|JFN| (A/m^2)".into(),
        series: Vec::with_capacity(presets::XTO_SWEEP_NM.len()),
    };
    let mut thicknesses = presets::XTO_SWEEP_NM;
    thicknesses.reverse();
    for xto in thicknesses {
        let device = device_with_xto(xto)?;
        let y = j_vs_vgs(&device, &grid);
        fig.series.push(series(format!("XTO={xto:.0}nm"), &grid, y));
    }
    Ok(fig)
}

/// Checks the paper-reported shape.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(fig: &FigureData) -> core::result::Result<(), String> {
    if fig.series.len() != presets::XTO_SWEEP_NM.len() {
        return Err(format!(
            "expected {} XTO curves",
            presets::XTO_SWEEP_NM.len()
        ));
    }
    for s in &fig.series {
        if !monotone_decreasing(&s.y) {
            return Err(format!("series {} must grow toward negative VGS", s.label));
        }
    }
    // Thinner oxide → more current at the most negative bias.
    for pair in fig.series.windows(2) {
        if pair[1].y[0] <= pair[0].y[0] {
            return Err(format!(
                "{} must exceed {} at VGS = −17 V",
                pair[1].label, pair[0].label
            ));
        }
    }
    // The "below 7 nm" acceleration, mirroring Figure 7.
    let j8 = fig.series[0].y[0];
    let j6 = fig.series[2].y[0];
    let j4 = fig.series[4].y[0];
    if j4 / j6 <= j6 / j8 {
        return Err("thin-oxide acceleration must grow as XTO shrinks".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_shape_matches_paper() {
        let fig = generate().unwrap();
        check(&fig).unwrap();
    }

    #[test]
    fn program_and_erase_xto_trends_mirror() {
        // §IV.b: "similar to the programing operation".
        let fig9 = generate().unwrap();
        let fig7 = crate::experiments::fig7::generate().unwrap();
        // Contrast between thinnest and thickest curve, both figures.
        let c9 = fig9.series.last().unwrap().y[0] / fig9.series.first().unwrap().y[0];
        let n7 = fig7.series[0].y.len();
        let c7 = fig7.series.last().unwrap().y[n7 - 1] / fig7.series.first().unwrap().y[n7 - 1];
        assert!(c9 > 1e2 && c7 > 1e2, "c9 = {c9:e}, c7 = {c7:e}");
    }
}
