//! Shape assertions shared by tests and the bench harness.

use super::FigureData;

/// `true` when the slice is non-decreasing (with a tiny tolerance for
/// floating-point noise).
#[must_use]
pub fn monotone_increasing(v: &[f64]) -> bool {
    v.windows(2)
        .all(|w| w[1] >= w[0] - 1e-300 - 1e-12 * w[0].abs())
}

/// `true` when the slice is non-increasing (with a tiny tolerance).
#[must_use]
pub fn monotone_decreasing(v: &[f64]) -> bool {
    v.windows(2)
        .all(|w| w[1] <= w[0] + 1e-300 + 1e-12 * w[0].abs())
}

/// `true` when, at grid index `x_index`, the series of the figure are in
/// strictly increasing `y` order (first curve lowest) — the curve
/// ordering the paper's legends imply.
#[must_use]
pub fn series_ordered_at(figure: &FigureData, x_index: usize) -> bool {
    figure
        .series
        .windows(2)
        .all(|pair| pair[1].y[x_index] > pair[0].y[x_index])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SweepSeries;

    #[test]
    fn monotonicity_checks() {
        assert!(monotone_increasing(&[1.0, 1.0, 2.0]));
        assert!(!monotone_increasing(&[2.0, 1.0]));
        assert!(monotone_decreasing(&[3.0, 2.0, 2.0]));
        assert!(!monotone_decreasing(&[1.0, 2.0]));
    }

    #[test]
    fn ordering_check() {
        let fig = FigureData {
            id: "t".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                SweepSeries {
                    label: "lo".into(),
                    x: vec![0.0],
                    y: vec![1.0],
                },
                SweepSeries {
                    label: "hi".into(),
                    x: vec![0.0],
                    y: vec![2.0],
                },
            ],
        };
        assert!(series_ordered_at(&fig, 0));
    }
}
