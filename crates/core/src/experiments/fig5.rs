//! Figure 5 — `Jin(t)` and `Jout(t)` through saturation.
//!
//! Paper caption: *"Tunneling current in time."* §III: "Jin decreases
//! gradually … the potential difference between the floating gate and the
//! control gate increases, which leads to higher Jout … At one time point
//! t = t_sat Jin will be equal to Jout. The negative charge accumulated at
//! t_sat … represents the maximum charge that can be accumulated on the
//! floating gate."
//!
//! The physical approach is asymptotic; `t_sat` is reported where the two
//! flows agree within the simulator's saturation tolerance (1 %).

use gnr_units::Voltage;

use crate::device::FloatingGateTransistor;
use crate::transient::{ProgramPulseSpec, TransientSample, TransientSimulator};
use crate::{presets, Result};

/// The Figure 5 data: the full programming transient.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig5Data {
    /// Programming gate voltage.
    pub vgs: f64,
    /// Samples through `1.5·t_sat`.
    pub samples: Vec<TransientSample>,
    /// Saturation time (s).
    pub t_sat: Option<f64>,
    /// Stored charge at saturation (C) — the paper's maximum charge.
    pub charge_at_sat: Option<f64>,
}

/// Generates Figure 5 at the paper's programming bias.
///
/// # Errors
///
/// Propagates transient-simulation failures.
pub fn generate(device: &FloatingGateTransistor) -> Result<Fig5Data> {
    generate_at(device, presets::program_vgs())
}

/// Generates Figure 5 at an arbitrary programming bias.
///
/// # Errors
///
/// Propagates transient-simulation failures.
pub fn generate_at(device: &FloatingGateTransistor, vgs: Voltage) -> Result<Fig5Data> {
    let result = TransientSimulator::new(device).run(&ProgramPulseSpec::program(vgs))?;
    Ok(Fig5Data {
        vgs: vgs.as_volts(),
        t_sat: result.saturation_time().map(|t| t.as_seconds()),
        charge_at_sat: result.charge_at_saturation().map(|q| q.as_coulombs()),
        samples: result.samples().to_vec(),
    })
}

/// Checks the Figure 5 shape: `Jin` monotone ↓, `Jout` monotone ↑, the
/// flows converge at `t_sat`, and the stored charge is negative
/// (electron accumulation).
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(data: &Fig5Data) -> core::result::Result<(), String> {
    if data.samples.len() < 8 {
        return Err("trace too short".into());
    }
    let j_in: Vec<f64> = data.samples.iter().map(|s| s.j_in).collect();
    let j_out: Vec<f64> = data.samples.iter().map(|s| s.j_out).collect();
    if !crate::experiments::monotone_decreasing(&j_in) {
        return Err("Jin(t) must decrease monotonically".into());
    }
    if !crate::experiments::monotone_increasing(&j_out) {
        return Err("Jout(t) must increase monotonically".into());
    }
    let Some(t_sat) = data.t_sat else {
        return Err("t_sat was not detected".into());
    };
    if t_sat <= 0.0 {
        return Err("t_sat must be positive".into());
    }
    let Some(q_sat) = data.charge_at_sat else {
        return Err("charge at saturation missing".into());
    };
    if q_sat >= 0.0 {
        return Err("programming must accumulate negative charge".into());
    }
    // Convergence: near the end of the trace the flows agree within 5 %.
    let last = data.samples.last().expect("non-empty");
    let mismatch = (last.j_in - last.j_out).abs() / last.j_in.max(1e-300);
    if mismatch > 0.05 {
        return Err(format!(
            "Jin and Jout must converge at saturation ({mismatch:e})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let data = generate(&d).unwrap();
        check(&data).unwrap();
    }

    #[test]
    fn saturation_charge_bounds_the_trace() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let data = generate(&d).unwrap();
        let q_sat = data.charge_at_sat.unwrap();
        // No sample stores more charge than ~the saturation value.
        for s in &data.samples {
            assert!(s.charge >= q_sat * 1.02, "t = {}", s.t);
        }
    }

    #[test]
    fn silicon_baseline_also_saturates() {
        let d = FloatingGateTransistor::silicon_conventional();
        let data = generate(&d).unwrap();
        assert!(data.t_sat.is_some());
        check(&data).unwrap();
    }

    #[test]
    fn higher_bias_saturates_faster_with_more_charge() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let a = generate_at(&d, Voltage::from_volts(14.0)).unwrap();
        let b = generate_at(&d, Voltage::from_volts(16.0)).unwrap();
        assert!(b.t_sat.unwrap() < a.t_sat.unwrap());
        assert!(b.charge_at_sat.unwrap() < a.charge_at_sat.unwrap());
    }
}
