//! The unified [`Experiment`] trait and registry.
//!
//! Every reproduction target — Figure 2 and Figures 4–9 of the paper
//! plus the extension studies — implements one trait and is listed in
//! [`registry`]. A driver (the `figures` binary of `gnr-bench`) iterates
//! the registry instead of hard-coding per-figure dispatch: printing the
//! summaries, asserting the paper-shape checks and writing the CSV/JSON
//! artifacts is the same loop for all of them, and a new experiment is
//! one new `Box` in the list.
//!
//! Experiments receive an [`ExperimentContext`] carrying the device
//! under test and a [`BatchSimulator`], so multi-transient experiments
//! (the saturation sweep, and any future ones) fan out through the
//! batched engine rather than looping serially.
//!
//! One scoping rule: the J–V sweep figures (fig6–fig9) reproduce the
//! paper's *device families* — four GCR variants, five XTO variants of
//! the nominal cell — so they construct those devices themselves and do
//! **not** read `ctx.device`. Every single-device experiment (fig2,
//! fig4, fig5, FN-plot, temperature, erase transient, saturation sweep)
//! honours the context.

use gnr_units::fmt_eng::sci;
use gnr_units::Charge;

use crate::device::FloatingGateTransistor;
use crate::engine::BatchSimulator;
use crate::experiments::{
    backend_transients, band_diagram, erase_transient, fig4, fig5, fig6, fig7, fig8, fig9,
    fn_plot_fig, saturation_sweep, temperature_fig, FigureData,
};
use crate::{presets, Result};

/// Shared inputs of a registry run.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The device under test.
    pub device: FloatingGateTransistor,
    /// The fan-out executor for multi-transient experiments.
    pub batch: BatchSimulator,
}

impl ExperimentContext {
    /// Context for the paper's nominal MLGNR-CNT cell with a parallel
    /// batch executor.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(FloatingGateTransistor::mlgnr_cnt_paper())
    }

    /// Context for an arbitrary device.
    #[must_use]
    pub fn new(device: FloatingGateTransistor) -> Self {
        Self {
            device,
            batch: BatchSimulator::new(),
        }
    }

    /// Replaces the batch executor.
    #[must_use]
    pub fn with_batch(mut self, batch: BatchSimulator) -> Self {
        self.batch = batch;
        self
    }
}

/// One output file of an experiment.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// File name including extension (`fig6.csv`, `fn_plot.json`, …).
    pub name: String,
    /// File contents.
    pub contents: String,
}

/// What an experiment produced: log lines, files and its shape check.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Human-readable result lines (printed under the experiment header).
    pub summary: Vec<String>,
    /// Files to persist under `results/`.
    pub artifacts: Vec<Artifact>,
    /// The paper-shape check verdict.
    pub check: core::result::Result<(), String>,
}

/// A runnable reproduction target.
pub trait Experiment: Sync {
    /// Stable identifier (`fig6`, `band-diagram`, …).
    fn id(&self) -> &'static str;
    /// Human-readable title (matches the paper caption where one exists).
    fn title(&self) -> &'static str;
    /// Runs the experiment against a context.
    ///
    /// # Errors
    ///
    /// Propagates device/simulation failures; shape-check *violations*
    /// are reported in [`ExperimentReport::check`], not as errors.
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport>;
}

/// Every experiment of the reproduction, in presentation order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(BandDiagramExperiment),
        Box::new(Fig4Experiment),
        Box::new(Fig5Experiment),
        Box::new(SweepFigureExperiment {
            id: "fig6",
            title: "[Program] FN current density vs VGS, four GCR",
            artifact: "fig6.csv",
            generate: fig6::generate,
            check: fig6::check,
        }),
        Box::new(SweepFigureExperiment {
            id: "fig7",
            title: "[Program] FN current density vs VGS, five XTO",
            artifact: "fig7.csv",
            generate: fig7::generate,
            check: fig7::check,
        }),
        Box::new(SweepFigureExperiment {
            id: "fig8",
            title: "[Erase] FN current density vs VGS, four GCR",
            artifact: "fig8.csv",
            generate: fig8::generate,
            check: fig8::check,
        }),
        Box::new(SweepFigureExperiment {
            id: "fig9",
            title: "[Erase] FN current density vs VGS, five XTO",
            artifact: "fig9.csv",
            generate: fig9::generate,
            check: fig9::check,
        }),
        Box::new(FnPlotExperiment),
        Box::new(TemperatureExperiment),
        Box::new(EraseTransientExperiment),
        Box::new(SaturationSweepExperiment),
        Box::new(BackendTransientsExperiment),
    ]
}

/// Looks an experiment up by id.
#[must_use]
pub fn find(id: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.id() == id)
}

fn figure_summary(fig: &FigureData) -> Vec<String> {
    fig.series
        .iter()
        .map(|s| {
            let first = s.y.first().copied().unwrap_or(f64::NAN);
            let last = s.y.last().copied().unwrap_or(f64::NAN);
            format!(
                "{}: {} -> {} over {} points",
                s.label,
                sci(first, &fig.y_label),
                sci(last, &fig.y_label),
                s.x.len()
            )
        })
        .collect()
}

fn transient_csv(header: &str, samples: &[crate::transient::TransientSample]) -> String {
    let mut csv = String::from(header);
    csv.push('\n');
    for s in samples {
        csv.push_str(&format!(
            "{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}\n",
            s.t, s.j_in, s.j_out, s.vfg, s.charge
        ));
    }
    csv
}

struct BandDiagramExperiment;

impl Experiment for BandDiagramExperiment {
    fn id(&self) -> &'static str {
        "fig2"
    }
    fn title(&self) -> &'static str {
        "FN band diagram at the programming bias"
    }
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport> {
        let data = band_diagram::generate(&ctx.device, presets::program_vgs(), Charge::ZERO);
        let summary = vec![format!(
            "VFG = {:.2} V; tunnel barrier peak = {:.2} eV",
            data.vfg,
            data.regions[1].points.first().map_or(f64::NAN, |p| p.1)
        )];
        Ok(ExperimentReport {
            summary,
            artifacts: vec![Artifact {
                name: "fig2_band_diagram.json".into(),
                contents: serde_json::to_string_pretty(&data).expect("serializable"),
            }],
            check: band_diagram::check(&data),
        })
    }
}

struct Fig4Experiment;

impl Experiment for Fig4Experiment {
    fn id(&self) -> &'static str {
        "fig4"
    }
    fn title(&self) -> &'static str {
        "Programming onset (Jin vs Jout)"
    }
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport> {
        let data = fig4::generate(&ctx.device)?;
        let summary = vec![
            format!(
                "Jin(0) = {}, Jout(0) = {}, ratio = {:.1e}",
                sci(data.j_in_onset, "A/m^2"),
                sci(data.j_out_onset, "A/m^2"),
                data.onset_ratio()
            ),
            format!(
                "oxide drops at t=0: tunnel {:.1} V, control {:.1} V (paper: 9 V / 6 V)",
                data.tunnel_drop, data.control_drop
            ),
        ];
        Ok(ExperimentReport {
            summary,
            artifacts: vec![Artifact {
                name: "fig4_onset.json".into(),
                contents: serde_json::to_string_pretty(&data).expect("serializable"),
            }],
            check: fig4::check(&data),
        })
    }
}

struct Fig5Experiment;

impl Experiment for Fig5Experiment {
    fn id(&self) -> &'static str {
        "fig5"
    }
    fn title(&self) -> &'static str {
        "Transient to saturation"
    }
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport> {
        let data = fig5::generate(&ctx.device)?;
        let summary = vec![format!(
            "t_sat = {} s, charge at saturation = {:.1} electrons",
            data.t_sat.map_or("n/a".into(), |t| format!("{t:.3e}")),
            data.charge_at_sat
                .map_or(f64::NAN, |q| Charge::from_coulombs(q).as_electrons())
        )];
        Ok(ExperimentReport {
            summary,
            artifacts: vec![Artifact {
                name: "fig5_transient.csv".into(),
                contents: transient_csv("t_s,j_in,j_out,vfg,charge", &data.samples),
            }],
            check: fig5::check(&data),
        })
    }
}

struct SweepFigureExperiment {
    id: &'static str,
    title: &'static str,
    artifact: &'static str,
    generate: fn() -> Result<FigureData>,
    check: fn(&FigureData) -> core::result::Result<(), String>,
}

impl Experiment for SweepFigureExperiment {
    fn id(&self) -> &'static str {
        self.id
    }
    fn title(&self) -> &'static str {
        self.title
    }
    fn run(&self, _ctx: &ExperimentContext) -> Result<ExperimentReport> {
        // Sweep figures reproduce the paper's GCR/XTO device *families*,
        // not the context device — see the module docs.
        let fig = (self.generate)()?;
        Ok(ExperimentReport {
            summary: figure_summary(&fig),
            artifacts: vec![Artifact {
                name: self.artifact.to_string(),
                contents: fig.to_csv(),
            }],
            check: (self.check)(&fig),
        })
    }
}

struct FnPlotExperiment;

impl Experiment for FnPlotExperiment {
    fn id(&self) -> &'static str {
        "fn-plot"
    }
    fn title(&self) -> &'static str {
        "FN-plot parameter extraction (§IV, ref. [9])"
    }
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport> {
        let data = fn_plot_fig::generate(&ctx.device)?;
        let summary = vec![format!(
            "extracted B = {:.4e} V/m (true {:.4e}); barrier {:.3} eV (true {:.3}); R² = {:.6}",
            data.extracted_b,
            data.true_b,
            data.recovered_barrier_ev,
            data.true_barrier_ev,
            data.r_squared
        )];
        Ok(ExperimentReport {
            summary,
            artifacts: vec![Artifact {
                name: "fn_plot.json".into(),
                contents: serde_json::to_string_pretty(&data).expect("serializable"),
            }],
            check: fn_plot_fig::check(&data),
        })
    }
}

struct TemperatureExperiment;

impl Experiment for TemperatureExperiment {
    fn id(&self) -> &'static str {
        "temperature"
    }
    fn title(&self) -> &'static str {
        "Temperature study 250-400 K (Lenzlinger-Snow)"
    }
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport> {
        let fig = temperature_fig::generate(&ctx.device)?;
        Ok(ExperimentReport {
            summary: figure_summary(&fig),
            artifacts: vec![Artifact {
                name: "temperature.csv".into(),
                contents: fig.to_csv(),
            }],
            check: temperature_fig::check(&fig, &ctx.device),
        })
    }
}

struct EraseTransientExperiment;

impl Experiment for EraseTransientExperiment {
    fn id(&self) -> &'static str {
        "erase-transient"
    }
    fn title(&self) -> &'static str {
        "Erase transient (the §IV.b mirror of Figure 5)"
    }
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport> {
        let data = erase_transient::generate(&ctx.device)?;
        let summary = vec![format!(
            "from {:.1} electrons at {} V: t_sat = {} s, final depletion = {:.1} electrons",
            Charge::from_coulombs(data.initial_charge).as_electrons(),
            data.vgs,
            data.t_sat.map_or("n/a".into(), |t| format!("{t:.3e}")),
            data.charge_at_sat
                .map_or(f64::NAN, |q| Charge::from_coulombs(q).as_electrons())
        )];
        Ok(ExperimentReport {
            summary,
            artifacts: vec![Artifact {
                name: "erase_transient.csv".into(),
                contents: transient_csv("t_s,j_tunnel,j_control,vfg,charge", &data.samples),
            }],
            check: erase_transient::check(&data),
        })
    }
}

struct SaturationSweepExperiment;

impl Experiment for SaturationSweepExperiment {
    fn id(&self) -> &'static str {
        "saturation-sweep"
    }
    fn title(&self) -> &'static str {
        "t_sat vs VGS (the conclusion, quantified)"
    }
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport> {
        let sweep = saturation_sweep::generate_with(
            &ctx.batch,
            &ctx.device,
            &saturation_sweep::default_grid(),
        )?;
        let summary = sweep
            .points
            .iter()
            .map(|p| {
                format!(
                    "VGS = {:.1} V: t_sat = {:.3e} s, {:.1} electrons, window {:.2} V",
                    p.vgs,
                    p.t_sat,
                    Charge::from_coulombs(p.charge_at_sat).as_electrons(),
                    p.window
                )
            })
            .collect();
        Ok(ExperimentReport {
            summary,
            artifacts: vec![Artifact {
                name: "saturation_sweep.json".into(),
                contents: serde_json::to_string_pretty(&sweep).expect("serializable"),
            }],
            check: saturation_sweep::check(&sweep),
        })
    }
}

struct BackendTransientsExperiment;

impl Experiment for BackendTransientsExperiment {
    fn id(&self) -> &'static str {
        "backend-transients"
    }
    fn title(&self) -> &'static str {
        "GNR-FG vs CNT-FG programming transient (device backends)"
    }
    fn run(&self, ctx: &ExperimentContext) -> Result<ExperimentReport> {
        let data = backend_transients::generate(&ctx.device)?;
        Ok(ExperimentReport {
            summary: backend_transients::summary(&data),
            artifacts: vec![
                Artifact {
                    name: "backend_transients.csv".into(),
                    contents: backend_transients::to_csv(&data),
                },
                Artifact {
                    name: "backend_transients.json".into(),
                    contents: serde_json::to_string_pretty(&data).expect("serializable"),
                },
            ],
            check: backend_transients::check(&data),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_every_figure_once() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        for expected in [
            "fig2",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fn-plot",
            "temperature",
            "erase-transient",
            "saturation-sweep",
            "backend-transients",
        ] {
            assert_eq!(
                ids.iter().filter(|id| **id == expected).count(),
                1,
                "{expected} must appear exactly once"
            );
        }
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn find_resolves_known_ids() {
        assert!(find("fig6").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn sweep_figures_run_and_pass_their_checks() {
        let ctx = ExperimentContext::paper();
        for id in ["fig2", "fig6", "fig8"] {
            let report = find(id).unwrap().run(&ctx).unwrap();
            assert!(report.check.is_ok(), "{id}: {:?}", report.check);
            assert!(!report.artifacts.is_empty());
            assert!(!report.summary.is_empty());
        }
    }
}
