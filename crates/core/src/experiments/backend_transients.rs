//! Extension — GNR-FG vs CNT-FG programming transients.
//!
//! The paper's cell stacks an MLGNR channel under the CNT control gate;
//! the CNT-channel variant ([`presets::cnt_floating_gate`]) swaps the
//! emitting electrode for a (17,0) zigzag tube. Its FN barrier
//! (work function − half the gap) sits below the MLGNR barrier, so at
//! the same programming bias the CNT cell injects harder and saturates
//! sooner. This experiment runs both devices through the identical
//! Figure-5 transient and asserts that ordering — the first
//! cross-backend figure of the device-backend abstraction.

use gnr_units::{Charge, Voltage};

use crate::device::FloatingGateTransistor;
use crate::experiments::fig5::{self, Fig5Data};
use crate::{presets, Result};

/// The comparison data: one Figure-5 transient per floating-gate
/// backend, at the same bias.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackendTransientData {
    /// Shared programming gate voltage (V).
    pub vgs: f64,
    /// The paper's MLGNR-channel transient.
    pub gnr: Fig5Data,
    /// The CNT-channel transient.
    pub cnt: Fig5Data,
}

/// Generates both transients at the paper's programming bias. The GNR
/// device is the caller's (normally the paper nominal); the CNT device
/// is always the [`presets::cnt_floating_gate`] preset.
///
/// # Errors
///
/// Propagates transient-simulation failures.
pub fn generate(gnr_device: &FloatingGateTransistor) -> Result<BackendTransientData> {
    let vgs = presets::program_vgs();
    Ok(BackendTransientData {
        vgs: vgs.as_volts(),
        gnr: fig5::generate_at(gnr_device, vgs)?,
        cnt: fig5::generate_at(&presets::cnt_floating_gate(), vgs)?,
    })
}

/// Generates the comparison at an arbitrary bias.
///
/// # Errors
///
/// Propagates transient-simulation failures.
pub fn generate_at(
    gnr_device: &FloatingGateTransistor,
    vgs: Voltage,
) -> Result<BackendTransientData> {
    Ok(BackendTransientData {
        vgs: vgs.as_volts(),
        gnr: fig5::generate_at(gnr_device, vgs)?,
        cnt: fig5::generate_at(&presets::cnt_floating_gate(), vgs)?,
    })
}

/// Checks the comparison shape: each transient individually passes the
/// Figure-5 checks, and the CNT cell — lower FN barrier — reaches
/// saturation strictly sooner while storing at least as much charge
/// magnitude as the MLGNR cell gives up per volt of window.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(data: &BackendTransientData) -> core::result::Result<(), String> {
    fig5::check(&data.gnr).map_err(|e| format!("GNR transient: {e}"))?;
    fig5::check(&data.cnt).map_err(|e| format!("CNT transient: {e}"))?;
    let (Some(t_gnr), Some(t_cnt)) = (data.gnr.t_sat, data.cnt.t_sat) else {
        return Err("both transients must saturate".into());
    };
    if t_cnt >= t_gnr {
        return Err(format!(
            "CNT emitter has the lower FN barrier and must saturate first \
             (CNT {t_cnt:.3e} s vs GNR {t_gnr:.3e} s)"
        ));
    }
    let (Some(q_gnr), Some(q_cnt)) = (data.gnr.charge_at_sat, data.cnt.charge_at_sat) else {
        return Err("both saturation charges must be reported".into());
    };
    if q_gnr >= 0.0 || q_cnt >= 0.0 {
        return Err("programming must accumulate negative charge on both backends".into());
    }
    Ok(())
}

/// Renders the two transients as one CSV (`backend`, then the
/// per-sample columns) — the artifact the figures driver persists.
#[must_use]
pub fn to_csv(data: &BackendTransientData) -> String {
    let mut csv = String::from("backend,t_s,j_in,j_out,vfg,charge\n");
    for (backend, trace) in [
        ("gnr-floating-gate", &data.gnr),
        ("cnt-floating-gate", &data.cnt),
    ] {
        for s in &trace.samples {
            csv.push_str(&format!(
                "{backend},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}\n",
                s.t, s.j_in, s.j_out, s.vfg, s.charge
            ));
        }
    }
    csv
}

/// One-line summary per backend (electrons at saturation, `t_sat`).
#[must_use]
pub fn summary(data: &BackendTransientData) -> Vec<String> {
    [("GNR-FG", &data.gnr), ("CNT-FG", &data.cnt)]
        .into_iter()
        .map(|(label, trace)| {
            format!(
                "{label}: t_sat = {} s, {:.1} electrons at saturation",
                trace.t_sat.map_or("n/a".into(), |t| format!("{t:.3e}")),
                trace
                    .charge_at_sat
                    .map_or(f64::NAN, |q| Charge::from_coulombs(q).as_electrons())
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnt_programs_faster_than_gnr() {
        let data = generate(&FloatingGateTransistor::mlgnr_cnt_paper()).unwrap();
        check(&data).unwrap();
        assert!(data.cnt.t_sat.unwrap() < data.gnr.t_sat.unwrap());
    }

    #[test]
    fn csv_tags_every_row_with_its_backend() {
        let data = generate(&FloatingGateTransistor::mlgnr_cnt_paper()).unwrap();
        let csv = to_csv(&data);
        let gnr_rows = csv.lines().filter(|l| l.starts_with("gnr-")).count();
        let cnt_rows = csv.lines().filter(|l| l.starts_with("cnt-")).count();
        assert_eq!(gnr_rows, data.gnr.samples.len());
        assert_eq!(cnt_rows, data.cnt.samples.len());
    }
}
