//! Reproductions of every figure in the paper's evaluation.
//!
//! | module | paper figure |
//! |--------|--------------|
//! | [`band_diagram`] | Fig. 2 — FN triangular-barrier band diagram |
//! | [`fig4`] | Fig. 4 — `Jin` vs `Jout` at programming onset |
//! | [`fig5`] | Fig. 5 — `Jin(t)`/`Jout(t)` to saturation (`t_sat`) |
//! | [`fig6`] | Fig. 6 — program `JFN` vs `VGS` for four GCR |
//! | [`fig7`] | Fig. 7 — program `JFN` vs `VGS` for five `XTO` |
//! | [`fig8`] | Fig. 8 — erase `JFN` vs `VGS` for four GCR |
//! | [`fig9`] | Fig. 9 — erase `JFN` vs `VGS` for five `XTO` |
//! | [`fn_plot_fig`] | extension — §IV's FN-plot parameter extraction |
//! | [`temperature_fig`] | extension — Lenzlinger–Snow 250–400 K study |
//! | [`backend_transients`] | extension — GNR-FG vs CNT-FG transient comparison |
//!
//! Each generator returns serialisable series and a `check` function that
//! asserts the *shape* the paper reports (orderings, monotonicity,
//! crossovers) — absolute magnitudes depend on material constants the
//! paper does not tabulate (see EXPERIMENTS.md).

pub mod backend_transients;
pub mod band_diagram;
pub mod erase_transient;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fn_plot_fig;
pub mod registry;
pub mod saturation_sweep;
pub mod temperature_fig;

mod shape;
mod sweep_util;

pub use registry::{registry, Artifact, Experiment, ExperimentContext, ExperimentReport};
pub use shape::{monotone_decreasing, monotone_increasing, series_ordered_at};

/// One labelled data series (a curve of a figure).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepSeries {
    /// Curve label (e.g. `"GCR=60%"`).
    pub label: String,
    /// Abscissae.
    pub x: Vec<f64>,
    /// Ordinates.
    pub y: Vec<f64>,
}

/// A complete figure: several series over a shared axis pair.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FigureData {
    /// Figure identifier (`"fig6"`, …).
    pub id: String,
    /// Human-readable title (matches the paper caption).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<SweepSeries>,
}

impl FigureData {
    /// Renders the figure as CSV: header `x,label1,label2,…`, one row per
    /// shared abscissa. All series of a figure share their x grid.
    ///
    /// # Panics
    ///
    /// Panics if the series have inconsistent lengths (generators always
    /// produce consistent grids).
    #[must_use]
    pub fn to_csv(&self) -> String {
        assert!(!self.series.is_empty(), "figure has no series");
        let n = self.series[0].x.len();
        for s in &self.series {
            assert_eq!(s.x.len(), n, "series grids differ");
            assert_eq!(s.y.len(), n, "series grids differ");
        }
        let mut out = String::from("x");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label.replace(',', ";"));
        }
        out.push('\n');
        for i in 0..n {
            out.push_str(&format!("{:.6e}", self.series[0].x[i]));
            for s in &self.series {
                out.push_str(&format!(",{:.6e}", s.y[i]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_layout_is_rectangular() {
        let fig = FigureData {
            id: "t".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                SweepSeries {
                    label: "a".into(),
                    x: vec![1.0, 2.0],
                    y: vec![10.0, 20.0],
                },
                SweepSeries {
                    label: "b".into(),
                    x: vec![1.0, 2.0],
                    y: vec![30.0, 40.0],
                },
            ],
        };
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,a,b");
        assert!(lines[1].starts_with("1.0"));
    }

    #[test]
    fn csv_escapes_commas_in_labels() {
        let fig = FigureData {
            id: "t".into(),
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![SweepSeries {
                label: "a,b".into(),
                x: vec![1.0],
                y: vec![2.0],
            }],
        };
        assert!(fig.to_csv().starts_with("x,a;b\n"));
    }
}
