//! Extension experiment: saturation time and stored charge vs programming
//! voltage.
//!
//! Quantifies the paper's conclusion — "for faster programming and
//! erasing higher FN tunneling current density (JFN) can be achieved by
//! higher control gate voltage" — as a `t_sat(VGS)` curve, together with
//! the maximum stored charge (the memory-window ceiling) at each bias.

use gnr_units::Voltage;

use crate::device::FloatingGateTransistor;
use crate::engine::BatchSimulator;
use crate::threshold::vt_shift;
use crate::transient::ProgramPulseSpec;
use crate::Result;

/// One point of the saturation sweep.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SaturationPoint {
    /// Programming voltage (V).
    pub vgs: f64,
    /// Time to the `Jin = Jout` balance (s).
    pub t_sat: f64,
    /// Stored charge at balance (C, negative).
    pub charge_at_sat: f64,
    /// Threshold window at balance (V).
    pub window: f64,
}

/// The sweep output.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SaturationSweep {
    /// Points in ascending VGS order.
    pub points: Vec<SaturationPoint>,
}

/// Default sweep grid: 13–17 V in 0.5 V steps.
#[must_use]
pub fn default_grid() -> Vec<f64> {
    (0..9).map(|i| 13.0 + 0.5 * f64::from(i)).collect()
}

/// Runs the sweep.
///
/// # Errors
///
/// Propagates transient failures (all preset grid points saturate).
pub fn generate(device: &FloatingGateTransistor, grid: &[f64]) -> Result<SaturationSweep> {
    generate_with(&BatchSimulator::new(), device, grid)
}

/// Runs the sweep through an explicit batch executor: every grid point
/// is an independent transient, fanned out across cores.
///
/// # Errors
///
/// Propagates the first transient failure in grid order.
pub fn generate_with(
    batch: &BatchSimulator,
    device: &FloatingGateTransistor,
    grid: &[f64],
) -> Result<SaturationSweep> {
    let specs: Vec<ProgramPulseSpec> = grid
        .iter()
        .map(|&vgs| ProgramPulseSpec::program(Voltage::from_volts(vgs)))
        .collect();
    let mut points = Vec::with_capacity(grid.len());
    for (&vgs, result) in grid.iter().zip(batch.run(device, &specs)) {
        let result = result?;
        let t_sat = result
            .saturation_time()
            .map_or(f64::INFINITY, |t| t.as_seconds());
        let q = result
            .charge_at_saturation()
            .unwrap_or_else(|| result.final_charge());
        points.push(SaturationPoint {
            vgs,
            t_sat,
            charge_at_sat: q.as_coulombs(),
            window: vt_shift(device, q).as_volts(),
        });
    }
    Ok(SaturationSweep { points })
}

/// Checks the conclusion's shape: `t_sat` strictly decreasing in VGS and
/// the stored charge (window) strictly increasing.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(sweep: &SaturationSweep) -> core::result::Result<(), String> {
    if sweep.points.len() < 3 {
        return Err("sweep too short".into());
    }
    for pair in sweep.points.windows(2) {
        if !(pair[1].vgs > pair[0].vgs) {
            return Err("grid must ascend".into());
        }
        if !(pair[1].t_sat < pair[0].t_sat) {
            return Err(format!(
                "t_sat must fall with VGS: {} s at {} V vs {} s at {} V",
                pair[0].t_sat, pair[0].vgs, pair[1].t_sat, pair[1].vgs
            ));
        }
        if !(pair[1].window > pair[0].window) {
            return Err("window must grow with VGS".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_sweep_matches_the_conclusion() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        // A short grid keeps the test fast; the bench runs the full one.
        let sweep = generate(&device, &[13.0, 15.0, 17.0]).unwrap();
        check(&sweep).unwrap();
    }

    #[test]
    fn t_sat_spans_decades_over_the_voltage_range() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let sweep = generate(&device, &[13.0, 17.0]).unwrap();
        let ratio = sweep.points[0].t_sat / sweep.points[1].t_sat;
        assert!(ratio > 10.0, "t_sat contrast {ratio}");
    }
}
