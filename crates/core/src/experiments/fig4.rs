//! Figure 4 — tunneling currents at the programming onset.
//!
//! Paper caption: *"Tunneling current in time. Tunneling mechanism is
//! shown in the insert at t=0 Sec."* The figure's message is the *initial
//! asymmetry*: `Jin` (channel → FG through the 5 nm tunnel oxide under a
//! 9 V drop) dwarfs `Jout` (FG → control gate through the thicker control
//! oxide under only 6 V), because of "the lower potential difference
//! (15V-9V=6V) and thicker insulating oxide layer" (§III).

use gnr_units::Voltage;

use crate::device::FloatingGateTransistor;
use crate::transient::{ProgramPulseSpec, TransientSample, TransientSimulator};
use crate::{presets, Result};

/// The Figure 4 data: the early-time window of the programming transient
/// plus the onset asymmetry.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig4Data {
    /// Programming gate voltage.
    pub vgs: f64,
    /// Early-time samples (up to 10 % of `t_sat`).
    pub samples: Vec<TransientSample>,
    /// `Jin(0)` (A/m²).
    pub j_in_onset: f64,
    /// `Jout(0)` (A/m²).
    pub j_out_onset: f64,
    /// Onset drop across the tunnel oxide (V) — the paper's 9 V.
    pub tunnel_drop: f64,
    /// Onset drop across the control oxide (V) — the paper's 6 V.
    pub control_drop: f64,
}

impl Fig4Data {
    /// `Jin(0)/Jout(0)` — the asymmetry the figure illustrates.
    #[must_use]
    pub fn onset_ratio(&self) -> f64 {
        self.j_in_onset / self.j_out_onset.max(1e-300)
    }
}

/// Generates Figure 4 at the paper's programming bias.
///
/// # Errors
///
/// Propagates transient-simulation failures.
pub fn generate(device: &FloatingGateTransistor) -> Result<Fig4Data> {
    generate_at(device, presets::program_vgs())
}

/// Generates Figure 4 at an arbitrary programming bias.
///
/// # Errors
///
/// Propagates transient-simulation failures.
pub fn generate_at(device: &FloatingGateTransistor, vgs: Voltage) -> Result<Fig4Data> {
    let result = TransientSimulator::new(device).run(&ProgramPulseSpec::program(vgs))?;
    let t_sat = result.saturation_time().map_or_else(
        || result.samples().last().expect("non-empty").t,
        |t| t.as_seconds(),
    );
    let window = 0.1 * t_sat;
    let samples: Vec<TransientSample> = result
        .samples()
        .iter()
        .copied()
        .take_while(|s| s.t <= window)
        .collect();
    let first = result.samples().first().expect("non-empty");
    let vfg0 = first.vfg;
    Ok(Fig4Data {
        vgs: vgs.as_volts(),
        j_in_onset: first.j_in,
        j_out_onset: first.j_out,
        tunnel_drop: vfg0,
        control_drop: vgs.as_volts() - vfg0,
        samples,
    })
}

/// Checks the Figure 4 shape: `Jin(0) ≫ Jout(0)` with the paper's 9 V /
/// 6 V drop split at GCR = 0.6.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(data: &Fig4Data) -> core::result::Result<(), String> {
    if data.onset_ratio() < 1e3 {
        return Err(format!(
            "Jin(0)/Jout(0) = {:e}; the paper requires Jin >> Jout",
            data.onset_ratio()
        ));
    }
    if (data.tunnel_drop - 0.6 * data.vgs).abs() > 1e-6 {
        return Err(format!(
            "tunnel drop {} V must equal GCR·VGS = {} V",
            data.tunnel_drop,
            0.6 * data.vgs
        ));
    }
    if (data.tunnel_drop + data.control_drop - data.vgs).abs() > 1e-9 {
        return Err("oxide drops must sum to VGS".into());
    }
    if data.samples.is_empty() {
        return Err("empty onset window".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_paper() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let data = generate(&d).unwrap();
        check(&data).unwrap();
    }

    #[test]
    fn onset_drops_are_9v_and_6v() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let data = generate(&d).unwrap();
        assert!((data.tunnel_drop - 9.0).abs() < 1e-6);
        assert!((data.control_drop - 6.0).abs() < 1e-6);
    }

    #[test]
    fn onset_window_precedes_saturation() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let data = generate(&d).unwrap();
        // Within the 10 % window Jin still dominates.
        let last = data.samples.last().unwrap();
        assert!(last.j_in > last.j_out);
    }
}
