//! Extension experiment: the FN plot of the device — §IV's "A and B can
//! be derived from FN plot (JFN/E² vs. 1/E)" (paper ref. [9], Chiou et
//! al. 2001) applied to our own simulated device.
//!
//! A straight FN plot with the right slope is the defining signature that
//! the simulated conduction *is* Fowler–Nordheim; this experiment is the
//! reproduction's self-consistency certificate.

use gnr_tunneling::fn_plot::{barrier_from_b, extract_params, generate_plot, FnPlotPoint};
use gnr_units::ElectricField;

use crate::device::FloatingGateTransistor;
use crate::Result;

/// The FN-plot experiment output.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FnPlotFigure {
    /// The plot points `(1/E, ln(J/E²))`.
    pub points: Vec<FnPlotPoint>,
    /// Extracted pre-exponential `A` (A/V²).
    pub extracted_a: f64,
    /// Extracted slope coefficient `B` (V/m).
    pub extracted_b: f64,
    /// The device's true `A` (for comparison).
    pub true_a: f64,
    /// The device's true `B`.
    pub true_b: f64,
    /// Barrier height recovered from `B` and the known mass (eV).
    pub recovered_barrier_ev: f64,
    /// The device's true barrier (eV).
    pub true_barrier_ev: f64,
    /// Goodness of fit.
    pub r_squared: f64,
}

/// Generates the FN plot over the Figure 6 field range of the device.
///
/// # Errors
///
/// Propagates regression failures (degenerate grids).
pub fn generate(device: &FloatingGateTransistor) -> Result<FnPlotFigure> {
    let model = device.channel_emission_model();
    // Fields spanning the Figure 6 VGS range through eq. (3)+(5).
    let xto = device.geometry().tunnel_oxide_thickness().as_meters();
    let gcr = device.capacitances().gcr();
    let fields: Vec<ElectricField> = crate::presets::vgs_grid(crate::presets::FIG6_VGS_RANGE)
        .iter()
        .map(|&vgs| ElectricField::from_volts_per_meter(gcr * vgs / xto))
        .collect();
    let points = generate_plot(model, &fields);
    let ex = extract_params(&points).map_err(crate::DeviceError::from)?;
    let c = model.coefficients();
    Ok(FnPlotFigure {
        points,
        extracted_a: ex.a,
        extracted_b: ex.b,
        true_a: c.a,
        true_b: c.b,
        recovered_barrier_ev: barrier_from_b(ex.b, model.effective_mass()).as_ev(),
        true_barrier_ev: model.barrier().as_ev(),
        r_squared: ex.fit.r_squared,
    })
}

/// Checks the self-consistency: straight line, parameters recovered.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(fig: &FnPlotFigure) -> core::result::Result<(), String> {
    if fig.points.len() < 10 {
        return Err("too few FN-plot points".into());
    }
    if fig.r_squared < 0.9999 {
        return Err(format!("FN plot is not straight: R² = {}", fig.r_squared));
    }
    let b_err = (fig.extracted_b - fig.true_b).abs() / fig.true_b;
    if b_err > 1e-6 {
        return Err(format!("B extraction error {b_err:e}"));
    }
    let a_err = (fig.extracted_a - fig.true_a).abs() / fig.true_a;
    if a_err > 1e-3 {
        return Err(format!("A extraction error {a_err:e}"));
    }
    let phi_err = (fig.recovered_barrier_ev - fig.true_barrier_ev).abs();
    if phi_err > 0.01 {
        return Err(format!("barrier recovery off by {phi_err} eV"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_plot_is_straight_and_recovers_parameters() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let fig = generate(&device).unwrap();
        check(&fig).unwrap();
    }

    #[test]
    fn works_for_the_silicon_baseline_too() {
        let device = FloatingGateTransistor::silicon_conventional();
        let fig = generate(&device).unwrap();
        check(&fig).unwrap();
        // Si barrier ~3.15 eV < graphene ~3.64 eV.
        assert!(fig.recovered_barrier_ev < 3.3);
    }

    #[test]
    fn plot_points_descend_with_inverse_field() {
        // ln(J/E²) = ln A − B/E: strictly decreasing in 1/E.
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let mut fig = generate(&device).unwrap();
        fig.points
            .sort_by(|a, b| a.inverse_field.total_cmp(&b.inverse_field));
        for pair in fig.points.windows(2) {
            assert!(pair[1].ln_j_over_e2 < pair[0].ln_j_over_e2);
        }
    }
}
