//! Figure 6 — [Program] `JFN` vs `VGS` for four GCR values.
//!
//! Paper caption: *"Fowler Nordheim (FN) tunneling current density (JFN)
//! versus Control gate voltage (VGS) for four different GCR. VGS = 8-17V."*
//! Generated "from equations (3) and (7)" with `XTO = 5 nm`.
//!
//! Expected shape (§IV.a): "JFN during programming increases with the
//! increase of both the control gate voltage and GCR".

use crate::experiments::sweep_util::{device_with_gcr, j_vs_vgs, series};
use crate::experiments::{monotone_increasing, series_ordered_at, FigureData};
use crate::presets;
use crate::Result;

/// Generates the Figure 6 data.
///
/// # Errors
///
/// Propagates device-construction errors (none for the preset grids).
pub fn generate() -> Result<FigureData> {
    let grid = presets::vgs_grid(presets::FIG6_VGS_RANGE);
    let mut fig = FigureData {
        id: "fig6".into(),
        title: "[Program] FN current density vs control gate voltage, four GCR".into(),
        x_label: "VGS (V)".into(),
        y_label: "|JFN| (A/m^2)".into(),
        series: Vec::with_capacity(presets::GCR_SWEEP.len()),
    };
    for gcr in presets::GCR_SWEEP {
        let device = device_with_gcr(gcr)?;
        let y = j_vs_vgs(&device, &grid);
        fig.series
            .push(series(format!("GCR={:.0}%", gcr * 100.0), &grid, y));
    }
    Ok(fig)
}

/// Checks the paper-reported shape.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(fig: &FigureData) -> core::result::Result<(), String> {
    if fig.series.len() != presets::GCR_SWEEP.len() {
        return Err(format!("expected {} GCR curves", presets::GCR_SWEEP.len()));
    }
    for s in &fig.series {
        if !monotone_increasing(&s.y) {
            return Err(format!("series {} must increase with VGS", s.label));
        }
    }
    // Higher GCR → higher JFN at every shared VGS.
    let n = fig.series[0].x.len();
    for i in [n / 2, n - 1] {
        if !series_ordered_at(fig, i) {
            return Err(format!("curves must be ordered by GCR at grid index {i}"));
        }
    }
    // Super-exponential growth: decades between 8 V and 17 V.
    let s = &fig.series[1]; // GCR = 60 %, the paper's nominal
    let growth = s.y.last().unwrap() / s.y.first().unwrap().max(1e-300);
    if growth < 1e3 {
        return Err(format!(
            "expected decades of growth over the sweep, got {growth:e}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_matches_paper() {
        let fig = generate().unwrap();
        check(&fig).unwrap();
    }

    #[test]
    fn nominal_curve_is_gcr_60() {
        let fig = generate().unwrap();
        assert_eq!(fig.series[1].label, "GCR=60%");
    }

    #[test]
    fn csv_export_works() {
        let fig = generate().unwrap();
        let csv = fig.to_csv();
        assert!(csv.lines().count() == presets::SWEEP_POINTS + 1);
        assert!(csv.starts_with("x,GCR=50%"));
    }
}
