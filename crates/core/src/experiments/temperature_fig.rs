//! Extension experiment: temperature dependence of the programming
//! current (Lenzlinger–Snow correction), 250–400 K.
//!
//! The paper's eq. (4) is a zero-temperature law. This experiment
//! quantifies what that simplification costs across the Figure 6 sweep —
//! the kind of "more accurate models for JFN" the conclusion defers to
//! future work.

use gnr_units::{Charge, Temperature, Voltage};

use crate::device::FloatingGateTransistor;
use crate::experiments::{FigureData, SweepSeries};
use crate::presets;
use crate::Result;

/// Temperatures of the study (K).
pub const TEMPERATURES_K: [f64; 4] = [250.0, 300.0, 350.0, 400.0];

/// Generates `|JFN|(VGS)` curves at each temperature for the device.
///
/// # Errors
///
/// Never fails for the preset grids; the `Result` mirrors the other
/// generators.
pub fn generate(device: &FloatingGateTransistor) -> Result<FigureData> {
    let grid = presets::vgs_grid(presets::FIG6_VGS_RANGE);
    let mut fig = FigureData {
        id: "temperature".into(),
        title: "[Extension] FN current density vs VGS, 250-400 K".into(),
        x_label: "VGS (V)".into(),
        y_label: "|JFN| (A/m^2)".into(),
        series: Vec::with_capacity(TEMPERATURES_K.len()),
    };
    for t_k in TEMPERATURES_K {
        let t = Temperature::from_kelvin(t_k);
        let y: Vec<f64> = grid
            .iter()
            .map(|&vgs| {
                let vfg = device.floating_gate_voltage(Voltage::from_volts(vgs), Charge::ZERO);
                device
                    .tunnel_flow_at(vfg, Voltage::ZERO, t)
                    .abs()
                    .as_amps_per_square_meter()
            })
            .collect();
        fig.series.push(SweepSeries {
            label: format!("T={t_k:.0}K"),
            x: grid.clone(),
            y,
        });
    }
    Ok(fig)
}

/// Checks the expected shape: hotter curves sit above colder ones, and
/// the room-temperature correction stays modest (< 50 % over the 0 K
/// law), justifying the paper's temperature-free analysis.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(
    fig: &FigureData,
    device: &FloatingGateTransistor,
) -> core::result::Result<(), String> {
    if fig.series.len() != TEMPERATURES_K.len() {
        return Err("wrong number of temperature curves".into());
    }
    let n = fig.series[0].x.len();
    for i in [0, n / 2, n - 1] {
        if !crate::experiments::series_ordered_at(fig, i) {
            return Err(format!("temperature ordering violated at grid index {i}"));
        }
    }
    // Room-temperature curve vs the 0 K analytic law at the nominal point.
    let vgs = Voltage::from_volts(15.0);
    let vfg = device.floating_gate_voltage(vgs, Charge::ZERO);
    let j0 = device
        .tunnel_flow(vfg, Voltage::ZERO)
        .abs()
        .as_amps_per_square_meter();
    let idx_300 = 1; // TEMPERATURES_K[1] = 300
    let series = &fig.series[idx_300];
    // Locate 15 V on the grid.
    let i15 = series
        .x
        .iter()
        .position(|&x| (x - 15.0).abs() < 0.11)
        .ok_or("15 V not on the grid")?;
    let correction = series.y[i15] / j0;
    if !(1.0..1.5).contains(&correction) {
        return Err(format!("room-T correction {correction} outside (1, 1.5)"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_study_shape() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let fig = generate(&device).unwrap();
        check(&fig, &device).unwrap();
    }

    #[test]
    fn correction_grows_with_temperature_everywhere() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let fig = generate(&device).unwrap();
        let n = fig.series[0].x.len();
        for i in 0..n {
            for pair in fig.series.windows(2) {
                assert!(pair[1].y[i] > pair[0].y[i], "at grid {i}");
            }
        }
    }
}
