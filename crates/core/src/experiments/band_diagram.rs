//! Figure 2 — the Fowler–Nordheim band diagram of the programmed stack.
//!
//! Electron potential energy (eV, relative to the channel Fermi level)
//! across channel → tunnel oxide → CNT floating gate → control oxide →
//! control gate at a programming bias. The tunnel oxide shows the
//! triangular barrier of Figure 2; "at high electric field band-bending
//! takes place that results in apparent thinning of the barrier" (§II).

use gnr_units::{Charge, Voltage};

use crate::device::FloatingGateTransistor;

/// One region of the band diagram.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Region {
    /// Region name (`"channel"`, `"tunnel-oxide"`, …).
    pub name: String,
    /// `(position nm, conduction-band energy eV)` samples.
    pub points: Vec<(f64, f64)>,
}

/// The full band diagram.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BandDiagramData {
    /// Bias at which the diagram was drawn.
    pub vgs: f64,
    /// Floating-gate potential at that bias.
    pub vfg: f64,
    /// The stack regions in order.
    pub regions: Vec<Region>,
}

/// Samples per oxide region.
const OXIDE_SAMPLES: usize = 40;
/// Electrode drawing width (nm) for the flat regions.
const ELECTRODE_WIDTH_NM: f64 = 2.0;

/// Generates the band diagram at a bias point.
#[must_use]
pub fn generate(device: &FloatingGateTransistor, vgs: Voltage, qfg: Charge) -> BandDiagramData {
    let vfg = device.floating_gate_voltage(vgs, qfg);
    let xto = device.geometry().tunnel_oxide_thickness().as_nanometers();
    let xco = device.geometry().control_oxide_thickness().as_nanometers();
    let phi_ch = device.channel_emission_model().barrier().as_ev();
    // FG → control-oxide barrier (CNT work function over the control
    // oxide's affinity).
    let phi_fg_cox = device.fg_emission_model().barrier().as_ev()
        + device.tunnel_oxide().electron_affinity().as_ev()
        - device.control_oxide().electron_affinity().as_ev();
    let v_fg = vfg.as_volts();
    let v_gs = vgs.as_volts();
    let fg_width = 1.4; // nm, a (10,10) CNT diameter

    let mut regions = Vec::with_capacity(5);

    // Channel electrode: Fermi level at 0 eV.
    regions.push(Region {
        name: "channel".into(),
        points: vec![(-ELECTRODE_WIDTH_NM, 0.0), (0.0, 0.0)],
    });

    // Tunnel oxide: triangular barrier from ΦB down by the oxide drop.
    let mut tox = Vec::with_capacity(OXIDE_SAMPLES + 1);
    for i in 0..=OXIDE_SAMPLES {
        let s = i as f64 / OXIDE_SAMPLES as f64;
        tox.push((s * xto, phi_ch - v_fg * s));
    }
    regions.push(Region {
        name: "tunnel-oxide".into(),
        points: tox,
    });

    // Floating gate: Fermi at −VFG.
    regions.push(Region {
        name: "floating-gate".into(),
        points: vec![(xto, -v_fg), (xto + fg_width, -v_fg)],
    });

    // Control oxide: barrier Φ_fg(cox) above the FG Fermi, tilted by the
    // control-oxide drop (VGS − VFG).
    let mut cox = Vec::with_capacity(OXIDE_SAMPLES + 1);
    for i in 0..=OXIDE_SAMPLES {
        let s = i as f64 / OXIDE_SAMPLES as f64;
        cox.push((
            xto + fg_width + s * xco,
            -v_fg + phi_fg_cox - (v_gs - v_fg) * s,
        ));
    }
    regions.push(Region {
        name: "control-oxide".into(),
        points: cox,
    });

    // Control gate: Fermi at −VGS.
    regions.push(Region {
        name: "control-gate".into(),
        points: vec![
            (xto + fg_width + xco, -v_gs),
            (xto + fg_width + xco + ELECTRODE_WIDTH_NM, -v_gs),
        ],
    });

    BandDiagramData {
        vgs: v_gs,
        vfg: v_fg,
        regions,
    }
}

/// Checks the Figure 2 shape: a triangular tunnel barrier starting at the
/// channel barrier height and band-bending that pulls the oxide band
/// below the channel Fermi level at the FG side when `VFG > ΦB/q`.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(data: &BandDiagramData) -> core::result::Result<(), String> {
    let tox = data
        .regions
        .iter()
        .find(|r| r.name == "tunnel-oxide")
        .ok_or("missing tunnel-oxide region")?;
    let energies: Vec<f64> = tox.points.iter().map(|p| p.1).collect();
    if !crate::experiments::monotone_decreasing(&energies) {
        return Err("tunnel-oxide band must decrease monotonically (triangular)".into());
    }
    let peak = energies.first().copied().unwrap_or(0.0);
    if !(2.0..=5.0).contains(&peak) {
        return Err(format!(
            "barrier peak {peak} eV outside the plausible 2–5 eV range"
        ));
    }
    if data.vfg > peak && energies.last().copied().unwrap_or(0.0) > 0.0 {
        return Err("at FN bias the oxide band must dip below the emitter Fermi level".into());
    }
    let gate = data
        .regions
        .iter()
        .find(|r| r.name == "control-gate")
        .ok_or("missing control-gate region")?;
    if (gate.points[0].1 - (-data.vgs)).abs() > 1e-9 {
        return Err("control-gate Fermi level must sit at −VGS".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn program_bias_band_diagram_passes_checks() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let data = generate(&d, presets::program_vgs(), Charge::ZERO);
        check(&data).unwrap();
    }

    #[test]
    fn regions_are_contiguous_left_to_right() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let data = generate(&d, presets::program_vgs(), Charge::ZERO);
        let mut last_x = f64::NEG_INFINITY;
        for r in &data.regions {
            for p in &r.points {
                assert!(p.0 >= last_x - 1e-9, "x must not go backwards");
                last_x = p.0;
            }
        }
    }

    #[test]
    fn barrier_thins_with_higher_bias() {
        // "Apparent thinning": the distance from the interface to where the
        // band crosses the Fermi level shrinks as VGS rises.
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let width_at = |vgs: f64| {
            let data = generate(&d, Voltage::from_volts(vgs), Charge::ZERO);
            let tox = &data.regions[1];
            tox.points
                .iter()
                .find(|p| p.1 <= 0.0)
                .map_or(f64::INFINITY, |p| p.0)
        };
        let w12 = width_at(12.0);
        let w17 = width_at(17.0);
        assert!(w17 < w12, "w(17 V) = {w17} !< w(12 V) = {w12}");
    }

    #[test]
    fn stored_charge_raises_oxide_band_at_fg_side() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let neutral = generate(&d, presets::program_vgs(), Charge::ZERO);
        let ct = d.capacitances().total().as_farads();
        let charged = generate(&d, presets::program_vgs(), Charge::from_coulombs(-2.0 * ct));
        // VFG is 2 V lower with the stored electrons.
        assert!((neutral.vfg - charged.vfg - 2.0).abs() < 1e-9);
    }
}
