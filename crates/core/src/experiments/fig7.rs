//! Figure 7 — [Program] `JFN` vs `VGS` for five tunnel-oxide thicknesses.
//!
//! Paper caption: *"FN tunneling current density (JFN) versus Control gate
//! voltage (VGS) for five different tunnel oxide thickness (XTO).
//! GCR=60%, VGS = 10-17V."*
//!
//! Expected shape (§IV.a): for a given `XTO`, `JFN` increases with `VGS`;
//! "JFN increases significantly when XTO is less than 7nm".

use crate::experiments::sweep_util::{device_with_xto, j_vs_vgs, series};
use crate::experiments::{monotone_increasing, FigureData};
use crate::presets;
use crate::Result;

/// Generates the Figure 7 data (thickest oxide first, so curves ascend).
///
/// # Errors
///
/// Propagates device-construction errors (none for the preset grids).
pub fn generate() -> Result<FigureData> {
    let grid = presets::vgs_grid(presets::FIG7_VGS_RANGE);
    let mut fig = FigureData {
        id: "fig7".into(),
        title: "[Program] FN current density vs control gate voltage, five XTO".into(),
        x_label: "VGS (V)".into(),
        y_label: "|JFN| (A/m^2)".into(),
        series: Vec::with_capacity(presets::XTO_SWEEP_NM.len()),
    };
    let mut thicknesses = presets::XTO_SWEEP_NM;
    thicknesses.reverse(); // 8 nm first → series ordered thin-last (highest J last)
    for xto in thicknesses {
        let device = device_with_xto(xto)?;
        let y = j_vs_vgs(&device, &grid);
        fig.series.push(series(format!("XTO={xto:.0}nm"), &grid, y));
    }
    Ok(fig)
}

/// Checks the paper-reported shape.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(fig: &FigureData) -> core::result::Result<(), String> {
    if fig.series.len() != presets::XTO_SWEEP_NM.len() {
        return Err(format!(
            "expected {} XTO curves",
            presets::XTO_SWEEP_NM.len()
        ));
    }
    for s in &fig.series {
        if !monotone_increasing(&s.y) {
            return Err(format!("series {} must increase with VGS", s.label));
        }
    }
    let n = fig.series[0].x.len();
    // Thinner oxide → higher current at every thickness step.
    for pair in fig.series.windows(2) {
        if pair[1].y[n - 1] <= pair[0].y[n - 1] {
            return Err(format!(
                "{} must exceed {} at the top of the sweep",
                pair[1].label, pair[0].label
            ));
        }
    }
    // "Significant increase below 7 nm": the 4 nm curve exceeds the 8 nm
    // curve by far more than the 6→8 nm step.
    let j8 = fig.series[0].y[n - 1];
    let j6 = fig.series[2].y[n - 1];
    let j4 = fig.series[4].y[n - 1];
    if j4 / j6 <= j6 / j8 {
        return Err("thin-oxide acceleration must grow as XTO shrinks".into());
    }
    if j4 / j8 < 1e3 {
        return Err(format!("4 nm vs 8 nm contrast too small: {:e}", j4 / j8));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_matches_paper() {
        let fig = generate().unwrap();
        check(&fig).unwrap();
    }

    #[test]
    fn labels_run_thick_to_thin() {
        let fig = generate().unwrap();
        assert_eq!(fig.series.first().unwrap().label, "XTO=8nm");
        assert_eq!(fig.series.last().unwrap().label, "XTO=4nm");
    }
}
