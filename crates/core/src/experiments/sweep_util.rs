//! Shared machinery for the Figure 6–9 J–V sweeps.
//!
//! All four figures evaluate eq. (3) + eq. (7) with `QFG = 0`:
//! `VFG = GCR·VGS`, `E = VFG/XTO`, `J = A·E²·exp(−B/E)` — the device's
//! directional [`tunnel_flow`](crate::device::FloatingGateTransistor::tunnel_flow)
//! picks the emitter (channel for programming, CNT floating gate for
//! erase) automatically from the field sign.

use gnr_units::{Charge, Length, Voltage};

use crate::device::{FgtBuilder, FloatingGateTransistor};
use crate::engine::ChargeBalanceEngine;
use crate::experiments::SweepSeries;
use crate::Result;

/// Evaluates `|JFN|(VGS)` (A/m²) for one device over a VGS grid with
/// `QFG = 0`, exactly as the paper's Figures 6–9 are generated "from
/// equations (3) and (7)".
///
/// Since the engine extraction this goes through the cache-backed
/// `J(E)` tables: the four sweep figures share one table per tunneling
/// path across all their GCR/XTO variants (the FN law depends only on
/// the barrier, not the geometry).
#[must_use]
pub fn j_vs_vgs(device: &FloatingGateTransistor, vgs_grid: &[f64]) -> Vec<f64> {
    let engine = ChargeBalanceEngine::new(device);
    vgs_grid
        .iter()
        .map(|&v| {
            let vfg = device.floating_gate_voltage(Voltage::from_volts(v), Charge::ZERO);
            engine
                .tunnel_flow(vfg, Voltage::ZERO)
                .abs()
                .as_amps_per_square_meter()
        })
        .collect()
}

/// Builds the paper device with an overridden GCR.
///
/// # Errors
///
/// Propagates builder validation (GCR out of range).
pub fn device_with_gcr(gcr: f64) -> Result<FloatingGateTransistor> {
    FgtBuilder::default()
        .name(format!("paper-gcr-{gcr}"))
        .gcr(gcr)
        .build()
}

/// Builds the paper device with an overridden tunnel-oxide thickness.
///
/// # Errors
///
/// Propagates geometry validation (XTO must stay below XCO).
pub fn device_with_xto(xto_nm: f64) -> Result<FloatingGateTransistor> {
    let geometry = crate::geometry::FgtGeometry::paper_nominal()
        .with_tunnel_oxide(Length::from_nanometers(xto_nm))?;
    FgtBuilder::default()
        .name(format!("paper-xto-{xto_nm}nm"))
        .geometry(geometry)
        .build()
}

/// Assembles one labelled series.
#[must_use]
pub fn series(label: impl Into<String>, x: &[f64], y: Vec<f64>) -> SweepSeries {
    SweepSeries {
        label: label.into(),
        x: x.to_vec(),
        y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn j_vs_vgs_positive_and_finite_at_program_bias() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let grid = presets::vgs_grid(presets::FIG6_VGS_RANGE);
        let j = j_vs_vgs(&d, &grid);
        assert_eq!(j.len(), grid.len());
        assert!(j.iter().all(|v| v.is_finite() && *v >= 0.0));
        // At 17 V the current must be clearly measurable.
        assert!(*j.last().unwrap() > 1.0);
    }

    #[test]
    fn erase_grid_also_produces_current() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let grid = presets::vgs_grid(presets::FIG8_VGS_RANGE);
        let j = j_vs_vgs(&d, &grid);
        assert!(j.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(
            j[0] > *j.last().unwrap(),
            "more negative VGS → more current"
        );
    }

    #[test]
    fn builders_reject_invalid_overrides() {
        assert!(device_with_gcr(1.2).is_err());
        assert!(device_with_xto(12.0).is_err()); // equals XCO
    }
}
