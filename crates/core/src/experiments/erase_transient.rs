//! Extension experiment: the erase-side transient.
//!
//! §IV.b: "We have performed the same set of analysis (as in Figure 6 and
//! Figure 7) for the erasing operation" — the paper shows the erase J–V
//! sweeps (Figures 8–9) but not the erase *transient*. This experiment
//! completes the symmetry: starting from a programmed cell at −15 V, the
//! dominant flow is floating gate → channel; it decays as electrons
//! deplete while the control-gate back-injection grows, and the two
//! balance at the erase saturation point (the paper's "depletion of
//! electrons", §I).

use gnr_units::{Charge, Voltage};

use crate::device::FloatingGateTransistor;
use crate::transient::{ProgramPulseSpec, TransientSample, TransientSimulator};
use crate::{presets, Result};

/// The erase-transient data.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EraseTransientData {
    /// Erase gate voltage (negative).
    pub vgs: f64,
    /// Stored charge at the start (the programmed state, C).
    pub initial_charge: f64,
    /// Samples through 1.5·t_sat.
    pub samples: Vec<TransientSample>,
    /// Erase saturation time (s).
    pub t_sat: Option<f64>,
    /// Stored charge at erase saturation (C) — positive: depletion.
    pub charge_at_sat: Option<f64>,
}

/// Generates the erase transient: program at +15 V first, then erase at
/// the paper's −15 V.
///
/// # Errors
///
/// Propagates transient failures.
pub fn generate(device: &FloatingGateTransistor) -> Result<EraseTransientData> {
    let sim = TransientSimulator::new(device);
    let programmed = sim
        .run(&ProgramPulseSpec::program(presets::program_vgs()))?
        .final_charge();
    generate_from(device, presets::erase_vgs(), programmed)
}

/// Generates the erase transient from an explicit initial charge.
///
/// # Errors
///
/// Propagates transient failures.
pub fn generate_from(
    device: &FloatingGateTransistor,
    vgs: Voltage,
    initial: Charge,
) -> Result<EraseTransientData> {
    let result = TransientSimulator::new(device).run(&ProgramPulseSpec::erase(vgs, initial))?;
    Ok(EraseTransientData {
        vgs: vgs.as_volts(),
        initial_charge: initial.as_coulombs(),
        t_sat: result.saturation_time().map(|t| t.as_seconds()),
        charge_at_sat: result.charge_at_saturation().map(|q| q.as_coulombs()),
        samples: result.samples().to_vec(),
    })
}

/// Checks the erase-side mirror of the Figure 5 shape: the tunnel-oxide
/// flow (now FG → channel) decays monotonically, the stored charge rises
/// monotonically from negative through zero (electron depletion), and the
/// flows balance at `t_sat`.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(data: &EraseTransientData) -> core::result::Result<(), String> {
    if data.vgs >= 0.0 {
        return Err("erase requires a negative gate voltage".into());
    }
    if data.samples.len() < 8 {
        return Err("trace too short".into());
    }
    let j_tunnel: Vec<f64> = data.samples.iter().map(|s| s.j_in).collect();
    if !crate::experiments::monotone_decreasing(&j_tunnel) {
        return Err("the FG->channel flow must decay during erase".into());
    }
    let charge: Vec<f64> = data.samples.iter().map(|s| s.charge).collect();
    if !crate::experiments::monotone_increasing(&charge) {
        return Err("stored charge must rise (deplete) monotonically".into());
    }
    let Some(q_sat) = data.charge_at_sat else {
        return Err("erase saturation not reached".into());
    };
    if q_sat <= 0.0 {
        return Err(format!(
            "erase must overshoot into depletion (logic '1'), got {q_sat:e} C"
        ));
    }
    if data.initial_charge >= 0.0 {
        return Err("the initial state must be programmed (negative charge)".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erase_transient_mirrors_figure5() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let data = generate(&device).unwrap();
        check(&data).unwrap();
    }

    #[test]
    fn erase_is_faster_than_programming_at_matched_bias() {
        // Starting from the programmed state the erase field is boosted
        // by the stored electrons (|VFG| = |GCR·VGS| + |Q|/CT), so the
        // initial erase flow exceeds the initial program flow.
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let prog = crate::experiments::fig5::generate(&device).unwrap();
        let erase = generate(&device).unwrap();
        let j_prog0 = prog.samples[0].j_in;
        let j_erase0 = erase.samples[0].j_in;
        assert!(
            j_erase0 > j_prog0,
            "erase onset {j_erase0:e} !> program onset {j_prog0:e}"
        );
    }

    #[test]
    fn deeper_erase_bias_depletes_more() {
        let device = FloatingGateTransistor::mlgnr_cnt_paper();
        let programmed = TransientSimulator::new(&device)
            .run(&ProgramPulseSpec::program(presets::program_vgs()))
            .unwrap()
            .final_charge();
        let shallow = generate_from(&device, Voltage::from_volts(-14.0), programmed).unwrap();
        let deep = generate_from(&device, Voltage::from_volts(-16.0), programmed).unwrap();
        assert!(deep.charge_at_sat.unwrap() > shallow.charge_at_sat.unwrap());
    }
}
