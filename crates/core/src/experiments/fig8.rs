//! Figure 8 — [Erase] `JFN` vs `VGS` for four GCR values.
//!
//! Paper caption: *"FN tunneling current density (JFN) versus Control gate
//! voltage (VGS) for four different GCR (%). XTO=5, VGS <0V."*
//!
//! Expected shape (§IV.b): "JFN increases as the control gate voltage
//! (VGS) becomes more negative for a given GCR. Higher GCR leads to
//! higher JFN" — during erase the emitter is the CNT floating gate.

use crate::experiments::sweep_util::{device_with_gcr, j_vs_vgs, series};
use crate::experiments::{monotone_decreasing, series_ordered_at, FigureData};
use crate::presets;
use crate::Result;

/// Generates the Figure 8 data (x runs from −17 V up to −8 V).
///
/// # Errors
///
/// Propagates device-construction errors (none for the preset grids).
pub fn generate() -> Result<FigureData> {
    let grid = presets::vgs_grid(presets::FIG8_VGS_RANGE);
    let mut fig = FigureData {
        id: "fig8".into(),
        title: "[Erase] FN current density vs control gate voltage, four GCR".into(),
        x_label: "VGS (V)".into(),
        y_label: "|JFN| (A/m^2)".into(),
        series: Vec::with_capacity(presets::GCR_SWEEP.len()),
    };
    for gcr in presets::GCR_SWEEP {
        let device = device_with_gcr(gcr)?;
        let y = j_vs_vgs(&device, &grid);
        fig.series
            .push(series(format!("GCR={:.0}%", gcr * 100.0), &grid, y));
    }
    Ok(fig)
}

/// Checks the paper-reported shape.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn check(fig: &FigureData) -> core::result::Result<(), String> {
    if fig.series.len() != presets::GCR_SWEEP.len() {
        return Err(format!("expected {} GCR curves", presets::GCR_SWEEP.len()));
    }
    for s in &fig.series {
        // x ascends from −17 to −8: |J| must *fall* along the grid
        // (more negative VGS → more current).
        if !monotone_decreasing(&s.y) {
            return Err(format!("series {} must grow toward negative VGS", s.label));
        }
        if s.x.iter().any(|&v| v >= 0.0) {
            return Err("erase sweep must be entirely negative".into());
        }
    }
    // Higher GCR → higher |JFN| (checked at the most negative point).
    if !series_ordered_at(fig, 0) {
        return Err("curves must be ordered by GCR at VGS = −17 V".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape_matches_paper() {
        let fig = generate().unwrap();
        check(&fig).unwrap();
    }

    #[test]
    fn erase_uses_fg_emitter_barrier() {
        // The erase current at |VGS| = 15 V is *lower* than the program
        // current at +15 V: the CNT floating gate presents a higher
        // barrier than the MLGNR channel.
        let prog = crate::experiments::fig6::generate().unwrap();
        let erase = generate().unwrap();
        let n_p = prog.series[1].x.len();
        // fig6 grid 8..17 → 15 V is at fraction (15-8)/9.
        let idx_p = ((15.0 - 8.0) / 9.0 * (n_p - 1) as f64).round() as usize;
        let n_e = erase.series[1].x.len();
        // fig8 grid −17..−8 → −15 V at fraction (−15+17)/9.
        let idx_e = ((17.0 - 15.0) / 9.0 * (n_e - 1) as f64).round() as usize;
        let j_p = prog.series[1].y[idx_p];
        let j_e = erase.series[1].y[idx_e];
        assert!(j_e < j_p, "erase J {j_e:e} must be below program J {j_p:e}");
    }
}
