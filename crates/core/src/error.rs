//! Error type for device construction and simulation.

use core::fmt;

/// Errors produced by the device model and its simulators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A constructor argument violated its documented range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A material-layer combination was rejected by `gnr-materials`.
    Material(gnr_materials::MaterialError),
    /// The transient integrator failed.
    Numerics(gnr_numerics::NumericsError),
    /// The requested bias point produces no measurable tunneling within
    /// the simulation horizon (e.g. programming at 1 V).
    NoTunneling {
        /// The control-gate voltage that was applied.
        vgs: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "invalid {name} = {value}: {constraint}")
            }
            Self::Material(e) => write!(f, "material error: {e}"),
            Self::Numerics(e) => write!(f, "numerical error: {e}"),
            Self::NoTunneling { vgs } => {
                write!(f, "no appreciable tunneling at VGS = {vgs} V")
            }
        }
    }
}

impl std::error::Error for DeviceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Material(e) => Some(e),
            Self::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gnr_materials::MaterialError> for DeviceError {
    fn from(e: gnr_materials::MaterialError) -> Self {
        Self::Material(e)
    }
}

impl From<gnr_numerics::NumericsError> for DeviceError {
    fn from(e: gnr_numerics::NumericsError) -> Self {
        Self::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = DeviceError::NoTunneling { vgs: 1.0 };
        assert!(e.to_string().contains("VGS = 1"));
    }

    #[test]
    fn source_chains_to_inner_error() {
        use std::error::Error;
        let inner = gnr_numerics::NumericsError::InvalidInput("x".into());
        let e = DeviceError::Numerics(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
