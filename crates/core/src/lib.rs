//! # gnr-flash
//!
//! The core library of this workspace: a from-scratch simulator of the
//! **multilayer-graphene-nanoribbon / carbon-nanotube floating-gate
//! transistor (MLGNR-CNT FGT)** proposed by Hossain, Hossain & Chowdhury,
//! *"Multilayer Layer Graphene Nanoribbon Flash Memory: Analysis of
//! Programming and Erasing Operation"*, IEEE SOCC 2014.
//!
//! The paper models the cell with four equations — the FN current law
//! (eq. 1/4), the floating-gate capacitance network (eq. 2), the
//! floating-gate potential (eq. 3) and the oxide field (eq. 5) — and
//! evaluates programming/erase behaviour in six figures. This crate
//! implements the device model and each figure as a callable experiment:
//!
//! * [`geometry`] / [`capacitance`] — the cell stack and eq. (2)–(3).
//! * [`device`] — [`device::FloatingGateTransistor`]: materials +
//!   geometry + four directional FN tunneling paths; presets for the
//!   paper's MLGNR-CNT cell and the conventional-silicon baseline.
//! * [`transient`] — the charge-balance ODE behind Figures 4–5, with
//!   `t_sat` detection.
//! * [`threshold`] — threshold-voltage shift, read current, memory window
//!   and logic-state classification.
//! * [`pulse`] — program/erase waveforms, including ISPP ladders.
//! * [`variation`] — Monte-Carlo process variation (XTO, ΦB, GCR).
//! * [`optimize`] — the paper's §V future work: fastest reliable design
//!   point under an oxide-stress budget.
//! * [`experiments`] — `band_diagram` (Fig. 2) and `fig4`…`fig9`,
//!   returning serialisable data series with paper-shape assertions.
//!
//! # Quickstart
//!
//! ```
//! use gnr_flash::device::FloatingGateTransistor;
//! use gnr_flash::transient::{ProgramPulseSpec, TransientSimulator};
//! use gnr_units::Voltage;
//!
//! let device = FloatingGateTransistor::mlgnr_cnt_paper();
//! let sim = TransientSimulator::new(&device);
//! let result = sim
//!     .run(&ProgramPulseSpec::program(Voltage::from_volts(15.0)))
//!     .unwrap();
//! assert!(result.saturation_time().is_some());
//! assert!(result.final_charge().as_coulombs() < 0.0); // electrons stored
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod capacitance;
pub mod device;
pub mod engine;
pub mod experiments;
pub mod geometry;
pub mod optimize;
pub mod presets;
pub mod pulse;
pub mod threshold;
pub mod transient;
pub mod variation;

/// The unified telemetry layer (metrics registry, profiling zones,
/// event journal) — a re-export of the `gnr-telemetry` crate so
/// downstream crates and tests reach it as `gnr_flash::telemetry`. The
/// `counter_add!`/`histogram_record!`/`zone!` macros resolve through
/// `$crate` and work from any crate that depends on `gnr-telemetry`.
pub use gnr_telemetry as telemetry;

mod error;

pub use error::DeviceError;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, DeviceError>;
