//! Monte-Carlo process variation.
//!
//! The paper's conclusion calls for "optimization among these crucial
//! parameters" — which requires knowing how sensitive the cell is to
//! manufacturing spread. This module perturbs the tunnel-oxide thickness,
//! the channel barrier and the GCR with Gaussian variations and reports
//! the resulting distribution of programming current density (log-normal,
//! so statistics are computed in log₁₀ space) and floating-gate voltage.

use gnr_numerics::stats::Summary;
use gnr_units::{Charge, Energy, Length, Voltage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::device::{FgtBuilder, FloatingGateTransistor};
use crate::{DeviceError, Result};

/// Specification of the variation experiment.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VariationSpec {
    /// Number of Monte-Carlo samples.
    pub samples: usize,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Relative 1σ of the tunnel-oxide thickness (e.g. 0.04 = 4 %).
    pub xto_sigma_fraction: f64,
    /// Absolute 1σ of the channel barrier (work-function spread), eV.
    pub barrier_sigma_ev: f64,
    /// Absolute 1σ of the GCR.
    pub gcr_sigma: f64,
}

impl Default for VariationSpec {
    fn default() -> Self {
        Self {
            samples: 500,
            seed: 0x5eed_f1a5,
            xto_sigma_fraction: 0.04,
            barrier_sigma_ev: 0.05,
            gcr_sigma: 0.02,
        }
    }
}

/// Result of the variation experiment.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VariationReport {
    /// Statistics of `log₁₀(J_in [A/m²])` at the programming bias.
    pub log10_j_in: Summary,
    /// Statistics of the floating-gate voltage (V).
    pub vfg: Summary,
    /// Number of valid samples (a sample is discarded if its perturbed
    /// parameters are unphysical, e.g. GCR ≥ 1).
    pub valid_samples: usize,
}

/// Standard-normal sample via Box–Muller (avoids an extra distribution
/// dependency). Public so array-level variation sampling (the
/// `CellPopulation` delta columns) draws from the same distribution.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

/// Runs the Monte-Carlo variation experiment around a template device at
/// the given programming bias.
///
/// # Errors
///
/// [`DeviceError::InvalidParameter`] when the spec requests zero samples
/// or fewer than 10 valid samples survive the physical-validity filter.
pub fn run_variation(
    template: &FloatingGateTransistor,
    vgs: Voltage,
    spec: &VariationSpec,
) -> Result<VariationReport> {
    if spec.samples == 0 {
        return Err(DeviceError::InvalidParameter {
            name: "samples",
            value: 0.0,
            constraint: "must be positive",
        });
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let geometry = *template.geometry();
    let xto_nominal = geometry.tunnel_oxide_thickness().as_nanometers();
    let gcr_nominal = template.capacitances().gcr();
    let barrier_nominal = template.channel_emission_model().barrier().as_ev();
    let mass = template.channel_emission_model().effective_mass();
    let oxide_affinity = template.tunnel_oxide().electron_affinity().as_ev();

    let mut log_j = Vec::with_capacity(spec.samples);
    let mut vfgs = Vec::with_capacity(spec.samples);

    for _ in 0..spec.samples {
        let xto = xto_nominal * (1.0 + spec.xto_sigma_fraction * standard_normal(&mut rng));
        let gcr = gcr_nominal + spec.gcr_sigma * standard_normal(&mut rng);
        let barrier = barrier_nominal + spec.barrier_sigma_ev * standard_normal(&mut rng);
        if xto <= 0.5 || !(0.05..=0.95).contains(&gcr) || barrier <= 0.5 {
            continue;
        }
        let Ok(geom) = geometry.with_tunnel_oxide(Length::from_nanometers(xto)) else {
            continue;
        };
        // Perturb the barrier via the channel work function (barrier =
        // WF − χ_oxide).
        let wf = Energy::from_ev(barrier + oxide_affinity);
        let Ok(dev) = FgtBuilder::default()
            .name("mc-sample")
            .geometry(geom)
            .gcr(gcr)
            .total_capacitance(template.capacitances().total())
            .channel_work_function(wf)
            .build()
        else {
            continue;
        };
        let _ = mass; // the mass rides along unchanged; perturbing ΦB dominates

        let state = dev.tunneling_state(vgs, Voltage::ZERO, Charge::ZERO);
        let j = state.tunnel_flow.abs().as_amps_per_square_meter();
        if j > 0.0 {
            log_j.push(j.log10());
            vfgs.push(state.vfg.as_volts());
        }
    }

    if log_j.len() < 10 {
        return Err(DeviceError::InvalidParameter {
            name: "valid_samples",
            value: log_j.len() as f64,
            constraint: "need at least 10 valid Monte-Carlo samples",
        });
    }
    Ok(VariationReport {
        log10_j_in: Summary::from_samples(&log_j)?,
        vfg: Summary::from_samples(&vfgs)?,
        valid_samples: log_j.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn variation_is_reproducible() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let spec = VariationSpec {
            samples: 100,
            ..VariationSpec::default()
        };
        let a = run_variation(&d, presets::program_vgs(), &spec).unwrap();
        let b = run_variation(&d, presets::program_vgs(), &spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn median_matches_nominal_device() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let spec = VariationSpec {
            samples: 400,
            ..VariationSpec::default()
        };
        let report = run_variation(&d, presets::program_vgs(), &spec).unwrap();
        let nominal = d
            .tunneling_state(presets::program_vgs(), Voltage::ZERO, Charge::ZERO)
            .tunnel_flow
            .as_amps_per_square_meter()
            .log10();
        assert!(
            (report.log10_j_in.median - nominal).abs() < 0.5,
            "median log10 J = {} vs nominal {}",
            report.log10_j_in.median,
            nominal
        );
        assert!((report.vfg.median - 9.0).abs() < 0.5);
    }

    #[test]
    fn wider_xto_spread_widens_current_spread() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let tight = run_variation(
            &d,
            presets::program_vgs(),
            &VariationSpec {
                samples: 300,
                xto_sigma_fraction: 0.01,
                ..VariationSpec::default()
            },
        )
        .unwrap();
        let wide = run_variation(
            &d,
            presets::program_vgs(),
            &VariationSpec {
                samples: 300,
                xto_sigma_fraction: 0.08,
                ..VariationSpec::default()
            },
        )
        .unwrap();
        assert!(wide.log10_j_in.std_dev > tight.log10_j_in.std_dev);
    }

    #[test]
    fn zero_samples_rejected() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let r = run_variation(
            &d,
            presets::program_vgs(),
            &VariationSpec {
                samples: 0,
                ..VariationSpec::default()
            },
        );
        assert!(r.is_err());
    }
}
