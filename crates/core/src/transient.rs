//! Program/erase transient simulation — the engine behind Figures 4 and 5.
//!
//! The stored charge obeys the charge balance
//!
//! ```text
//! dQFG/dt = A·(J_control − J_tunnel)
//! ```
//!
//! with both flows re-evaluated from eq. (3)+(4) at every instant: as
//! electrons accumulate, `VFG` falls, `Jin` (tunnel-oxide injection)
//! decreases and `Jout` (control-oxide loss) grows until they meet at
//! `t_sat` — "the maximum charge that can be accumulated on the floating
//! gate" (§III). The approach is asymptotic; `t_sat` is detected as the
//! time `Jout` first comes within a configurable fraction (default 1 %)
//! of `Jin` — the paper's `Jin = Jout` crossing. Because the two flows
//! span many decades before meeting, the simulator widens its
//! integration window geometrically until the balance event fires.
//!
//! Since the engine extraction, [`TransientSimulator`] is a thin facade
//! over [`crate::engine::ChargeBalanceEngine`]: the integration loop,
//! the cached `J(E)` tables and the batching layer all live in
//! [`crate::engine`], and sequential and batched runs share one code
//! path.

use gnr_numerics::ode::OdeOptions;
use gnr_units::{Charge, Time, Voltage};

use crate::device::FloatingGateTransistor;
use crate::engine::ChargeBalanceEngine;
use crate::pulse::SquarePulse;
use crate::Result;

/// Specification of one transient run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProgramPulseSpec {
    /// Control-gate voltage (negative for erase).
    pub vgs: Voltage,
    /// Source voltage (grounded in the paper).
    pub vs: Voltage,
    /// Stored charge at `t = 0`.
    pub initial_charge: Charge,
    /// Pulse width; `None` integrates adaptively until saturation and
    /// reports the trace up to `1.5·t_sat`.
    pub duration: Option<Time>,
}

impl ProgramPulseSpec {
    /// A programming pulse from the neutral state (`QFG = 0`, §III).
    #[must_use]
    pub fn program(vgs: Voltage) -> Self {
        Self {
            vgs,
            vs: Voltage::ZERO,
            initial_charge: Charge::ZERO,
            duration: None,
        }
    }

    /// An erase pulse applied to a cell holding `initial_charge`.
    #[must_use]
    pub fn erase(vgs: Voltage, initial_charge: Charge) -> Self {
        Self {
            vgs,
            vs: Voltage::ZERO,
            initial_charge,
            duration: None,
        }
    }

    /// Builds a spec from a [`SquarePulse`] and an initial charge.
    #[must_use]
    pub fn from_pulse(pulse: SquarePulse, initial_charge: Charge) -> Self {
        Self {
            vgs: pulse.amplitude,
            vs: Voltage::ZERO,
            initial_charge,
            duration: Some(pulse.width),
        }
    }

    /// Sets an explicit duration.
    #[must_use]
    pub fn with_duration(mut self, duration: Time) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Sets the initial stored charge.
    #[must_use]
    pub fn with_initial_charge(mut self, q: Charge) -> Self {
        self.initial_charge = q;
        self
    }
}

/// One recorded point of a transient trace.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransientSample {
    /// Time since pulse start (s).
    pub t: f64,
    /// Stored charge (C).
    pub charge: f64,
    /// Floating-gate potential (V).
    pub vfg: f64,
    /// Tunnel-oxide current-density magnitude `Jin` (A/m²).
    pub j_in: f64,
    /// Control-oxide current-density magnitude `Jout` (A/m²).
    pub j_out: f64,
}

/// The result of one transient run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransientResult {
    spec: ProgramPulseSpec,
    samples: Vec<TransientSample>,
    t_sat: Option<f64>,
    charge_at_sat: Option<f64>,
    accepted_steps: usize,
    rhs_evaluations: usize,
}

impl TransientResult {
    /// Assembles a result from the engine's integration output.
    pub(crate) fn from_parts(
        spec: ProgramPulseSpec,
        samples: Vec<TransientSample>,
        t_sat: Option<f64>,
        charge_at_sat: Option<f64>,
        accepted_steps: usize,
        rhs_evaluations: usize,
    ) -> Self {
        Self {
            spec,
            samples,
            t_sat,
            charge_at_sat,
            accepted_steps,
            rhs_evaluations,
        }
    }

    /// The spec that produced this trace.
    #[must_use]
    pub fn spec(&self) -> &ProgramPulseSpec {
        &self.spec
    }

    /// The recorded samples, in time order.
    #[must_use]
    pub fn samples(&self) -> &[TransientSample] {
        &self.samples
    }

    /// Saturation time `t_sat`, when the net charging current first fell
    /// below the detection fraction of its initial value.
    #[must_use]
    pub fn saturation_time(&self) -> Option<Time> {
        self.t_sat.map(Time::from_seconds)
    }

    /// Stored charge at `t_sat` — the paper's "maximum charge that can be
    /// accumulated".
    #[must_use]
    pub fn charge_at_saturation(&self) -> Option<Charge> {
        self.charge_at_sat.map(Charge::from_coulombs)
    }

    /// Stored charge at the end of the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (never produced by the simulator).
    #[must_use]
    pub fn final_charge(&self) -> Charge {
        Charge::from_coulombs(self.samples.last().expect("non-empty trace").charge)
    }

    /// Floating-gate voltage at the end of the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty (never produced by the simulator).
    #[must_use]
    pub fn final_vfg(&self) -> Voltage {
        Voltage::from_volts(self.samples.last().expect("non-empty trace").vfg)
    }

    /// Accepted integrator steps (solver-ablation metric).
    #[must_use]
    pub fn accepted_steps(&self) -> usize {
        self.accepted_steps
    }

    /// Right-hand-side evaluations (solver-ablation metric).
    #[must_use]
    pub fn rhs_evaluations(&self) -> usize {
        self.rhs_evaluations
    }
}

/// The transient simulator.
///
/// Integrates the charge balance with the adaptive Dormand–Prince 5(4)
/// solver; the state variable is `QFG/CT` (volts) so tolerances are
/// scale-free.
///
/// This type is a facade over [`ChargeBalanceEngine`] (cache-backed
/// `J(E)` tables, pluggable tunneling paths); it exists so single-shot
/// call sites keep their borrow-based API.
#[derive(Debug, Clone)]
pub struct TransientSimulator<'d> {
    device: &'d FloatingGateTransistor,
    engine: ChargeBalanceEngine,
}

impl<'d> TransientSimulator<'d> {
    /// Creates a simulator with default tolerances (rtol 1e-8, atol 1e-10,
    /// saturation at 1 % of the initial net current).
    #[must_use]
    pub fn new(device: &'d FloatingGateTransistor) -> Self {
        Self {
            device,
            engine: ChargeBalanceEngine::new(device),
        }
    }

    /// The device being simulated.
    #[must_use]
    pub fn device(&self) -> &'d FloatingGateTransistor {
        self.device
    }

    /// The engine backing this simulator.
    #[must_use]
    pub fn engine(&self) -> &ChargeBalanceEngine {
        &self.engine
    }

    /// Overrides the ODE solver options.
    #[must_use]
    pub fn with_ode_options(mut self, opts: OdeOptions) -> Self {
        self.engine = self.engine.with_ode_options(opts);
        self
    }

    /// Overrides the saturation detection fraction: `t_sat` fires when
    /// `|Jout|` reaches `(1 − fraction)·|Jin|`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    #[must_use]
    pub fn with_saturation_fraction(mut self, fraction: f64) -> Self {
        self.engine = self.engine.with_saturation_fraction(fraction);
        self
    }

    /// Runs a transient.
    ///
    /// # Errors
    ///
    /// [`crate::DeviceError::NoTunneling`] when the bias point produces
    /// no measurable charging current; [`crate::DeviceError::Numerics`]
    /// if the integrator fails.
    pub fn run(&self, spec: &ProgramPulseSpec) -> Result<TransientResult> {
        self.engine.run(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn device() -> FloatingGateTransistor {
        FloatingGateTransistor::mlgnr_cnt_paper()
    }

    #[test]
    fn programming_reaches_saturation() {
        let d = device();
        let r = TransientSimulator::new(&d)
            .run(&ProgramPulseSpec::program(presets::program_vgs()))
            .unwrap();
        let ts = r.saturation_time().expect("should saturate");
        assert!(ts.as_seconds() > 0.0);
        // Stored charge is negative (electrons) and of attocoulomb scale.
        let q = r.charge_at_saturation().unwrap();
        assert!(q.as_coulombs() < 0.0);
        assert!(q.as_electrons().abs() > 1.0);
    }

    #[test]
    fn jin_decreases_jout_increases() {
        // The central claim of Figure 5.
        let d = device();
        let r = TransientSimulator::new(&d)
            .run(&ProgramPulseSpec::program(presets::program_vgs()))
            .unwrap();
        let s = r.samples();
        assert!(s.len() > 10);
        let first = &s[0];
        let at_sat_idx = s
            .iter()
            .position(|p| Some(p.t) >= r.saturation_time().map(|t| t.as_seconds()))
            .unwrap_or(s.len() - 1);
        let near_sat = &s[at_sat_idx];
        assert!(near_sat.j_in < first.j_in, "Jin must decrease");
        assert!(near_sat.j_out > first.j_out, "Jout must increase");
        // At saturation the two flows (times equal areas) nearly balance.
        let imbalance = (near_sat.j_in - near_sat.j_out).abs() / first.j_in;
        assert!(imbalance < 0.05, "imbalance = {imbalance}");
    }

    #[test]
    fn vfg_decays_from_nine_volts() {
        let d = device();
        let r = TransientSimulator::new(&d)
            .run(&ProgramPulseSpec::program(presets::program_vgs()))
            .unwrap();
        let s = r.samples();
        assert!((s[0].vfg - 9.0).abs() < 1e-6);
        assert!(r.final_vfg().as_volts() < 9.0);
        // Monotone decrease of VFG during programming.
        for w in s.windows(2) {
            assert!(w[1].vfg <= w[0].vfg + 1e-9);
        }
    }

    #[test]
    fn erase_recovers_charge() {
        let d = device();
        // Program first.
        let prog = TransientSimulator::new(&d)
            .run(&ProgramPulseSpec::program(presets::program_vgs()))
            .unwrap();
        let q_prog = prog.final_charge();
        assert!(q_prog.as_coulombs() < 0.0);
        // Then erase.
        let erase = TransientSimulator::new(&d)
            .run(&ProgramPulseSpec::erase(presets::erase_vgs(), q_prog))
            .unwrap();
        let q_erased = erase.final_charge();
        assert!(
            q_erased.as_coulombs() > q_prog.as_coulombs(),
            "erase must remove electrons: {} -> {}",
            q_prog.as_electrons(),
            q_erased.as_electrons()
        );
    }

    #[test]
    fn low_bias_reports_no_tunneling() {
        let d = device();
        let r =
            TransientSimulator::new(&d).run(&ProgramPulseSpec::program(Voltage::from_volts(1.0)));
        assert!(matches!(r, Err(crate::DeviceError::NoTunneling { .. })));
    }

    #[test]
    fn fixed_duration_respected() {
        let d = device();
        let r = TransientSimulator::new(&d)
            .run(
                &ProgramPulseSpec::program(presets::program_vgs())
                    .with_duration(Time::from_nanoseconds(100.0)),
            )
            .unwrap();
        let t_last = r.samples().last().unwrap().t;
        assert!((t_last - 1.0e-7).abs() / 1.0e-7 < 1e-6);
    }

    #[test]
    fn higher_vgs_programs_faster() {
        // Conclusion §V: "for faster programming ... higher control gate
        // voltage".
        let d = device();
        let sim = TransientSimulator::new(&d);
        let t15 = sim
            .run(&ProgramPulseSpec::program(Voltage::from_volts(15.0)))
            .unwrap()
            .saturation_time()
            .unwrap();
        let t16 = sim
            .run(&ProgramPulseSpec::program(Voltage::from_volts(16.0)))
            .unwrap()
            .saturation_time()
            .unwrap();
        assert!(t16 < t15, "t_sat(16 V) = {t16} !< t_sat(15 V) = {t15}");
    }

    #[test]
    fn saturation_fraction_bounds_enforced() {
        let d = device();
        let sim = TransientSimulator::new(&d);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                sim.with_saturation_fraction(1.5)
            }))
            .is_err()
        );
    }
}
