//! The paper's nominal operating points and sweep grids.
//!
//! Values stated in the paper are cited to their section; values the paper
//! leaves implicit are documented assumptions (see DESIGN.md §5).

use gnr_materials::cnt::{Chirality, Cnt};
use gnr_units::{Energy, Voltage};

use crate::device::FloatingGateTransistor;

/// Programming control-gate voltage, §II/§III: "a programming voltage
/// around 15V in our proposed design".
pub const PROGRAM_VGS_VOLTS: f64 = 15.0;

/// Erase control-gate voltage (symmetric negative bias, §I/§IV.b).
pub const ERASE_VGS_VOLTS: f64 = -15.0;

/// Drain bias during programming, §III: "the drain is connected to a
/// minimum voltage (50mV in this case)" — treated as 0 in eq. (7),
/// exactly as the paper does.
pub const DRAIN_BIAS_VOLTS: f64 = 0.05;

/// The paper's worked-example gate-coupling ratio (§III: "a GCR value of
/// 0.6").
pub const PAPER_GCR: f64 = 0.6;

/// GCR sweep for Figures 6 and 8 ("four different GCR"); the paper does
/// not list the values — 50/60/70/80 % brackets the worked example.
pub const GCR_SWEEP: [f64; 4] = [0.5, 0.6, 0.7, 0.8];

/// Tunnel-oxide sweep for Figures 7 and 9 ("five different tunnel oxide
/// thickness"), bracketing the ITRS 5–6 nm values the paper cites and the
/// 7 nm threshold it calls out.
pub const XTO_SWEEP_NM: [f64; 5] = [4.0, 5.0, 6.0, 7.0, 8.0];

/// Programming VGS range of Figure 6 ("VGS = 8–17V").
pub const FIG6_VGS_RANGE: (f64, f64) = (8.0, 17.0);

/// Programming VGS range of Figure 7 ("VGS = 10–17V").
pub const FIG7_VGS_RANGE: (f64, f64) = (10.0, 17.0);

/// Erase VGS range of Figures 8–9 (mirror of Figure 6, negative).
pub const FIG8_VGS_RANGE: (f64, f64) = (-17.0, -8.0);

/// Number of bias points per sweep curve.
pub const SWEEP_POINTS: usize = 46;

/// The programming voltage as a typed quantity.
#[must_use]
pub fn program_vgs() -> Voltage {
    Voltage::from_volts(PROGRAM_VGS_VOLTS)
}

/// The erase voltage as a typed quantity.
#[must_use]
pub fn erase_vgs() -> Voltage {
    Voltage::from_volts(ERASE_VGS_VOLTS)
}

/// The CNT-channel floating-gate sibling device (JETC 2015 companion
/// work): the paper's geometry, oxides and CNT floating gate with the
/// MLGNR channel replaced by a semiconducting (17,0) carbon nanotube.
///
/// The channel's effective emission energy is the tube's mid-gap work
/// function shifted to the conduction-band edge, `Φ − E_g/2` — FN
/// emission is from the band edge, not mid-gap — which lands the
/// channel/SiO₂ barrier near 3.49 eV versus the MLGNR channel's
/// 3.6 eV, so the CNT device programs measurably faster through the
/// same FN machinery.
///
/// # Panics
///
/// Never in practice: the (17,0) tube's derived barrier is validated by
/// the builder, and the parameters are compile-time constants.
#[must_use]
pub fn cnt_floating_gate() -> FloatingGateTransistor {
    let chirality = Chirality::new(17, 0).expect("(17,0) is a valid chirality");
    let channel = Cnt::new(chirality);
    let emission_ev = channel.work_function().as_ev() - 0.5 * channel.band_gap().as_ev();
    FloatingGateTransistor::builder()
        .name("CNT-CNT FGT (17,0) channel")
        .channel_work_function(Energy::from_ev(emission_ev))
        .build()
        .expect("CNT preset parameters are valid")
}

/// Evenly spaced sweep grid over `[lo, hi]` with [`SWEEP_POINTS`] points.
#[must_use]
pub fn vgs_grid(range: (f64, f64)) -> Vec<f64> {
    let (lo, hi) = range;
    (0..SWEEP_POINTS)
        .map(|i| lo + (hi - lo) * i as f64 / (SWEEP_POINTS - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_their_ranges() {
        let g = vgs_grid(FIG6_VGS_RANGE);
        assert_eq!(g.len(), SWEEP_POINTS);
        assert!((g[0] - 8.0).abs() < 1e-12);
        assert!((g.last().unwrap() - 17.0).abs() < 1e-12);
    }

    #[test]
    fn sweeps_include_paper_nominals() {
        assert!(GCR_SWEEP.contains(&PAPER_GCR));
        assert!(XTO_SWEEP_NM.contains(&5.0));
    }

    #[test]
    fn cnt_preset_differs_from_the_paper_device_where_it_should() {
        let gnr = FloatingGateTransistor::mlgnr_cnt_paper();
        let cnt = cnt_floating_gate();
        // Same stack, different channel: geometry and capacitances are
        // shared, the channel emission barrier is not.
        assert_eq!(gnr.geometry(), cnt.geometry());
        assert_eq!(gnr.capacitances(), cnt.capacitances());
        assert!(
            cnt.channel_work_function().as_ev() < gnr.channel_work_function().as_ev(),
            "the (17,0) conduction-band edge sits below the MLGNR work function"
        );
        assert_ne!(gnr.dynamics_key(), cnt.dynamics_key());
    }

    #[test]
    fn erase_grid_is_negative() {
        let g = vgs_grid(FIG8_VGS_RANGE);
        assert!(g.iter().all(|&v| v < 0.0));
    }
}
