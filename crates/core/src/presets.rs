//! The paper's nominal operating points and sweep grids.
//!
//! Values stated in the paper are cited to their section; values the paper
//! leaves implicit are documented assumptions (see DESIGN.md §5).

use gnr_units::Voltage;

/// Programming control-gate voltage, §II/§III: "a programming voltage
/// around 15V in our proposed design".
pub const PROGRAM_VGS_VOLTS: f64 = 15.0;

/// Erase control-gate voltage (symmetric negative bias, §I/§IV.b).
pub const ERASE_VGS_VOLTS: f64 = -15.0;

/// Drain bias during programming, §III: "the drain is connected to a
/// minimum voltage (50mV in this case)" — treated as 0 in eq. (7),
/// exactly as the paper does.
pub const DRAIN_BIAS_VOLTS: f64 = 0.05;

/// The paper's worked-example gate-coupling ratio (§III: "a GCR value of
/// 0.6").
pub const PAPER_GCR: f64 = 0.6;

/// GCR sweep for Figures 6 and 8 ("four different GCR"); the paper does
/// not list the values — 50/60/70/80 % brackets the worked example.
pub const GCR_SWEEP: [f64; 4] = [0.5, 0.6, 0.7, 0.8];

/// Tunnel-oxide sweep for Figures 7 and 9 ("five different tunnel oxide
/// thickness"), bracketing the ITRS 5–6 nm values the paper cites and the
/// 7 nm threshold it calls out.
pub const XTO_SWEEP_NM: [f64; 5] = [4.0, 5.0, 6.0, 7.0, 8.0];

/// Programming VGS range of Figure 6 ("VGS = 8–17V").
pub const FIG6_VGS_RANGE: (f64, f64) = (8.0, 17.0);

/// Programming VGS range of Figure 7 ("VGS = 10–17V").
pub const FIG7_VGS_RANGE: (f64, f64) = (10.0, 17.0);

/// Erase VGS range of Figures 8–9 (mirror of Figure 6, negative).
pub const FIG8_VGS_RANGE: (f64, f64) = (-17.0, -8.0);

/// Number of bias points per sweep curve.
pub const SWEEP_POINTS: usize = 46;

/// The programming voltage as a typed quantity.
#[must_use]
pub fn program_vgs() -> Voltage {
    Voltage::from_volts(PROGRAM_VGS_VOLTS)
}

/// The erase voltage as a typed quantity.
#[must_use]
pub fn erase_vgs() -> Voltage {
    Voltage::from_volts(ERASE_VGS_VOLTS)
}

/// Evenly spaced sweep grid over `[lo, hi]` with [`SWEEP_POINTS`] points.
#[must_use]
pub fn vgs_grid(range: (f64, f64)) -> Vec<f64> {
    let (lo, hi) = range;
    (0..SWEEP_POINTS)
        .map(|i| lo + (hi - lo) * i as f64 / (SWEEP_POINTS - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_their_ranges() {
        let g = vgs_grid(FIG6_VGS_RANGE);
        assert_eq!(g.len(), SWEEP_POINTS);
        assert!((g[0] - 8.0).abs() < 1e-12);
        assert!((g.last().unwrap() - 17.0).abs() < 1e-12);
    }

    #[test]
    fn sweeps_include_paper_nominals() {
        assert!(GCR_SWEEP.contains(&PAPER_GCR));
        assert!(XTO_SWEEP_NM.contains(&5.0));
    }

    #[test]
    fn erase_grid_is_negative() {
        let g = vgs_grid(FIG8_VGS_RANGE);
        assert!(g.iter().all(|&v| v < 0.0));
    }
}
