//! The floating-gate transistor device model.
//!
//! A [`FloatingGateTransistor`] combines the cell geometry, the
//! capacitance network of eq. (2)–(3) and **four directional FN tunneling
//! paths** (paper Figure 3/4):
//!
//! * channel → floating gate through the tunnel oxide (`Jin` during
//!   programming),
//! * floating gate → channel through the tunnel oxide (erase),
//! * floating gate → control gate through the control oxide (`Jout`
//!   during programming),
//! * control gate → floating gate through the control oxide (erase-side
//!   parasitic).
//!
//! Each direction has its own barrier height because the emitting
//! electrode differs — MLGNR channel, CNT floating gate or the metal
//! control gate (§IV: "The work function is a property of the surface of
//! the material").

use gnr_materials::cnt::Cnt;
use gnr_materials::interface::TunnelInterface;
use gnr_materials::mlgnr::MultilayerGnr;
use gnr_materials::oxide::Oxide;
use gnr_materials::silicon;
use gnr_tunneling::fn_model::FnModel;
use gnr_units::{Capacitance, Charge, CurrentDensity, ElectricField, Energy, Temperature, Voltage};

use crate::capacitance::CapacitanceNetwork;
use crate::geometry::FgtGeometry;
use crate::Result;

/// Directional signed flow through one oxide: the emitting electrode —
/// and therefore the model — switches with the field sign, and the
/// magnitude is evaluated at `|E|` so every model's odd symmetry is
/// applied consistently.
///
/// This is the single home of the sign convention shared by the exact
/// device paths and the engine's tabulated paths; keep them from
/// diverging by routing both through here.
pub(crate) fn signed_flow(
    field: ElectricField,
    forward: &dyn gnr_tunneling::TunnelingModel,
    reverse: &dyn gnr_tunneling::TunnelingModel,
) -> CurrentDensity {
    signed_flow_by(
        field,
        |e| forward.current_density(e),
        |e| reverse.current_density(e),
    )
}

/// Closure-general form of [`signed_flow`] for evaluations that carry
/// extra parameters (e.g. the Lenzlinger–Snow temperature correction of
/// [`FloatingGateTransistor::tunnel_flow_at`]). Each closure receives
/// `|E|` and returns the current-density magnitude of its emitter.
pub(crate) fn signed_flow_by(
    field: ElectricField,
    forward: impl FnOnce(ElectricField) -> CurrentDensity,
    reverse: impl FnOnce(ElectricField) -> CurrentDensity,
) -> CurrentDensity {
    let ev = field.as_volts_per_meter();
    if ev == 0.0 {
        return CurrentDensity::ZERO;
    }
    let mag = if ev > 0.0 {
        forward(field.abs())
    } else {
        reverse(field.abs())
    }
    .as_amps_per_square_meter();
    CurrentDensity::from_amps_per_square_meter(ev.signum() * mag)
}

/// Instantaneous tunneling state of the cell at one bias point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TunnelingState {
    /// Floating-gate potential (eq. 3).
    pub vfg: Voltage,
    /// Signed electron flow through the tunnel oxide
    /// (positive = electrons moving channel → FG).
    pub tunnel_flow: CurrentDensity,
    /// Signed electron flow through the control oxide
    /// (positive = electrons moving FG → control gate).
    pub control_flow: CurrentDensity,
    /// Rate of change of the stored charge (amperes; negative while
    /// electrons accumulate).
    pub charge_rate_amps: f64,
}

/// The floating-gate transistor.
///
/// Construct with [`FloatingGateTransistor::mlgnr_cnt_paper`] (the paper's
/// device), [`FloatingGateTransistor::silicon_conventional`] (the
/// baseline it is compared against) or [`FloatingGateTransistor::builder`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FloatingGateTransistor {
    name: String,
    geometry: FgtGeometry,
    caps: CapacitanceNetwork,
    tunnel_oxide: Oxide,
    control_oxide: Oxide,
    channel_work_function: Energy,
    floating_gate_work_function: Energy,
    control_gate_work_function: Energy,
    fn_channel_emit: FnModel,
    fn_fg_emit_tunnel: FnModel,
    fn_fg_emit_control: FnModel,
    fn_gate_emit: FnModel,
}

impl FloatingGateTransistor {
    /// Starts a [`FgtBuilder`] pre-loaded with the paper's nominal values.
    #[must_use]
    pub fn builder() -> FgtBuilder {
        FgtBuilder::default()
    }

    /// The paper's proposed device: MLGNR channel, CNT floating gate,
    /// SiO₂ oxides (5 nm / 12 nm), `GCR = 0.6`, `CT` from the 22 nm
    /// geometry.
    #[must_use]
    pub fn mlgnr_cnt_paper() -> Self {
        FgtBuilder::default()
            .build()
            .expect("paper preset is valid")
    }

    /// The conventional silicon baseline the paper compares against:
    /// Si inversion-layer emitter, n⁺ poly-Si floating and control gates,
    /// same geometry and GCR.
    #[must_use]
    pub fn silicon_conventional() -> Self {
        FgtBuilder::default()
            .name("si-conventional")
            .channel_work_function(silicon::inversion_layer_work_function())
            .floating_gate_work_function(silicon::n_poly_work_function())
            .control_gate_work_function(silicon::n_poly_work_function())
            .build()
            .expect("silicon baseline is valid")
    }

    /// Device name (for reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell geometry.
    #[must_use]
    pub fn geometry(&self) -> &FgtGeometry {
        &self.geometry
    }

    /// Capacitance network (eq. 2).
    #[must_use]
    pub fn capacitances(&self) -> &CapacitanceNetwork {
        &self.caps
    }

    /// Tunnel-oxide material.
    #[must_use]
    pub fn tunnel_oxide(&self) -> &Oxide {
        &self.tunnel_oxide
    }

    /// Control-oxide material.
    #[must_use]
    pub fn control_oxide(&self) -> &Oxide {
        &self.control_oxide
    }

    /// The channel emitter work function.
    #[must_use]
    pub fn channel_work_function(&self) -> Energy {
        self.channel_work_function
    }

    /// The floating-gate work function.
    #[must_use]
    pub fn floating_gate_work_function(&self) -> Energy {
        self.floating_gate_work_function
    }

    /// The control-gate work function.
    #[must_use]
    pub fn control_gate_work_function(&self) -> Energy {
        self.control_gate_work_function
    }

    /// The FN model for channel-emitted tunneling (programming `Jin`).
    #[must_use]
    pub fn channel_emission_model(&self) -> &FnModel {
        &self.fn_channel_emit
    }

    /// The FN model for FG-emitted tunneling through the tunnel oxide
    /// (erase).
    #[must_use]
    pub fn fg_emission_model(&self) -> &FnModel {
        &self.fn_fg_emit_tunnel
    }

    /// The FN model for FG-emitted tunneling through the control oxide
    /// (programming `Jout`).
    #[must_use]
    pub fn fg_control_emission_model(&self) -> &FnModel {
        &self.fn_fg_emit_control
    }

    /// The FN model for control-gate-emitted tunneling through the
    /// control oxide (erase-side parasitic).
    #[must_use]
    pub fn gate_emission_model(&self) -> &FnModel {
        &self.fn_gate_emit
    }

    /// Floating-gate potential at a bias point — eq. (3).
    #[must_use]
    pub fn floating_gate_voltage(&self, vgs: Voltage, qfg: Charge) -> Voltage {
        self.caps.floating_gate_voltage(vgs, qfg)
    }

    /// Field across the tunnel oxide — eq. (5): `E = (VFG − VS)/XTO`.
    #[must_use]
    pub fn tunnel_oxide_field(&self, vfg: Voltage, vs: Voltage) -> ElectricField {
        (vfg - vs) / self.geometry.tunnel_oxide_thickness()
    }

    /// Field across the control oxide: `(VGS − VFG)/XCO`.
    #[must_use]
    pub fn control_oxide_field(&self, vgs: Voltage, vfg: Voltage) -> ElectricField {
        (vgs - vfg) / self.geometry.control_oxide_thickness()
    }

    /// Signed electron flow through the tunnel oxide
    /// (positive = electrons moving channel → FG, i.e. `VFG > VS`).
    ///
    /// The emitting electrode — and therefore the barrier — switches with
    /// the field direction.
    #[must_use]
    pub fn tunnel_flow(&self, vfg: Voltage, vs: Voltage) -> CurrentDensity {
        signed_flow(
            self.tunnel_oxide_field(vfg, vs),
            &self.fn_channel_emit,
            &self.fn_fg_emit_tunnel,
        )
    }

    /// Signed electron flow through the control oxide
    /// (positive = electrons moving FG → control gate, i.e. `VGS > VFG`).
    #[must_use]
    pub fn control_flow(&self, vgs: Voltage, vfg: Voltage) -> CurrentDensity {
        signed_flow(
            self.control_oxide_field(vgs, vfg),
            &self.fn_fg_emit_control,
            &self.fn_gate_emit,
        )
    }

    /// Full tunneling state at a bias point: eq. (3) + both oxide flows +
    /// the charge balance
    /// `dQ/dt = A·(control_flow − tunnel_flow)` (each arriving electron
    /// adds `−q`).
    #[must_use]
    pub fn tunneling_state(&self, vgs: Voltage, vs: Voltage, qfg: Charge) -> TunnelingState {
        let vfg = self.floating_gate_voltage(vgs, qfg);
        let jt = self.tunnel_flow(vfg, vs);
        let jc = self.control_flow(vgs, vfg);
        let area = self.geometry.gate_area();
        let dq_dt = area.as_square_meters()
            * (jc.as_amps_per_square_meter() - jt.as_amps_per_square_meter());
        TunnelingState {
            vfg,
            tunnel_flow: jt,
            control_flow: jc,
            charge_rate_amps: dq_dt,
        }
    }

    /// Like [`Self::tunnel_flow`] but with the Lenzlinger–Snow
    /// temperature correction (the temperature-ablation bench).
    #[must_use]
    pub fn tunnel_flow_at(
        &self,
        vfg: Voltage,
        vs: Voltage,
        temperature: Temperature,
    ) -> CurrentDensity {
        signed_flow_by(
            self.tunnel_oxide_field(vfg, vs),
            |e| self.fn_channel_emit.current_density_at(e, temperature),
            |e| self.fn_fg_emit_tunnel.current_density_at(e, temperature),
        )
    }

    /// FNV-1a digest over the exact bit patterns of every parameter that
    /// enters the charge-balance dynamics: the four capacitances of
    /// eq. (2), the oxide thicknesses and gate area of eq. (5), and the
    /// FN `(A, B)` coefficients of all four tunneling paths. Two devices
    /// with equal keys produce bit-identical [`Self::tunneling_state`]
    /// values at every bias point, so the key is what process-wide
    /// trajectory caches (the engine's pulse flow map) may key on.
    #[must_use]
    pub fn dynamics_key(&self) -> u64 {
        use gnr_numerics::hash::{fnv1a_fold_f64, FNV1A_OFFSET};
        let mut h = FNV1A_OFFSET;
        for v in [
            self.caps.cfc().as_farads(),
            self.caps.cfs().as_farads(),
            self.caps.cfb().as_farads(),
            self.caps.cfd().as_farads(),
            self.geometry.tunnel_oxide_thickness().as_meters(),
            self.geometry.control_oxide_thickness().as_meters(),
            self.geometry.gate_area().as_square_meters(),
        ] {
            h = fnv1a_fold_f64(h, v);
        }
        for model in [
            &self.fn_channel_emit,
            &self.fn_fg_emit_tunnel,
            &self.fn_fg_emit_control,
            &self.fn_gate_emit,
        ] {
            let c = model.coefficients();
            h = fnv1a_fold_f64(h, c.a);
            h = fnv1a_fold_f64(h, c.b);
        }
        h
    }

    /// Oxide stress ratios (|field| / breakdown) at a bias point — the
    /// reliability concern of the paper's conclusion.
    #[must_use]
    pub fn stress_ratios(&self, vgs: Voltage, vs: Voltage, qfg: Charge) -> (f64, f64) {
        let vfg = self.floating_gate_voltage(vgs, qfg);
        (
            self.tunnel_oxide
                .field_stress_ratio(self.tunnel_oxide_field(vfg, vs)),
            self.control_oxide
                .field_stress_ratio(self.control_oxide_field(vgs, vfg)),
        )
    }
}

/// Builder for [`FloatingGateTransistor`], defaulting to the paper's
/// nominal MLGNR-CNT cell.
#[derive(Debug, Clone)]
pub struct FgtBuilder {
    name: String,
    geometry: FgtGeometry,
    gcr: f64,
    total_capacitance: Option<Capacitance>,
    tunnel_oxide: Oxide,
    control_oxide: Oxide,
    channel_work_function: Energy,
    floating_gate_work_function: Energy,
    control_gate_work_function: Energy,
}

impl Default for FgtBuilder {
    fn default() -> Self {
        Self {
            name: "mlgnr-cnt-paper".to_string(),
            geometry: FgtGeometry::paper_nominal(),
            gcr: crate::presets::PAPER_GCR,
            total_capacitance: None,
            tunnel_oxide: Oxide::silicon_dioxide(),
            control_oxide: Oxide::silicon_dioxide(),
            channel_work_function: MultilayerGnr::paper_channel().work_function(),
            floating_gate_work_function: Cnt::paper_floating_gate().work_function(),
            control_gate_work_function: Energy::from_ev(4.6),
        }
    }
}

impl FgtBuilder {
    /// Sets the device name used in reports.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the cell geometry.
    #[must_use]
    pub fn geometry(mut self, geometry: FgtGeometry) -> Self {
        self.geometry = geometry;
        self
    }

    /// Sets the gate-coupling ratio (paper sweeps 50–80 %).
    #[must_use]
    pub fn gcr(mut self, gcr: f64) -> Self {
        self.gcr = gcr;
        self
    }

    /// Overrides the total floating-gate capacitance `CT`; derived from
    /// the geometry when unset.
    #[must_use]
    pub fn total_capacitance(mut self, ct: Capacitance) -> Self {
        self.total_capacitance = Some(ct);
        self
    }

    /// Sets the tunnel-oxide material.
    #[must_use]
    pub fn tunnel_oxide(mut self, oxide: Oxide) -> Self {
        self.tunnel_oxide = oxide;
        self
    }

    /// Sets the control-oxide material.
    #[must_use]
    pub fn control_oxide(mut self, oxide: Oxide) -> Self {
        self.control_oxide = oxide;
        self
    }

    /// Sets the channel emitter work function.
    #[must_use]
    pub fn channel_work_function(mut self, wf: Energy) -> Self {
        self.channel_work_function = wf;
        self
    }

    /// Sets the floating-gate work function.
    #[must_use]
    pub fn floating_gate_work_function(mut self, wf: Energy) -> Self {
        self.floating_gate_work_function = wf;
        self
    }

    /// Sets the control-gate work function.
    #[must_use]
    pub fn control_gate_work_function(mut self, wf: Energy) -> Self {
        self.control_gate_work_function = wf;
        self
    }

    /// Builds the device, validating every interface barrier.
    ///
    /// # Errors
    ///
    /// [`DeviceError::Material`] when any emitter work function fails to
    /// clear its oxide's electron affinity;
    /// [`DeviceError::InvalidParameter`] for an out-of-range GCR.
    pub fn build(self) -> Result<FloatingGateTransistor> {
        // Total capacitance: explicit override or the parallel-plate
        // estimate scaled so CFC matches the requested GCR (wrap-around
        // control gates achieve this in real cells).
        let ct = self.total_capacitance.unwrap_or_else(|| {
            CapacitanceNetwork::from_geometry(
                &self.geometry,
                &self.tunnel_oxide,
                &self.control_oxide,
            )
            .total()
        });
        let caps = CapacitanceNetwork::from_gcr(self.gcr, ct)?;

        let if_channel =
            TunnelInterface::new(self.channel_work_function, self.tunnel_oxide.clone())?;
        let if_fg_tunnel =
            TunnelInterface::new(self.floating_gate_work_function, self.tunnel_oxide.clone())?;
        let if_fg_control =
            TunnelInterface::new(self.floating_gate_work_function, self.control_oxide.clone())?;
        let if_gate =
            TunnelInterface::new(self.control_gate_work_function, self.control_oxide.clone())?;

        Ok(FloatingGateTransistor {
            name: self.name,
            geometry: self.geometry,
            caps,
            fn_channel_emit: FnModel::from_interface(&if_channel),
            fn_fg_emit_tunnel: FnModel::from_interface(&if_fg_tunnel),
            fn_fg_emit_control: FnModel::from_interface(&if_fg_control),
            fn_gate_emit: FnModel::from_interface(&if_gate),
            tunnel_oxide: self.tunnel_oxide,
            control_oxide: self.control_oxide,
            channel_work_function: self.channel_work_function,
            floating_gate_work_function: self.floating_gate_work_function,
            control_gate_work_function: self.control_gate_work_function,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceError;

    #[test]
    fn paper_device_reproduces_worked_example() {
        // VGS = 15 V, GCR = 0.6, QFG = 0 → VFG = 9 V (§III).
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let vfg = d.floating_gate_voltage(Voltage::from_volts(15.0), Charge::ZERO);
        assert!((vfg.as_volts() - 9.0).abs() < 1e-9);
        // E = 9 V / 5 nm = 1.8 GV/m.
        let e = d.tunnel_oxide_field(vfg, Voltage::ZERO);
        assert!((e.as_volts_per_meter() - 1.8e9).abs() < 1.0);
    }

    #[test]
    fn jin_dominates_jout_at_program_onset() {
        // Figure 4: "Jin is much higher than Jout".
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let s = d.tunneling_state(Voltage::from_volts(15.0), Voltage::ZERO, Charge::ZERO);
        let jin = s.tunnel_flow.as_amps_per_square_meter();
        let jout = s.control_flow.as_amps_per_square_meter();
        assert!(jin > 0.0);
        assert!(jout >= 0.0);
        assert!(
            jin > 1e3 * jout.max(1e-300),
            "Jin = {jin:e}, Jout = {jout:e}"
        );
        // Electrons accumulate: dQ/dt < 0.
        assert!(s.charge_rate_amps < 0.0);
    }

    #[test]
    fn stored_charge_reduces_jin_and_raises_jout() {
        // §III / Figure 5 mechanism.
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let vgs = Voltage::from_volts(15.0);
        let s0 = d.tunneling_state(vgs, Voltage::ZERO, Charge::ZERO);
        let q = Charge::from_coulombs(-2.0 * d.capacitances().total().as_farads()); // −2 V worth
        let s1 = d.tunneling_state(vgs, Voltage::ZERO, q);
        assert!(
            s1.tunnel_flow.as_amps_per_square_meter() < s0.tunnel_flow.as_amps_per_square_meter()
        );
        assert!(
            s1.control_flow.as_amps_per_square_meter()
                >= s0.control_flow.as_amps_per_square_meter()
        );
        assert!(s1.vfg < s0.vfg);
    }

    #[test]
    fn erase_reverses_the_flows() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        // Programmed cell: −3 V of stored charge.
        let q = Charge::from_coulombs(-3.0 * d.capacitances().total().as_farads());
        let s = d.tunneling_state(Voltage::from_volts(-15.0), Voltage::ZERO, q);
        // Electrons leave the FG toward the channel: tunnel_flow < 0,
        // and the stored (negative) charge relaxes upward: dQ/dt > 0.
        assert!(s.tunnel_flow.as_amps_per_square_meter() < 0.0);
        assert!(s.charge_rate_amps > 0.0);
    }

    #[test]
    fn zero_bias_zero_flow() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let s = d.tunneling_state(Voltage::ZERO, Voltage::ZERO, Charge::ZERO);
        assert_eq!(s.tunnel_flow.as_amps_per_square_meter(), 0.0);
        assert_eq!(s.control_flow.as_amps_per_square_meter(), 0.0);
        assert_eq!(s.charge_rate_amps, 0.0);
    }

    #[test]
    fn builder_respects_overrides() {
        let d = FloatingGateTransistor::builder()
            .name("custom")
            .gcr(0.7)
            .total_capacitance(Capacitance::from_attofarads(6.0))
            .build()
            .unwrap();
        assert_eq!(d.name(), "custom");
        assert!((d.capacitances().gcr() - 0.7).abs() < 1e-12);
        assert!((d.capacitances().total().as_attofarads() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn builder_rejects_bad_gcr() {
        assert!(FloatingGateTransistor::builder().gcr(1.5).build().is_err());
    }

    #[test]
    fn builder_rejects_impossible_barrier() {
        let r = FloatingGateTransistor::builder()
            .channel_work_function(Energy::from_ev(0.5))
            .build();
        assert!(matches!(r, Err(DeviceError::Material(_))));
    }

    #[test]
    fn silicon_baseline_tunnels_more_at_same_bias() {
        // Si/SiO2 barrier (3.15 eV) < graphene/SiO2 (3.6 eV): at the same
        // field, the baseline passes more FN current.
        let gnr = FloatingGateTransistor::mlgnr_cnt_paper();
        let si = FloatingGateTransistor::silicon_conventional();
        let vgs = Voltage::from_volts(15.0);
        let j_gnr = gnr
            .tunneling_state(vgs, Voltage::ZERO, Charge::ZERO)
            .tunnel_flow
            .as_amps_per_square_meter();
        let j_si = si
            .tunneling_state(vgs, Voltage::ZERO, Charge::ZERO)
            .tunnel_flow
            .as_amps_per_square_meter();
        assert!(j_si > j_gnr, "Si {j_si:e} !> GNR {j_gnr:e}");
    }

    #[test]
    fn stress_ratio_flags_program_bias() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let (tox, cox) = d.stress_ratios(Voltage::from_volts(15.0), Voltage::ZERO, Charge::ZERO);
        // 18 MV/cm across the tunnel oxide exceeds SiO2 breakdown — the
        // paper's reliability warning.
        assert!(tox > 1.0);
        assert!(cox < 1.0);
    }

    #[test]
    fn temperature_raises_tunnel_flow() {
        let d = FloatingGateTransistor::mlgnr_cnt_paper();
        let vfg = Voltage::from_volts(9.0);
        let cold = d.tunnel_flow_at(vfg, Voltage::ZERO, Temperature::from_kelvin(250.0));
        let hot = d.tunnel_flow_at(vfg, Voltage::ZERO, Temperature::from_kelvin(400.0));
        assert!(hot.as_amps_per_square_meter() > cold.as_amps_per_square_meter());
    }
}
