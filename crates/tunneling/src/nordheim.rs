//! Image-force (Schottky) barrier lowering and the Nordheim correction to
//! the FN law.
//!
//! The triangular-barrier FN law ignores the image potential that rounds
//! the barrier top. The standard correction multiplies the exponent by the
//! Nordheim function `v(f)` and the prefactor by `1/t(f)²`, with
//! `f = (Δφ/ΦB)²` the scaled barrier lowering. This module implements the
//! Forbes (2006) "simple good approximations":
//!
//! ```text
//! v(f) ≈ 1 − f + (f/6)·ln f,     t(f)² ≈ (1 + f/9 − (f/18)·ln f)²
//! ```
//!
//! valid on `0 ≤ f ≤ 1`.

use gnr_materials::interface::TunnelInterface;
use gnr_units::constants::{ELEMENTARY_CHARGE, VACUUM_PERMITTIVITY};
use gnr_units::{CurrentDensity, ElectricField, Energy};

use crate::fn_model::FnModel;
use crate::models::TunnelingModel;

/// Schottky barrier lowering `Δφ = √(q·E / 4πε)` (in joules) at field
/// magnitude `E`, using the oxide's *optical* permittivity approximated by
/// its static ε_r (adequate at FN fields).
#[must_use]
pub fn schottky_lowering(field: ElectricField, relative_permittivity: f64) -> Energy {
    let e = field.as_volts_per_meter().abs();
    let eps = VACUUM_PERMITTIVITY * relative_permittivity;
    Energy::from_joules(
        ELEMENTARY_CHARGE * (ELEMENTARY_CHARGE * e / (4.0 * core::f64::consts::PI * eps)).sqrt(),
    )
}

/// Forbes approximation of the Nordheim function `v(f)`.
///
/// `v(0) = 1` (no correction), `v(1) = 0` (barrier fully pulled down).
/// Input is clamped to `[0, 1]`.
#[must_use]
pub fn nordheim_v(f: f64) -> f64 {
    let f = f.clamp(0.0, 1.0);
    if f == 0.0 {
        return 1.0;
    }
    1.0 - f + (f / 6.0) * f.ln()
}

/// Forbes approximation of the Nordheim function `t(f)`.
///
/// `t(0) = 1`; grows mildly with `f`. Input is clamped to `[0, 1]`.
#[must_use]
pub fn nordheim_t(f: f64) -> f64 {
    let f = f.clamp(0.0, 1.0);
    if f == 0.0 {
        return 1.0;
    }
    1.0 + f / 9.0 - (f / 18.0) * f.ln()
}

/// FN tunneling with the image-force (Nordheim/Forbes) correction.
///
/// Wraps an [`FnModel`] and applies `v(f)` to the exponent and `1/t(f)²`
/// to the prefactor. At FN fields in SiO₂ the correction *increases* the
/// current by one to three orders of magnitude — the ablation bench
/// quantifies this against the uncorrected law.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ImageForceFnModel {
    base: FnModel,
    relative_permittivity: f64,
}

impl ImageForceFnModel {
    /// Creates the corrected model over a base FN model and the oxide
    /// permittivity used for the image potential.
    ///
    /// # Panics
    ///
    /// Panics when `relative_permittivity < 1`.
    #[must_use]
    pub fn new(base: FnModel, relative_permittivity: f64) -> Self {
        assert!(
            relative_permittivity >= 1.0,
            "relative permittivity must be at least 1"
        );
        Self {
            base,
            relative_permittivity,
        }
    }

    /// Creates the corrected model directly from an interface.
    #[must_use]
    pub fn from_interface(interface: &TunnelInterface) -> Self {
        Self::new(
            FnModel::from_interface(interface),
            interface.oxide().relative_permittivity(),
        )
    }

    /// The underlying uncorrected model.
    #[must_use]
    pub fn base(&self) -> &FnModel {
        &self.base
    }

    /// The Nordheim parameter `f = (Δφ/ΦB)²` at the given field.
    #[must_use]
    pub fn nordheim_parameter(&self, field: ElectricField) -> f64 {
        let lowering = schottky_lowering(field, self.relative_permittivity);
        let y = lowering.as_joules() / self.base.barrier().as_joules();
        (y * y).clamp(0.0, 1.0)
    }
}

impl TunnelingModel for ImageForceFnModel {
    fn current_density(&self, field: ElectricField) -> CurrentDensity {
        let e = field.as_volts_per_meter();
        if e == 0.0 {
            return CurrentDensity::ZERO;
        }
        let f = self.nordheim_parameter(field);
        let v = nordheim_v(f);
        let t = nordheim_t(f);
        let c = self.base.coefficients();
        let mag = (c.a / (t * t)) * e * e * (-c.b * v / e.abs()).exp();
        CurrentDensity::from_amps_per_square_meter(e.signum() * mag)
    }

    fn name(&self) -> &'static str {
        "fowler-nordheim+image-force"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_units::Mass;

    fn model() -> ImageForceFnModel {
        ImageForceFnModel::new(
            FnModel::new(Energy::from_ev(3.15), Mass::from_electron_masses(0.42)),
            3.9,
        )
    }

    #[test]
    fn nordheim_endpoints() {
        assert_eq!(nordheim_v(0.0), 1.0);
        assert!((nordheim_v(1.0) - 0.0).abs() < 1e-12);
        assert_eq!(nordheim_t(0.0), 1.0);
        assert!(nordheim_t(1.0) > 1.0);
    }

    #[test]
    fn nordheim_v_is_decreasing() {
        let mut prev = nordheim_v(0.0);
        for i in 1..=10 {
            let v = nordheim_v(f64::from(i) / 10.0);
            assert!(v < prev, "v not decreasing at f = {}", f64::from(i) / 10.0);
            prev = v;
        }
    }

    #[test]
    fn forbes_v_matches_tabulated_value() {
        // Tabulated exact v(f=0.25) ≈ 0.6920 (Forbes 2006 approx within 0.33%).
        let v = nordheim_v(0.25);
        assert!((v - 0.692).abs() < 0.01, "v(0.25) = {v}");
    }

    #[test]
    fn schottky_lowering_magnitude() {
        // SiO2 at 10 MV/cm: Δφ = 3.79e-4·sqrt(E[V/cm]/εr) ≈ 0.61 eV.
        let d = schottky_lowering(ElectricField::from_megavolts_per_centimeter(10.0), 3.9);
        assert!((d.as_ev() - 0.607).abs() < 0.01, "Δφ = {} eV", d.as_ev());
    }

    #[test]
    fn correction_increases_current() {
        let m = model();
        let e = ElectricField::from_volts_per_meter(1.0e9);
        let j_corr = m.current_density(e).as_amps_per_square_meter();
        let j_base = m.base().current_density(e).as_amps_per_square_meter();
        assert!(j_corr > j_base);
        // At 10 MV/cm: f ≈ 0.04, exp(B(1−v)/E) ≈ 4 — a few-fold boost,
        // growing toward an order of magnitude at higher fields.
        let ratio = j_corr / j_base;
        assert!(ratio > 2.0 && ratio < 1e3, "ratio = {ratio}");
    }

    #[test]
    fn corrected_model_is_odd_and_zero_at_zero() {
        let m = model();
        let e = ElectricField::from_volts_per_meter(8.0e8);
        let sum = m.current_density(e).as_amps_per_square_meter()
            + m.current_density(-e).as_amps_per_square_meter();
        assert!(sum.abs() < 1e-18);
        assert_eq!(
            m.current_density(ElectricField::ZERO)
                .as_amps_per_square_meter(),
            0.0
        );
    }

    #[test]
    fn parameter_grows_with_field() {
        let m = model();
        let f1 = m.nordheim_parameter(ElectricField::from_volts_per_meter(5.0e8));
        let f2 = m.nordheim_parameter(ElectricField::from_volts_per_meter(1.5e9));
        assert!(f2 > f1);
        assert!(f2 < 1.0);
    }
}
