//! Numeric WKB transmission through arbitrary one-dimensional barrier
//! profiles.
//!
//! The analytic FN law *is* the WKB result for an ideal triangular
//! barrier; this module computes the transmission integral numerically so
//! the analytic forms can be validated (and so the Figure 2 band diagram
//! can be drawn for the real, image-rounded barrier).
//!
//! Transmission at longitudinal energy `E_x` (measured from the emitter
//! Fermi level):
//!
//! ```text
//! T(E_x) = exp(−2 ∫ √(2·m_ox·(U(x) − E_x))/ħ dx)
//! ```
//!
//! over the classically forbidden region `U(x) > E_x`.

use gnr_numerics::integrate::gauss_legendre_composite;
use gnr_units::constants::{ELEMENTARY_CHARGE, REDUCED_PLANCK, VACUUM_PERMITTIVITY};
use gnr_units::{ElectricField, Energy, Length, Mass};

/// A one-dimensional potential-energy barrier profile `U(x)` (joules,
/// relative to the emitter Fermi level) over `x ∈ [0, thickness]`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BarrierProfile {
    /// Barrier height at the emitter interface.
    barrier: Energy,
    /// Film thickness.
    thickness: Length,
    /// Field across the film (positive tilts the barrier down toward the
    /// collector).
    field: ElectricField,
    /// Include the image-force rounding term.
    image_force: bool,
    /// Oxide relative permittivity (for the image term).
    relative_permittivity: f64,
}

impl BarrierProfile {
    /// An ideal triangular/trapezoidal barrier (no image force).
    ///
    /// # Panics
    ///
    /// Panics when barrier or thickness is not positive.
    #[must_use]
    pub fn ideal(barrier: Energy, thickness: Length, field: ElectricField) -> Self {
        assert!(barrier.as_joules() > 0.0, "barrier must be positive");
        assert!(thickness.as_meters() > 0.0, "thickness must be positive");
        Self {
            barrier,
            thickness,
            field,
            image_force: false,
            relative_permittivity: 1.0,
        }
    }

    /// A barrier with image-force rounding in an oxide of the given
    /// permittivity.
    ///
    /// # Panics
    ///
    /// Panics when barrier/thickness are not positive or ε_r < 1.
    #[must_use]
    pub fn with_image_force(
        barrier: Energy,
        thickness: Length,
        field: ElectricField,
        relative_permittivity: f64,
    ) -> Self {
        assert!(
            relative_permittivity >= 1.0,
            "permittivity must be at least 1"
        );
        let mut p = Self::ideal(barrier, thickness, field);
        p.image_force = true;
        p.relative_permittivity = relative_permittivity;
        p
    }

    /// Barrier height at the emitter interface.
    #[must_use]
    pub fn barrier(&self) -> Energy {
        self.barrier
    }

    /// Film thickness.
    #[must_use]
    pub fn thickness(&self) -> Length {
        self.thickness
    }

    /// Potential energy `U(x)` in joules at depth `x` meters into the film.
    ///
    /// `U(x) = ΦB − qEx − q²/(16πε x̃)` where the image term (if enabled)
    /// uses the distance to the nearest electrode
    /// `x̃ = min(x, t − x)` clamped away from the interfaces.
    #[must_use]
    pub fn potential(&self, x: f64) -> f64 {
        let t = self.thickness.as_meters();
        let x = x.clamp(0.0, t);
        let mut u =
            self.barrier.as_joules() - ELEMENTARY_CHARGE * self.field.as_volts_per_meter() * x;
        if self.image_force {
            let eps = VACUUM_PERMITTIVITY * self.relative_permittivity;
            // Clamp the singular image term within one ångström of either
            // electrode (standard regularisation).
            let x_eff = x.min(t - x).max(1.0e-10);
            u -= ELEMENTARY_CHARGE * ELEMENTARY_CHARGE
                / (16.0 * core::f64::consts::PI * eps * x_eff);
        }
        u
    }

    /// Samples `(x, U(x))` at `n + 1` evenly spaced points — the Figure 2
    /// band-diagram data.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn profile_points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n > 0, "need at least one interval");
        let t = self.thickness.as_meters();
        (0..=n)
            .map(|i| {
                let x = t * i as f64 / n as f64;
                (x, self.potential(x))
            })
            .collect()
    }

    /// WKB transmission coefficient at longitudinal energy `e_x` for an
    /// electron of effective mass `m_ox`.
    ///
    /// Returns 1.0 when no classically forbidden region exists.
    #[must_use]
    pub fn transmission(&self, e_x: Energy, m_ox: Mass) -> f64 {
        let t = self.thickness.as_meters();
        let e = e_x.as_joules();
        let m = m_ox.as_kilograms();
        // Forbidden region: U(x) > e. U is monotone for ideal barriers but
        // image rounding makes it non-monotone; integrate κ over the whole
        // film with max(U − e, 0) — exact where allowed regions contribute
        // zero.
        let kappa_integral = gauss_legendre_composite(
            |x| {
                let du = self.potential(x) - e;
                if du > 0.0 {
                    (2.0 * m * du).sqrt() / REDUCED_PLANCK
                } else {
                    0.0
                }
            },
            0.0,
            t,
            64,
        );
        (-2.0 * kappa_integral).exp()
    }

    /// The WKB exponent `−2∫κ` at the emitter Fermi level (`E_x = 0`) —
    /// directly comparable to the analytic FN exponent `−B/E`.
    #[must_use]
    pub fn fermi_level_exponent(&self, m_ox: Mass) -> f64 {
        self.transmission(Energy::from_joules(0.0), m_ox).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fn_model::FnModel;

    const PHI_EV: f64 = 3.15;
    const M_RATIO: f64 = 0.42;

    #[test]
    fn triangular_wkb_exponent_matches_analytic_fn_b() {
        // For a triangular barrier fully tilted through the film, the WKB
        // exponent at the Fermi level is exactly −B/E.
        let field = ElectricField::from_volts_per_meter(1.8e9);
        let profile =
            BarrierProfile::ideal(Energy::from_ev(PHI_EV), Length::from_nanometers(5.0), field);
        let m_ox = Mass::from_electron_masses(M_RATIO);
        let wkb = profile.fermi_level_exponent(m_ox);
        let b = FnModel::new(Energy::from_ev(PHI_EV), m_ox).coefficients().b;
        let analytic = -b / field.as_volts_per_meter();
        assert!(
            (wkb - analytic).abs() / analytic.abs() < 1e-3,
            "wkb = {wkb}, analytic = {analytic}"
        );
    }

    #[test]
    fn transmission_increases_with_energy() {
        let profile = BarrierProfile::ideal(
            Energy::from_ev(PHI_EV),
            Length::from_nanometers(5.0),
            ElectricField::from_volts_per_meter(1.0e9),
        );
        let m = Mass::from_electron_masses(M_RATIO);
        let t0 = profile.transmission(Energy::from_ev(0.0), m);
        let t1 = profile.transmission(Energy::from_ev(1.0), m);
        let t_above = profile.transmission(Energy::from_ev(4.0), m);
        assert!(t1 > t0);
        assert_eq!(t_above, 1.0);
    }

    #[test]
    fn transmission_increases_with_field() {
        let m = Mass::from_electron_masses(M_RATIO);
        let t_low = BarrierProfile::ideal(
            Energy::from_ev(PHI_EV),
            Length::from_nanometers(5.0),
            ElectricField::from_volts_per_meter(5.0e8),
        )
        .transmission(Energy::from_ev(0.0), m);
        let t_high = BarrierProfile::ideal(
            Energy::from_ev(PHI_EV),
            Length::from_nanometers(5.0),
            ElectricField::from_volts_per_meter(1.5e9),
        )
        .transmission(Energy::from_ev(0.0), m);
        assert!(t_high > t_low);
    }

    #[test]
    fn image_force_raises_transmission() {
        let m = Mass::from_electron_masses(M_RATIO);
        let ideal = BarrierProfile::ideal(
            Energy::from_ev(PHI_EV),
            Length::from_nanometers(5.0),
            ElectricField::from_volts_per_meter(1.0e9),
        );
        let rounded = BarrierProfile::with_image_force(
            Energy::from_ev(PHI_EV),
            Length::from_nanometers(5.0),
            ElectricField::from_volts_per_meter(1.0e9),
            3.9,
        );
        assert!(
            rounded.transmission(Energy::from_ev(0.0), m)
                > ideal.transmission(Energy::from_ev(0.0), m)
        );
    }

    #[test]
    fn band_profile_is_triangular_without_image_force() {
        let profile = BarrierProfile::ideal(
            Energy::from_ev(3.0),
            Length::from_nanometers(6.0),
            ElectricField::from_volts_per_meter(1.0e9),
        );
        let pts = profile.profile_points(6);
        assert_eq!(pts.len(), 7);
        // Linear decrease: U(0) = 3 eV, U(t) = 3 − 6 = −3 eV.
        assert!((pts[0].1 / ELEMENTARY_CHARGE - 3.0).abs() < 1e-9);
        assert!((pts[6].1 / ELEMENTARY_CHARGE + 3.0).abs() < 1e-9);
        // Monotone decreasing.
        for w in pts.windows(2) {
            assert!(w[1].1 < w[0].1);
        }
    }

    #[test]
    fn zero_field_trapezoid_blocks_strongly() {
        let profile = BarrierProfile::ideal(
            Energy::from_ev(PHI_EV),
            Length::from_nanometers(5.0),
            ElectricField::ZERO,
        );
        // Rectangular 3.15 eV barrier, 5 nm: T = exp(−2κt) ≈ e^{−59}.
        let t = profile.transmission(Energy::from_ev(0.0), Mass::from_electron_masses(M_RATIO));
        assert!(t < 1e-20, "T = {t:e}");
        assert!(t > 1e-32, "T = {t:e}");
    }
}
