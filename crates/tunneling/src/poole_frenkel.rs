//! Poole–Frenkel (trap-assisted) conduction.
//!
//! Cycled oxides conduct through field-lowered traps long before the FN
//! regime — the stress-induced leakage (SILC) behind the paper's
//! reliability warning ("higher tunneling current will severely damage
//! the oxide's reliability", §V). The classic PF law:
//!
//! ```text
//! J = C·E·exp(−q·(Φ_t − √(q·E/(π·ε)))/(k_B·T))
//! ```
//!
//! with `Φ_t` the trap depth and the √E term the one-sided Coulomb
//! barrier lowering (twice the Schottky value). The endurance model uses
//! this as the post-stress leakage path.

use gnr_units::constants::{BOLTZMANN, ELEMENTARY_CHARGE, VACUUM_PERMITTIVITY};
use gnr_units::{CurrentDensity, ElectricField, Energy, Temperature};

use crate::models::TunnelingModel;

/// The Poole–Frenkel conduction model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PooleFrenkelModel {
    trap_depth: Energy,
    relative_permittivity: f64,
    /// Conductivity prefactor `C` (S/m) — proportional to the trap
    /// density, i.e. to accumulated oxide damage.
    prefactor: f64,
    temperature: Temperature,
}

impl PooleFrenkelModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics when the trap depth, permittivity, prefactor or temperature
    /// is out of range.
    #[must_use]
    pub fn new(
        trap_depth: Energy,
        relative_permittivity: f64,
        prefactor: f64,
        temperature: Temperature,
    ) -> Self {
        assert!(trap_depth.as_joules() > 0.0, "trap depth must be positive");
        assert!(
            relative_permittivity >= 1.0,
            "permittivity must be at least 1"
        );
        assert!(prefactor > 0.0, "prefactor must be positive");
        assert!(
            temperature.as_kelvin() > 0.0,
            "temperature must be positive"
        );
        Self {
            trap_depth,
            relative_permittivity,
            prefactor,
            temperature,
        }
    }

    /// A damaged-SiO₂ preset: 1.0 eV traps, ε_r = 3.9, prefactor scaled
    /// so PF leakage at 5 MV/cm is SILC-like (~µA/cm² after heavy
    /// cycling).
    #[must_use]
    pub fn damaged_sio2() -> Self {
        Self::new(Energy::from_ev(1.0), 3.9, 1.0e-7, Temperature::room())
    }

    /// The trap depth `Φ_t`.
    #[must_use]
    pub fn trap_depth(&self) -> Energy {
        self.trap_depth
    }

    /// The PF barrier lowering `√(q·E/(π·ε))` (joules) at a field.
    #[must_use]
    pub fn barrier_lowering(&self, field: ElectricField) -> Energy {
        let e = field.as_volts_per_meter().abs();
        let eps = VACUUM_PERMITTIVITY * self.relative_permittivity;
        Energy::from_joules(
            ELEMENTARY_CHARGE * (ELEMENTARY_CHARGE * e / (core::f64::consts::PI * eps)).sqrt(),
        )
    }
}

impl TunnelingModel for PooleFrenkelModel {
    fn current_density(&self, field: ElectricField) -> CurrentDensity {
        let e = field.as_volts_per_meter();
        if e == 0.0 {
            return CurrentDensity::ZERO;
        }
        let kt = BOLTZMANN * self.temperature.as_kelvin();
        let effective_barrier =
            self.trap_depth.as_joules() - self.barrier_lowering(field).as_joules();
        let mag = self.prefactor * e.abs() * (-effective_barrier.max(0.0) / kt).exp();
        CurrentDensity::from_amps_per_square_meter(e.signum() * mag)
    }

    fn name(&self) -> &'static str {
        "poole-frenkel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PooleFrenkelModel {
        PooleFrenkelModel::damaged_sio2()
    }

    #[test]
    fn pf_plot_is_linear_in_sqrt_field() {
        // ln(J/E) = const + β·√E: check three points for collinearity.
        // Fields stay below the barrier-free clamp (lowering < Φ_t).
        let m = model();
        let pts: Vec<(f64, f64)> = [1.0e8, 2.0e8, 3.0e8]
            .iter()
            .map(|&e| {
                let j = m
                    .current_density(ElectricField::from_volts_per_meter(e))
                    .as_amps_per_square_meter();
                (e.sqrt(), (j / e).ln())
            })
            .collect();
        let slope01 = (pts[1].1 - pts[0].1) / (pts[1].0 - pts[0].0);
        let slope12 = (pts[2].1 - pts[1].1) / (pts[2].0 - pts[1].0);
        assert!(
            ((slope01 - slope12) / slope01).abs() < 1e-9,
            "PF plot not straight: {slope01} vs {slope12}"
        );
    }

    #[test]
    fn pf_lowering_is_twice_schottky() {
        let field = ElectricField::from_volts_per_meter(1.0e9);
        let pf = model().barrier_lowering(field).as_ev();
        let schottky = crate::nordheim::schottky_lowering(field, 3.9).as_ev();
        assert!(
            (pf / schottky - 2.0).abs() < 1e-9,
            "ratio {}",
            pf / schottky
        );
    }

    #[test]
    fn hotter_traps_leak_more() {
        let cold = PooleFrenkelModel::new(
            Energy::from_ev(1.0),
            3.9,
            1.0e-7,
            Temperature::from_kelvin(250.0),
        );
        let hot = PooleFrenkelModel::new(
            Energy::from_ev(1.0),
            3.9,
            1.0e-7,
            Temperature::from_kelvin(400.0),
        );
        let e = ElectricField::from_volts_per_meter(5.0e8);
        assert!(
            hot.current_density(e).as_amps_per_square_meter()
                > cold.current_density(e).as_amps_per_square_meter()
        );
    }

    #[test]
    fn pf_dominates_fn_at_low_field_not_high() {
        // The SILC signature: trap conduction wins at read-level fields,
        // FN wins at programming fields.
        use crate::fn_model::FnModel;
        use gnr_units::Mass;
        let pf = model();
        let fnm = FnModel::new(Energy::from_ev(3.15), Mass::from_electron_masses(0.42));
        let low = ElectricField::from_volts_per_meter(3.0e8);
        let high = ElectricField::from_volts_per_meter(1.6e9);
        assert!(
            pf.current_density(low).as_amps_per_square_meter()
                > fnm.current_density(low).as_amps_per_square_meter()
        );
        assert!(
            pf.current_density(high).as_amps_per_square_meter()
                < fnm.current_density(high).as_amps_per_square_meter()
        );
    }

    #[test]
    fn odd_and_zero_at_zero() {
        let m = model();
        let e = ElectricField::from_volts_per_meter(4.0e8);
        let sum = m.current_density(e).as_amps_per_square_meter()
            + m.current_density(-e).as_amps_per_square_meter();
        assert!(sum.abs() < 1e-18);
        assert_eq!(
            m.current_density(ElectricField::ZERO)
                .as_amps_per_square_meter(),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "trap depth")]
    fn invalid_trap_depth_panics() {
        let _ = PooleFrenkelModel::new(Energy::from_ev(0.0), 3.9, 1e-7, Temperature::room());
    }
}
