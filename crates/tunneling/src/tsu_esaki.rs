//! Tsu–Esaki supply-function tunneling current.
//!
//! The analytic FN law compresses the emitter statistics into the `A·E²`
//! prefactor. This module computes the current from first principles —
//! the WKB transmission of [`crate::wkb`] weighted by the thermal supply
//! function:
//!
//! ```text
//! J = (q·m_e·k_B·T)/(2π²·ħ³) · ∫ T(E_x)·ln(1 + exp(−(E_x)/k_B·T)) dE_x
//! ```
//!
//! (energies measured from the emitter Fermi level; the collector-side
//! term of the full Tsu–Esaki kernel vanishes at FN biases where the
//! collector states are far below). Used by the model-ablation bench to
//! bound the error of the analytic law's prefactor.

use gnr_numerics::integrate::gauss_legendre_composite;
use gnr_units::constants::{BOLTZMANN, ELEMENTARY_CHARGE, REDUCED_PLANCK};
use gnr_units::{CurrentDensity, ElectricField, Energy, Length, Mass, Temperature};

use crate::wkb::BarrierProfile;

/// Tsu–Esaki current evaluator over a triangular/trapezoidal barrier.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TsuEsakiModel {
    barrier: Energy,
    thickness: Length,
    /// Effective mass inside the oxide (transmission).
    m_ox: Mass,
    /// Effective mass in the emitter (supply function).
    m_emitter: Mass,
    temperature: Temperature,
}

impl TsuEsakiModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics when the barrier, thickness, either mass or temperature is
    /// non-positive.
    #[must_use]
    pub fn new(
        barrier: Energy,
        thickness: Length,
        m_ox: Mass,
        m_emitter: Mass,
        temperature: Temperature,
    ) -> Self {
        assert!(barrier.as_joules() > 0.0, "barrier must be positive");
        assert!(thickness.as_meters() > 0.0, "thickness must be positive");
        assert!(m_ox.as_kilograms() > 0.0, "oxide mass must be positive");
        assert!(
            m_emitter.as_kilograms() > 0.0,
            "emitter mass must be positive"
        );
        assert!(
            temperature.as_kelvin() > 0.0,
            "temperature must be positive"
        );
        Self {
            barrier,
            thickness,
            m_ox,
            m_emitter,
            temperature,
        }
    }

    /// Free-electron emitter at room temperature — the standard
    /// validation configuration.
    #[must_use]
    pub fn free_emitter(barrier: Energy, thickness: Length, m_ox: Mass) -> Self {
        Self::new(
            barrier,
            thickness,
            m_ox,
            Mass::from_electron_masses(1.0),
            Temperature::room(),
        )
    }

    /// Current density magnitude at a field magnitude.
    ///
    /// Integrates the transmission × supply product from 1 eV below the
    /// Fermi level (the supply window) to just above the barrier top
    /// (where `T → 1` but supply is exponentially gone).
    #[must_use]
    pub fn current_density(&self, field: ElectricField) -> CurrentDensity {
        let e_mag = field.as_volts_per_meter().abs();
        if e_mag == 0.0 {
            return CurrentDensity::ZERO;
        }
        let profile = BarrierProfile::ideal(
            self.barrier,
            self.thickness,
            ElectricField::from_volts_per_meter(e_mag),
        );
        let kt = BOLTZMANN * self.temperature.as_kelvin();
        let lo = -ELEMENTARY_CHARGE; // 1 eV below the Fermi level
        let hi = self.barrier.as_joules() + 10.0 * kt;

        let integral = gauss_legendre_composite(
            |e_x| {
                let t = profile.transmission(Energy::from_joules(e_x), self.m_ox);
                let x = -e_x / kt;
                // ln(1 + exp(x)) with overflow-safe branches.
                let supply = if x > 500.0 {
                    x
                } else if x < -500.0 {
                    0.0
                } else {
                    x.exp().ln_1p()
                };
                t * supply
            },
            lo,
            hi,
            160,
        );

        let prefactor = ELEMENTARY_CHARGE * self.m_emitter.as_kilograms() * kt
            / (2.0 * core::f64::consts::PI * core::f64::consts::PI * REDUCED_PLANCK.powi(3));
        CurrentDensity::from_amps_per_square_meter(prefactor * integral)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fn_model::FnModel;

    fn model() -> TsuEsakiModel {
        TsuEsakiModel::free_emitter(
            Energy::from_ev(3.15),
            Length::from_nanometers(5.0),
            Mass::from_electron_masses(0.42),
        )
    }

    #[test]
    fn agrees_with_analytic_fn_within_an_order_of_magnitude() {
        // The analytic FN prefactor assumes a degenerate free-electron
        // emitter; the numeric supply integral should land within ~10x
        // across the FN field range.
        let te = model();
        let fn_model = FnModel::new(Energy::from_ev(3.15), Mass::from_electron_masses(0.42));
        for e in [1.0e9, 1.4e9, 1.8e9] {
            let field = ElectricField::from_volts_per_meter(e);
            let j_te = te.current_density(field).as_amps_per_square_meter();
            let j_fn = fn_model.current_density(field).as_amps_per_square_meter();
            let ratio = j_te / j_fn;
            assert!(
                (0.05..20.0).contains(&ratio),
                "E = {e:e}: Tsu-Esaki {j_te:e} vs FN {j_fn:e} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn reproduces_the_fn_slope() {
        // ln(J/E²) vs 1/E of the numeric current must have the same slope
        // (B coefficient) as the analytic law within a few percent.
        let te = model();
        let fn_model = FnModel::new(Energy::from_ev(3.15), Mass::from_electron_masses(0.42));
        let e1 = 1.0e9;
        let e2 = 1.6e9;
        let slope = |j1: f64, j2: f64| {
            ((j2 / (e2 * e2)).ln() - (j1 / (e1 * e1)).ln()) / (1.0 / e2 - 1.0 / e1)
        };
        let s_te = slope(
            te.current_density(ElectricField::from_volts_per_meter(e1))
                .as_amps_per_square_meter(),
            te.current_density(ElectricField::from_volts_per_meter(e2))
                .as_amps_per_square_meter(),
        );
        let s_fn = -fn_model.coefficients().b;
        assert!(
            ((s_te - s_fn) / s_fn).abs() < 0.08,
            "slope {s_te:e} vs analytic {s_fn:e}"
        );
    }

    #[test]
    fn current_increases_with_temperature() {
        let cold = TsuEsakiModel::new(
            Energy::from_ev(3.15),
            Length::from_nanometers(5.0),
            Mass::from_electron_masses(0.42),
            Mass::from_electron_masses(1.0),
            Temperature::from_kelvin(250.0),
        );
        let hot = TsuEsakiModel::new(
            Energy::from_ev(3.15),
            Length::from_nanometers(5.0),
            Mass::from_electron_masses(0.42),
            Mass::from_electron_masses(1.0),
            Temperature::from_kelvin(400.0),
        );
        let field = ElectricField::from_volts_per_meter(1.2e9);
        assert!(
            hot.current_density(field).as_amps_per_square_meter()
                > cold.current_density(field).as_amps_per_square_meter()
        );
    }

    #[test]
    fn zero_field_zero_current() {
        assert_eq!(
            model()
                .current_density(ElectricField::ZERO)
                .as_amps_per_square_meter(),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn zero_temperature_rejected() {
        let _ = TsuEsakiModel::new(
            Energy::from_ev(3.15),
            Length::from_nanometers(5.0),
            Mass::from_electron_masses(0.42),
            Mass::from_electron_masses(1.0),
            Temperature::from_kelvin(0.0),
        );
    }
}
