//! The analytic Fowler–Nordheim tunneling law — eq. (1)/(4) of the paper.
//!
//! # Formula and conventions
//!
//! The WKB result for a triangular barrier (Lenzlinger–Snow 1969):
//!
//! ```text
//! J(E) = A·E²·exp(−B/E)
//! A = q³ m₀ / (8π h m_ox ΦB)       [A/V²]
//! B = 4 √(2 m_ox) ΦB^{3/2} / (3 ħ q)   [V/m]
//! ```
//!
//! The paper prints `A = q³/(16π²ħΦB)`, which equals `q³/(8πhΦB)` — the
//! same expression without the `m₀/m_ox` prefactor (a common
//! simplification), and `B = (4/3)(2m_ox)^{1/2}ΦB^{3/2}/(qh)` where the
//! `h` is a typo for `ħ`: with literal `h` the SiO₂ benchmark value
//! `B ≈ 2.5 × 10¹⁰ V/m` is missed by 2π. Both constructors are provided;
//! [`FnModel::from_interface`] uses the full Lenzlinger–Snow form,
//! [`FnModel::paper_form`] reproduces the paper's printed prefactor
//! (with ħ in `B`).

use gnr_materials::interface::TunnelInterface;
use gnr_units::constants::{BOLTZMANN, ELECTRON_MASS, ELEMENTARY_CHARGE, PLANCK, REDUCED_PLANCK};
use gnr_units::{CurrentDensity, ElectricField, Energy, Mass, Temperature};

use crate::models::TunnelingModel;

/// The `(A, B)` coefficient pair of `J = A E² exp(−B/E)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FnCoefficients {
    /// Pre-exponential coefficient `A` in A/V².
    pub a: f64,
    /// Exponential slope coefficient `B` in V/m.
    pub b: f64,
}

impl FnCoefficients {
    /// Computes the Lenzlinger–Snow coefficients (with mass correction in
    /// `A`) from a barrier height and effective oxide mass.
    ///
    /// # Panics
    ///
    /// Panics when the barrier or mass is non-positive.
    #[must_use]
    pub fn lenzlinger_snow(barrier: Energy, m_ox: Mass) -> Self {
        let phi = barrier.as_joules();
        let m = m_ox.as_kilograms();
        assert!(phi > 0.0, "barrier must be positive");
        assert!(m > 0.0, "effective mass must be positive");
        let q = ELEMENTARY_CHARGE;
        let a = q.powi(3) * ELECTRON_MASS / (8.0 * core::f64::consts::PI * PLANCK * m * phi);
        let b = 4.0 * (2.0 * m).sqrt() * phi.powf(1.5) / (3.0 * REDUCED_PLANCK * q);
        Self { a, b }
    }

    /// Computes the coefficients exactly as printed in the paper's eq. (4):
    /// `A = q³/(16π²ħΦB)` (no mass correction) and
    /// `B = (4/3)(2 m_ox)^{1/2} ΦB^{3/2}/(q ħ)`.
    ///
    /// # Panics
    ///
    /// Panics when the barrier or mass is non-positive.
    #[must_use]
    pub fn paper_form(barrier: Energy, m_ox: Mass) -> Self {
        let phi = barrier.as_joules();
        let m = m_ox.as_kilograms();
        assert!(phi > 0.0, "barrier must be positive");
        assert!(m > 0.0, "effective mass must be positive");
        let q = ELEMENTARY_CHARGE;
        let a = q.powi(3)
            / (16.0 * core::f64::consts::PI * core::f64::consts::PI * REDUCED_PLANCK * phi);
        let b = 4.0 / 3.0 * (2.0 * m).sqrt() * phi.powf(1.5) / (q * REDUCED_PLANCK);
        Self { a, b }
    }
}

/// The analytic Fowler–Nordheim tunneling model for one interface.
///
/// # Example
///
/// The SiO₂ benchmark: `B ≈ 2.4–2.6 × 10¹⁰ V/m` for the Si/SiO₂ barrier.
///
/// ```
/// use gnr_tunneling::fn_model::FnModel;
/// use gnr_units::{Energy, Mass};
///
/// let model = FnModel::new(Energy::from_ev(3.15), Mass::from_electron_masses(0.42));
/// let b = model.coefficients().b;
/// assert!(b > 2.3e10 && b < 2.7e10, "B = {b:e}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FnModel {
    barrier: Energy,
    m_ox: Mass,
    coeffs: FnCoefficients,
}

impl FnModel {
    /// Creates the model from a barrier height and effective mass using
    /// the full Lenzlinger–Snow coefficients.
    ///
    /// # Panics
    ///
    /// Panics when the barrier or mass is non-positive.
    #[must_use]
    pub fn new(barrier: Energy, m_ox: Mass) -> Self {
        Self {
            barrier,
            m_ox,
            coeffs: FnCoefficients::lenzlinger_snow(barrier, m_ox),
        }
    }

    /// Creates the model from a material interface.
    #[must_use]
    pub fn from_interface(interface: &TunnelInterface) -> Self {
        Self::new(interface.barrier_height(), interface.effective_mass())
    }

    /// Creates the model with the paper's printed eq. (4) prefactor
    /// (no `m₀/m_ox` correction in `A`).
    ///
    /// # Panics
    ///
    /// Panics when the barrier or mass is non-positive.
    #[must_use]
    pub fn paper_form(barrier: Energy, m_ox: Mass) -> Self {
        Self {
            barrier,
            m_ox,
            coeffs: FnCoefficients::paper_form(barrier, m_ox),
        }
    }

    /// The barrier height `ΦB`.
    #[must_use]
    pub fn barrier(&self) -> Energy {
        self.barrier
    }

    /// The effective oxide mass `m_ox`.
    #[must_use]
    pub fn effective_mass(&self) -> Mass {
        self.m_ox
    }

    /// The `(A, B)` coefficients in use.
    #[must_use]
    pub fn coefficients(&self) -> FnCoefficients {
        self.coeffs
    }

    /// Signed current density at a signed field: electrons tunnel in the
    /// direction of the force, `J(−E) = −J(E)`; `J(0) = 0`.
    #[must_use]
    pub fn current_density(&self, field: ElectricField) -> CurrentDensity {
        let e = field.as_volts_per_meter();
        if e == 0.0 {
            return CurrentDensity::ZERO;
        }
        let mag = self.coeffs.a * e * e * (-self.coeffs.b / e.abs()).exp();
        CurrentDensity::from_amps_per_square_meter(e.signum() * mag)
    }

    /// Current density with the Lenzlinger–Snow finite-temperature
    /// correction factor `πckT / sin(πckT)`, where
    /// `c = 2·√(2·m_ox·ΦB) / (ħ·q·|E|)`.
    ///
    /// The factor is a few percent at room temperature and grows with
    /// `T/E`; it diverges as `πckT → π` (thermionic regime) — the factor
    /// is clamped at `πckT = 0.95π` and the model should not be trusted
    /// near that limit.
    #[must_use]
    pub fn current_density_at(
        &self,
        field: ElectricField,
        temperature: Temperature,
    ) -> CurrentDensity {
        let j0 = self.current_density(field);
        let e = field.as_volts_per_meter().abs();
        if e == 0.0 {
            return j0;
        }
        let c = 2.0 * (2.0 * self.m_ox.as_kilograms() * self.barrier.as_joules()).sqrt()
            / (REDUCED_PLANCK * ELEMENTARY_CHARGE * e)
            * ELEMENTARY_CHARGE; // per joule → per (J of kT): c·kT dimensionless
        let x = (core::f64::consts::PI * c * BOLTZMANN * temperature.as_kelvin()
            / ELEMENTARY_CHARGE)
            .min(0.95 * core::f64::consts::PI);
        let factor = if x == 0.0 { 1.0 } else { x / x.sin() };
        j0 * factor
    }

    /// The field at which `J` reaches the given magnitude (inverse of the
    /// J–E curve), found by bisection on the monotone branch.
    ///
    /// Returns `None` when the target is non-positive or unreachable below
    /// 100 GV/m.
    #[must_use]
    pub fn field_for_current_density(&self, target: CurrentDensity) -> Option<ElectricField> {
        let t = target.as_amps_per_square_meter();
        if t <= 0.0 {
            return None;
        }
        let f = |e: f64| self.coeffs.a * e * e * (-self.coeffs.b / e).exp() - t;
        let hi = 1.0e11;
        if f(hi) < 0.0 {
            return None;
        }
        let lo = 1.0e3;
        if f(lo) > 0.0 {
            return Some(ElectricField::from_volts_per_meter(lo));
        }
        gnr_numerics::roots::brent(f, lo, hi, 1e-3, 200)
            .ok()
            .map(ElectricField::from_volts_per_meter)
    }
}

impl TunnelingModel for FnModel {
    fn current_density(&self, field: ElectricField) -> CurrentDensity {
        FnModel::current_density(self, field)
    }

    fn name(&self) -> &'static str {
        "fowler-nordheim"
    }
}

/// The `(k₁, k₂)` constants of the paper's eq. (1),
/// `J = k₁·E²/ΦB · exp(−k₂·ΦB^{3/2}/E)`: `k₁ = q³/(8πh)` (A·J/V²) and
/// `k₂ = 4√(2m_ox)/(3ħq)` (V/m per J^{3/2}).
#[must_use]
pub fn paper_eq1_constants(m_ox: Mass) -> (f64, f64) {
    let q = ELEMENTARY_CHARGE;
    let k1 = q.powi(3) / (8.0 * core::f64::consts::PI * PLANCK);
    let k2 = 4.0 * (2.0 * m_ox.as_kilograms()).sqrt() / (3.0 * REDUCED_PLANCK * q);
    (k1, k2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn si_sio2() -> FnModel {
        FnModel::new(Energy::from_ev(3.15), Mass::from_electron_masses(0.42))
    }

    #[test]
    fn b_coefficient_matches_sio2_benchmark() {
        // Known: B ≈ 2.54e10 V/m at ΦB = 3.2 eV, m = 0.42 m0.
        let m = FnModel::new(Energy::from_ev(3.2), Mass::from_electron_masses(0.42));
        assert!((m.coefficients().b - 2.54e10).abs() / 2.54e10 < 0.02);
    }

    #[test]
    fn a_coefficient_matches_sio2_benchmark() {
        // Known: A = 1.54e-6 (m0/m_ox)/Φ_eV ≈ 1.15e-6 A/V² at 3.2 eV, 0.42 m0.
        let m = FnModel::new(Energy::from_ev(3.2), Mass::from_electron_masses(0.42));
        assert!((m.coefficients().a - 1.146e-6).abs() / 1.146e-6 < 0.02);
    }

    #[test]
    fn paper_form_omits_mass_correction() {
        let full =
            FnCoefficients::lenzlinger_snow(Energy::from_ev(3.2), Mass::from_electron_masses(0.42));
        let paper =
            FnCoefficients::paper_form(Energy::from_ev(3.2), Mass::from_electron_masses(0.42));
        // Same B, A differs by exactly m0/m_ox.
        assert!((full.b - paper.b).abs() / full.b < 1e-12);
        assert!((full.a / paper.a - 1.0 / 0.42).abs() < 1e-9);
    }

    #[test]
    fn current_at_10mv_per_cm_is_physical() {
        // FN current of Si/SiO2 at 10 MV/cm is ~1e-5..1e-3 A/cm² in the
        // literature; the analytic model should land in that window.
        let j = si_sio2().current_density(ElectricField::from_megavolts_per_centimeter(10.0));
        let j_acm2 = j.as_amps_per_square_centimeter();
        assert!(j_acm2 > 1e-6 && j_acm2 < 1e-2, "J = {j_acm2:e} A/cm²");
    }

    #[test]
    fn current_is_odd_in_field() {
        let m = si_sio2();
        let e = ElectricField::from_volts_per_meter(1.2e9);
        let fwd = m.current_density(e);
        let rev = m.current_density(-e);
        assert!(fwd.as_amps_per_square_meter() > 0.0);
        assert!((fwd.as_amps_per_square_meter() + rev.as_amps_per_square_meter()).abs() < 1e-20);
    }

    #[test]
    fn zero_field_zero_current() {
        assert_eq!(
            si_sio2()
                .current_density(ElectricField::ZERO)
                .as_amps_per_square_meter(),
            0.0
        );
    }

    #[test]
    fn current_monotone_in_field() {
        let m = si_sio2();
        let mut prev = 0.0;
        for i in 1..=40 {
            let e = ElectricField::from_volts_per_meter(2.0e8 + 5.0e7 * f64::from(i));
            let j = m.current_density(e).as_amps_per_square_meter();
            assert!(j > prev, "not monotone at step {i}");
            prev = j;
        }
    }

    #[test]
    fn higher_barrier_suppresses_current() {
        // §II: "higher ΦB leads to significantly lower JFN".
        let lo = FnModel::new(Energy::from_ev(3.0), Mass::from_electron_masses(0.42));
        let hi = FnModel::new(Energy::from_ev(3.6), Mass::from_electron_masses(0.42));
        let e = ElectricField::from_volts_per_meter(1.0e9);
        let ratio = lo.current_density(e) / hi.current_density(e);
        assert!(ratio > 100.0, "ratio = {ratio}");
    }

    #[test]
    fn temperature_correction_is_small_and_increasing() {
        let m = si_sio2();
        let e = ElectricField::from_volts_per_meter(1.0e9);
        let j0 = m.current_density(e).as_amps_per_square_meter();
        let j300 = m
            .current_density_at(e, Temperature::from_kelvin(300.0))
            .as_amps_per_square_meter();
        let j400 = m
            .current_density_at(e, Temperature::from_kelvin(400.0))
            .as_amps_per_square_meter();
        assert!(j300 > j0);
        assert!(j400 > j300);
        assert!(j300 / j0 < 1.3, "300K correction = {}", j300 / j0);
    }

    #[test]
    fn field_for_current_round_trips() {
        let m = si_sio2();
        let e = ElectricField::from_volts_per_meter(9.0e8);
        let j = m.current_density(e);
        let back = m.field_for_current_density(j).expect("reachable");
        assert!((back.as_volts_per_meter() - 9.0e8).abs() / 9.0e8 < 1e-6);
    }

    #[test]
    fn field_for_unreachable_current_is_none() {
        let m = si_sio2();
        assert!(m
            .field_for_current_density(CurrentDensity::from_amps_per_square_meter(-1.0))
            .is_none());
    }

    #[test]
    fn eq1_constants_reconstruct_eq4() {
        let m_ox = Mass::from_electron_masses(0.42);
        let phi = Energy::from_ev(3.2);
        let (k1, k2) = paper_eq1_constants(m_ox);
        let c = FnCoefficients::lenzlinger_snow(phi, m_ox);
        // A (without mass correction) = k1/Φ; B = k2 Φ^{3/2}.
        let a_paper = k1 / phi.as_joules();
        assert!((a_paper - FnCoefficients::paper_form(phi, m_ox).a).abs() / a_paper < 1e-12);
        assert!((k2 * phi.pow_three_halves() - c.b).abs() / c.b < 1e-12);
    }

    #[test]
    #[should_panic(expected = "barrier must be positive")]
    fn non_positive_barrier_panics() {
        let _ = FnModel::new(Energy::from_ev(0.0), Mass::from_electron_masses(0.42));
    }
}
