//! Fowler–Nordheim plot generation and parameter extraction.
//!
//! Plotting `ln(J/E²)` against `1/E` linearises the FN law:
//!
//! ```text
//! ln(J/E²) = ln A − B·(1/E)
//! ```
//!
//! The paper (§IV, ref. [9] Chiou–Gambino–Mohammad 2001) notes that `A`
//! and `B` "can be derived from FN plot". This module generates plot
//! points from any model and extracts `(A, B)` — and from `B`, the barrier
//! height for a known mass (or vice versa) — with regression statistics.

use gnr_numerics::regression::{fit_line, LinearFit};
use gnr_units::constants::{ELEMENTARY_CHARGE, REDUCED_PLANCK};
use gnr_units::{ElectricField, Energy, Mass};

use crate::models::TunnelingModel;

/// One FN-plot point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FnPlotPoint {
    /// Abscissa `1/E` in m/V.
    pub inverse_field: f64,
    /// Ordinate `ln(J/E²)` with J in A/m² and E in V/m.
    pub ln_j_over_e2: f64,
}

/// Extraction result: the `(A, B)` pair and the underlying fit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExtractedFnParams {
    /// Extracted pre-exponential `A` (A/V²).
    pub a: f64,
    /// Extracted slope coefficient `B` (V/m).
    pub b: f64,
    /// Regression diagnostics.
    pub fit: LinearFit,
}

/// Generates FN-plot points by evaluating `model` at the given fields.
///
/// Fields with non-positive forward current are skipped (their logarithm
/// is undefined) — callers sweeping into the sub-threshold region simply
/// get fewer points.
#[must_use]
pub fn generate_plot<M: TunnelingModel + ?Sized>(
    model: &M,
    fields: &[ElectricField],
) -> Vec<FnPlotPoint> {
    fields
        .iter()
        .filter_map(|&e| {
            let ev = e.as_volts_per_meter();
            if ev <= 0.0 {
                return None;
            }
            let j = model.current_density(e).as_amps_per_square_meter();
            if j <= 0.0 {
                return None;
            }
            Some(FnPlotPoint {
                inverse_field: 1.0 / ev,
                ln_j_over_e2: (j / (ev * ev)).ln(),
            })
        })
        .collect()
}

/// Extracts `(A, B)` from FN-plot points by least squares.
///
/// # Errors
///
/// Propagates [`gnr_numerics::NumericsError`] for degenerate inputs
/// (fewer than two points, constant abscissae).
pub fn extract_params(
    points: &[FnPlotPoint],
) -> core::result::Result<ExtractedFnParams, gnr_numerics::NumericsError> {
    let xs: Vec<f64> = points.iter().map(|p| p.inverse_field).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.ln_j_over_e2).collect();
    let fit = fit_line(&xs, &ys)?;
    Ok(ExtractedFnParams {
        a: fit.intercept.exp(),
        b: -fit.slope,
        fit,
    })
}

/// Infers the barrier height from an extracted `B` and a known effective
/// mass: inverts `B = 4·√(2·m_ox)·ΦB^{3/2}/(3·ħ·q)`.
///
/// # Panics
///
/// Panics when `b` or the mass is non-positive.
#[must_use]
pub fn barrier_from_b(b: f64, m_ox: Mass) -> Energy {
    assert!(b > 0.0, "B must be positive");
    let m = m_ox.as_kilograms();
    assert!(m > 0.0, "mass must be positive");
    let phi32 = 3.0 * REDUCED_PLANCK * ELEMENTARY_CHARGE * b / (4.0 * (2.0 * m).sqrt());
    Energy::from_joules(phi32.powf(2.0 / 3.0))
}

/// Infers the effective mass from an extracted `B` and a known barrier:
/// the complementary inversion to [`barrier_from_b`].
///
/// # Panics
///
/// Panics when `b` or the barrier is non-positive.
#[must_use]
pub fn mass_from_b(b: f64, barrier: Energy) -> Mass {
    assert!(b > 0.0, "B must be positive");
    let phi = barrier.as_joules();
    assert!(phi > 0.0, "barrier must be positive");
    let sqrt_2m = 3.0 * REDUCED_PLANCK * ELEMENTARY_CHARGE * b / (4.0 * phi.powf(1.5));
    Mass::from_kilograms(sqrt_2m * sqrt_2m / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fn_model::FnModel;

    fn fields() -> Vec<ElectricField> {
        (0..30)
            .map(|i| ElectricField::from_volts_per_meter(6.0e8 + 4.0e7 * f64::from(i)))
            .collect()
    }

    #[test]
    fn extraction_round_trips_exact_fn_model() {
        let model = FnModel::new(Energy::from_ev(3.2), Mass::from_electron_masses(0.42));
        let pts = generate_plot(&model, &fields());
        let ex = extract_params(&pts).unwrap();
        let c = model.coefficients();
        assert!((ex.a - c.a).abs() / c.a < 1e-6, "A: {} vs {}", ex.a, c.a);
        assert!((ex.b - c.b).abs() / c.b < 1e-9, "B: {} vs {}", ex.b, c.b);
        assert!(ex.fit.r_squared > 0.999_999);
    }

    #[test]
    fn barrier_recovered_from_extracted_slope() {
        let model = FnModel::new(Energy::from_ev(3.4), Mass::from_electron_masses(0.42));
        let pts = generate_plot(&model, &fields());
        let ex = extract_params(&pts).unwrap();
        let phi = barrier_from_b(ex.b, Mass::from_electron_masses(0.42));
        assert!((phi.as_ev() - 3.4).abs() < 1e-6, "ΦB = {}", phi.as_ev());
    }

    #[test]
    fn mass_recovered_from_extracted_slope() {
        let model = FnModel::new(Energy::from_ev(3.2), Mass::from_electron_masses(0.5));
        let pts = generate_plot(&model, &fields());
        let ex = extract_params(&pts).unwrap();
        let m = mass_from_b(ex.b, Energy::from_ev(3.2));
        assert!((m.as_electron_masses() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn non_positive_fields_skipped() {
        let model = FnModel::new(Energy::from_ev(3.2), Mass::from_electron_masses(0.42));
        let mixed = vec![
            ElectricField::from_volts_per_meter(-1.0e9),
            ElectricField::ZERO,
            ElectricField::from_volts_per_meter(1.0e9),
        ];
        let pts = generate_plot(&model, &mixed);
        assert_eq!(pts.len(), 1);
    }

    #[test]
    fn too_few_points_is_an_error() {
        let pts = vec![FnPlotPoint {
            inverse_field: 1e-9,
            ln_j_over_e2: -40.0,
        }];
        assert!(extract_params(&pts).is_err());
    }

    #[test]
    fn inversions_are_mutually_consistent() {
        let b = 2.54e10;
        let m = Mass::from_electron_masses(0.42);
        let phi = barrier_from_b(b, m);
        let m_back = mass_from_b(b, phi);
        assert!((m_back.as_electron_masses() - 0.42).abs() < 1e-9);
    }
}
