//! The pluggable tunneling-model trait.

use gnr_units::{CurrentDensity, ElectricField};

/// A tunneling current model `J(E)`.
///
/// Object-safe so the device simulator can swap models at runtime (the
/// "analytic FN vs numeric WKB vs image-force FN" ablation bench drives
/// the same transient through each implementation).
///
/// Implementations must be odd in the field
/// (`J(−E) = −J(E)`) and return zero at zero field.
pub trait TunnelingModel: Send + Sync {
    /// Signed current density at a signed oxide field.
    fn current_density(&self, field: ElectricField) -> CurrentDensity;

    /// Short model name for reports and benches.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Linear;
    impl TunnelingModel for Linear {
        fn current_density(&self, field: ElectricField) -> CurrentDensity {
            CurrentDensity::from_amps_per_square_meter(field.as_volts_per_meter() * 1e-9)
        }
        fn name(&self) -> &'static str {
            "linear-test"
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let m: Box<dyn TunnelingModel> = Box::new(Linear);
        let j = m.current_density(ElectricField::from_volts_per_meter(2.0));
        assert_eq!(j.as_amps_per_square_meter(), 2.0e-9);
        assert_eq!(m.name(), "linear-test");
    }
}
