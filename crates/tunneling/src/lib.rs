//! # gnr-tunneling
//!
//! Tunneling physics for the `gnr-flash` simulator (reproduction of
//! Hossain et al., IEEE SOCC 2014).
//!
//! The paper's programming and erase currents are Fowler–Nordheim (FN)
//! tunneling currents, eq. (4):
//!
//! ```text
//! J = A·E²·exp(−B/E),   A = q³/(16π²ħΦB)·(m₀/m_ox),
//!                        B = (4/3)·√(2·m_ox)·ΦB^{3/2}/(q·ħ)
//! ```
//!
//! This crate implements that model and everything around it:
//!
//! * [`fn_model`] — the analytic FN law with signed fields, the paper's
//!   (k₁, k₂) form of eq. (1), and the Lenzlinger–Snow temperature factor.
//! * [`nordheim`] — image-force barrier lowering and the Nordheim
//!   correction functions `v(f)`, `t(f)` (Forbes approximations).
//! * [`direct`] — trapezoidal-barrier direct tunneling for thin oxides /
//!   sub-barrier drops (the paper's §II "2–5 nm" regime).
//! * [`wkb`] — numeric WKB transmission through arbitrary barrier
//!   profiles, validating the analytic forms (ablation bench).
//! * [`che`] — the lucky-electron channel-hot-electron injection model
//!   (the NOR-flash programming mechanism of §II).
//! * [`fn_plot`] — FN-plot linearisation `ln(J/E²)` vs `1/E` and
//!   parameter extraction (paper ref. [9]).
//! * [`regime`] — FN vs direct vs negligible classification (the §II
//!   "debate" about 4–6 nm oxides).
//! * [`tsu_esaki`] — first-principles supply-function current (numeric
//!   validation of the analytic prefactor).
//!
//! # Example
//!
//! The J–E curve of the paper's tunnel oxide:
//!
//! ```
//! use gnr_materials::interface::TunnelInterface;
//! use gnr_materials::mlgnr::MultilayerGnr;
//! use gnr_materials::oxide::Oxide;
//! use gnr_tunneling::fn_model::FnModel;
//! use gnr_units::ElectricField;
//!
//! let iface = TunnelInterface::new(
//!     MultilayerGnr::paper_channel().work_function(),
//!     Oxide::silicon_dioxide(),
//! )?;
//! let model = FnModel::from_interface(&iface);
//! let j = model.current_density(ElectricField::from_volts_per_meter(1.8e9));
//! assert!(j.as_amps_per_square_meter() > 0.0);
//! # Ok::<(), gnr_materials::MaterialError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod che;
pub mod direct;
pub mod fn_model;
pub mod fn_plot;
pub mod nordheim;
pub mod poole_frenkel;
pub mod regime;
pub mod tsu_esaki;
pub mod wkb;

mod models;

pub use models::TunnelingModel;
