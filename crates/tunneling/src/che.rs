//! Channel-hot-electron (CHE) injection — the lucky-electron model.
//!
//! The paper (§II) contrasts FN programming (NAND: < 1 nA/cell, slow
//! voltage, parallel pages) with CHE programming (NOR: 0.3–1 mA/cell,
//! 4–6 V drain, 8–11 V gate). The classic lucky-electron model (Hu 1979)
//! estimates the gate-injection probability as
//!
//! ```text
//! P = exp(−ΦB / (q·λ·E_lateral))
//! I_gate = C · I_drain · P
//! ```
//!
//! with `λ` the hot-electron mean free path and `E_lateral` the peak
//! channel field near the drain. It is deliberately simple — the benches
//! use it only to reproduce the paper's order-of-magnitude FN-vs-CHE
//! comparison (programming current per cell, parallelism, energy).

use gnr_units::constants::ELEMENTARY_CHARGE;
use gnr_units::{Current, ElectricField, Energy, Length};

/// Lucky-electron CHE injection model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CheModel {
    barrier: Energy,
    mean_free_path: Length,
    collection_efficiency: f64,
}

impl CheModel {
    /// Creates the model.
    ///
    /// `collection_efficiency` is the geometric prefactor `C` (typically
    /// 10⁻²–10⁻¹ for NOR cells).
    ///
    /// # Panics
    ///
    /// Panics unless barrier and mean free path are positive and
    /// `0 < collection_efficiency ≤ 1`.
    #[must_use]
    pub fn new(barrier: Energy, mean_free_path: Length, collection_efficiency: f64) -> Self {
        assert!(barrier.as_joules() > 0.0, "barrier must be positive");
        assert!(
            mean_free_path.as_meters() > 0.0,
            "mean free path must be positive"
        );
        assert!(
            collection_efficiency > 0.0 && collection_efficiency <= 1.0,
            "collection efficiency must be in (0, 1]"
        );
        Self {
            barrier,
            mean_free_path,
            collection_efficiency,
        }
    }

    /// A conventional NOR-cell preset: Si/SiO₂ barrier 3.15 eV, hot-electron
    /// mean free path 9.2 nm (Hu's silicon value), 5 % collection.
    #[must_use]
    pub fn silicon_nor_cell() -> Self {
        Self::new(Energy::from_ev(3.15), Length::from_nanometers(9.2), 0.05)
    }

    /// Injection probability at a given peak lateral field.
    #[must_use]
    pub fn injection_probability(&self, lateral_field: ElectricField) -> f64 {
        let e = lateral_field.as_volts_per_meter().abs();
        if e == 0.0 {
            return 0.0;
        }
        let exponent =
            self.barrier.as_joules() / (ELEMENTARY_CHARGE * self.mean_free_path.as_meters() * e);
        (-exponent).exp()
    }

    /// Gate injection current for a drain current and lateral field.
    #[must_use]
    pub fn gate_current(&self, drain_current: Current, lateral_field: ElectricField) -> Current {
        Current::from_amps(
            drain_current.as_amps()
                * self.collection_efficiency
                * self.injection_probability(lateral_field),
        )
    }

    /// Programming energy per cell for a pulse of the given width — the
    /// figure of merit in the paper's FN-vs-CHE discussion (CHE draws mA
    /// of channel current; FN draws < 1 nA).
    #[must_use]
    pub fn programming_energy_joules(
        &self,
        drain_current: Current,
        drain_voltage_v: f64,
        pulse_seconds: f64,
    ) -> f64 {
        drain_current.as_amps().abs() * drain_voltage_v.abs() * pulse_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_grows_with_field() {
        let m = CheModel::silicon_nor_cell();
        let p_low = m.injection_probability(ElectricField::from_volts_per_meter(2.0e7));
        let p_high = m.injection_probability(ElectricField::from_volts_per_meter(8.0e7));
        assert!(p_high > p_low);
        assert!(p_low > 0.0);
    }

    #[test]
    fn probability_zero_at_zero_field() {
        let m = CheModel::silicon_nor_cell();
        assert_eq!(m.injection_probability(ElectricField::ZERO), 0.0);
    }

    #[test]
    fn gate_current_is_tiny_fraction_of_drain_current() {
        // NOR reality: mA drain current, sub-µA gate injection.
        let m = CheModel::silicon_nor_cell();
        let i_d = Current::from_milliamps(0.5);
        let i_g = m.gate_current(i_d, ElectricField::from_volts_per_meter(5.0e7));
        assert!(i_g.as_amps() > 0.0);
        assert!(i_g.as_amps() < 1e-2 * i_d.as_amps());
    }

    #[test]
    fn che_energy_dwarfs_fn_energy() {
        // Paper §II: CHE draws 0.3–1 mA at 4–6 V; FN draws < 1 nA at ~15 V.
        let m = CheModel::silicon_nor_cell();
        let che = m.programming_energy_joules(Current::from_milliamps(0.5), 5.0, 1e-6);
        let fn_energy = 1e-9 * 15.0 * 1e-6; // 1 nA × 15 V × 1 µs
        assert!(che / fn_energy > 1e4, "ratio = {}", che / fn_energy);
    }

    #[test]
    fn invalid_parameters_panic() {
        use std::panic::catch_unwind;
        assert!(catch_unwind(|| CheModel::new(
            Energy::from_ev(0.0),
            Length::from_nanometers(9.0),
            0.05
        ))
        .is_err());
        assert!(catch_unwind(|| CheModel::new(
            Energy::from_ev(3.0),
            Length::from_nanometers(9.0),
            1.5
        ))
        .is_err());
    }
}
