//! Tunneling-regime classification.
//!
//! §II of the paper: FN tunneling dominates for oxides ≳ 4–6 nm at high
//! field (the triangular barrier must terminate inside the oxide, i.e.
//! `q·V_ox > ΦB`); direct tunneling takes over for ultra-thin films
//! (2–5 nm) or sub-barrier drops; below ~1 MV/cm either current is
//! negligible on programming timescales.

use gnr_materials::interface::TunnelInterface;
use gnr_units::{ElectricField, Length, Voltage};

/// The dominant conduction mechanism for a film under bias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TunnelingRegime {
    /// Triangular-barrier Fowler–Nordheim tunneling (`q·V_ox > ΦB`, film
    /// thick enough that carriers enter the oxide conduction band).
    FowlerNordheim,
    /// Trapezoidal-barrier direct tunneling (thin film or sub-barrier
    /// drop).
    Direct,
    /// Field too low for appreciable current on device timescales.
    Negligible,
}

/// Field below which tunneling is treated as negligible (1 MV/cm).
pub const NEGLIGIBLE_FIELD: f64 = 1.0e8;

/// Film thickness below which direct tunneling dominates regardless of
/// drop (the paper's "ultra-thin oxide layers (2–5 nm)"; the FN-dominance
/// threshold claimed by ref. [1] is ≥ 4 nm).
pub const DIRECT_THICKNESS_LIMIT_NM: f64 = 4.0;

/// Classifies the regime for a film of `thickness` under a drop `v_ox`.
#[must_use]
pub fn classify(interface: &TunnelInterface, thickness: Length, v_ox: Voltage) -> TunnelingRegime {
    let field = (v_ox.abs() / thickness).as_volts_per_meter();
    if field < NEGLIGIBLE_FIELD {
        return TunnelingRegime::Negligible;
    }
    let barrier_volts = interface.barrier_height().as_ev();
    if thickness.as_nanometers() < DIRECT_THICKNESS_LIMIT_NM
        || v_ox.abs().as_volts() < barrier_volts
    {
        TunnelingRegime::Direct
    } else {
        TunnelingRegime::FowlerNordheim
    }
}

/// Classifies from a field instead of a drop.
#[must_use]
pub fn classify_field(
    interface: &TunnelInterface,
    thickness: Length,
    field: ElectricField,
) -> TunnelingRegime {
    classify(interface, thickness, field.abs() * thickness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_materials::mlgnr::MultilayerGnr;
    use gnr_materials::oxide::Oxide;

    fn iface() -> TunnelInterface {
        TunnelInterface::new(
            MultilayerGnr::paper_channel().work_function(),
            Oxide::silicon_dioxide(),
        )
        .unwrap()
    }

    #[test]
    fn paper_program_point_is_fn() {
        // 9 V across 5 nm — the paper's worked example.
        let r = classify(
            &iface(),
            Length::from_nanometers(5.0),
            Voltage::from_volts(9.0),
        );
        assert_eq!(r, TunnelingRegime::FowlerNordheim);
    }

    #[test]
    fn erase_bias_symmetric() {
        let r = classify(
            &iface(),
            Length::from_nanometers(5.0),
            Voltage::from_volts(-9.0),
        );
        assert_eq!(r, TunnelingRegime::FowlerNordheim);
    }

    #[test]
    fn sub_barrier_drop_is_direct() {
        // 2 V drop < 3.6 eV barrier.
        let r = classify(
            &iface(),
            Length::from_nanometers(5.0),
            Voltage::from_volts(2.0),
        );
        assert_eq!(r, TunnelingRegime::Direct);
    }

    #[test]
    fn ultra_thin_film_is_direct_even_at_high_drop() {
        let r = classify(
            &iface(),
            Length::from_nanometers(3.0),
            Voltage::from_volts(6.0),
        );
        assert_eq!(r, TunnelingRegime::Direct);
    }

    #[test]
    fn low_field_is_negligible() {
        // 0.02 V across 5 nm = 0.04 MV/cm.
        let r = classify(
            &iface(),
            Length::from_nanometers(5.0),
            Voltage::from_volts(0.02),
        );
        assert_eq!(r, TunnelingRegime::Negligible);
    }

    #[test]
    fn field_and_drop_classifiers_agree() {
        let t = Length::from_nanometers(6.0);
        let v = Voltage::from_volts(7.0);
        let by_drop = classify(&iface(), t, v);
        let by_field = classify_field(&iface(), t, v / t);
        assert_eq!(by_drop, by_field);
    }
}
