//! Direct tunneling through a trapezoidal barrier (thin oxides or
//! sub-barrier voltage drops).
//!
//! When the oxide drop `V_ox` is *below* the barrier `ΦB/q`, electrons see
//! a trapezoidal — not triangular — barrier and emerge into the collector
//! electrode rather than the oxide conduction band. The paper (§II)
//! attributes this regime to 2–5 nm oxides at low bias. The standard
//! closed-form (Schuegraf–Hu) generalisation of the FN exponent is
//!
//! ```text
//! J = A·E²·exp(−B·[1 − (1 − qV_ox/ΦB)^{3/2}] / E) / [1 − (1 − qV_ox/ΦB)^{1/2}]²
//! ```
//!
//! which reduces *exactly* to the FN law once `qV_ox ≥ ΦB`.

use gnr_materials::interface::TunnelInterface;
use gnr_units::{CurrentDensity, ElectricField, Energy, Length, Mass, Voltage};

use crate::fn_model::FnModel;
use crate::models::TunnelingModel;

/// Direct/FN unified tunneling model for a film of fixed thickness.
///
/// Unlike the pure [`FnModel`], this model must know the film thickness:
/// the regime depends on the *drop* `V_ox = E·t_ox`, not on the field
/// alone.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DirectTunnelingModel {
    base: FnModel,
    thickness: Length,
}

impl DirectTunnelingModel {
    /// Creates the model from barrier parameters and the film thickness.
    ///
    /// # Panics
    ///
    /// Panics when `thickness` is not positive (via the same validation as
    /// the FN model for barrier/mass).
    #[must_use]
    pub fn new(barrier: Energy, m_ox: Mass, thickness: Length) -> Self {
        assert!(thickness.as_meters() > 0.0, "thickness must be positive");
        Self {
            base: FnModel::new(barrier, m_ox),
            thickness,
        }
    }

    /// Creates the model from an interface and the film thickness.
    ///
    /// # Panics
    ///
    /// Panics when `thickness` is not positive.
    #[must_use]
    pub fn from_interface(interface: &TunnelInterface, thickness: Length) -> Self {
        Self::new(
            interface.barrier_height(),
            interface.effective_mass(),
            thickness,
        )
    }

    /// Film thickness.
    #[must_use]
    pub fn thickness(&self) -> Length {
        self.thickness
    }

    /// The underlying FN model (the `qV_ox ≥ ΦB` limit).
    #[must_use]
    pub fn fn_limit(&self) -> &FnModel {
        &self.base
    }

    /// Signed current density given the signed *voltage drop* across the
    /// film.
    #[must_use]
    pub fn current_density_for_drop(&self, v_ox: Voltage) -> CurrentDensity {
        let field = v_ox / self.thickness;
        self.current_density(field)
    }
}

impl TunnelingModel for DirectTunnelingModel {
    fn current_density(&self, field: ElectricField) -> CurrentDensity {
        let e = field.as_volts_per_meter();
        if e == 0.0 {
            return CurrentDensity::ZERO;
        }
        let phi = self.base.barrier().as_joules();
        let q_vox =
            gnr_units::constants::ELEMENTARY_CHARGE * (e.abs() * self.thickness.as_meters());
        let c = self.base.coefficients();
        let mag = if q_vox >= phi {
            // Triangular barrier: exact FN.
            c.a * e * e * (-c.b / e.abs()).exp()
        } else {
            let r = 1.0 - q_vox / phi; // in (0, 1]
            let exponent_factor = 1.0 - r.powf(1.5);
            let prefactor_factor = (1.0 - r.sqrt()).powi(2).max(1e-30);
            c.a * e * e / prefactor_factor * (-c.b * exponent_factor / e.abs()).exp()
        };
        CurrentDensity::from_amps_per_square_meter(e.signum() * mag)
    }

    fn name(&self) -> &'static str {
        "direct+fn-unified"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_5nm() -> DirectTunnelingModel {
        DirectTunnelingModel::new(
            Energy::from_ev(3.15),
            Mass::from_electron_masses(0.42),
            Length::from_nanometers(5.0),
        )
    }

    #[test]
    fn reduces_to_fn_above_barrier_drop() {
        let m = model_5nm();
        // 9 V across 5 nm: qVox = 9 eV >> 3.15 eV.
        let e = ElectricField::from_volts_per_meter(1.8e9);
        let j_unified = m.current_density(e).as_amps_per_square_meter();
        let j_fn = m.fn_limit().current_density(e).as_amps_per_square_meter();
        assert!((j_unified - j_fn).abs() / j_fn < 1e-12);
    }

    #[test]
    fn continuous_at_the_regime_boundary() {
        let m = model_5nm();
        // Boundary: qVox = ΦB → E* = 3.15 V / 5 nm = 6.3e8 V/m.
        let e_star = 3.15 / 5.0e-9;
        let below = m
            .current_density(ElectricField::from_volts_per_meter(e_star * 0.999))
            .as_amps_per_square_meter();
        let above = m
            .current_density(ElectricField::from_volts_per_meter(e_star * 1.001))
            .as_amps_per_square_meter();
        assert!(
            (below / above - 1.0).abs() < 0.2,
            "jump: {below:e} vs {above:e}"
        );
    }

    #[test]
    fn direct_regime_current_is_positive_and_monotone() {
        let m = model_5nm();
        let mut prev = 0.0;
        for i in 1..=20 {
            // Drops from 0.15 V to 3.0 V — all below the 3.15 eV barrier.
            let v = 0.15 * f64::from(i);
            let j = m
                .current_density_for_drop(Voltage::from_volts(v))
                .as_amps_per_square_meter();
            assert!(j > prev, "not monotone at Vox = {v}");
            prev = j;
        }
    }

    #[test]
    fn thinner_oxide_conducts_more_at_fixed_drop() {
        // The essence of the paper's Figure 7/9 at sub-barrier drops.
        let thin = DirectTunnelingModel::new(
            Energy::from_ev(3.15),
            Mass::from_electron_masses(0.42),
            Length::from_nanometers(3.0),
        );
        let thick = model_5nm();
        let v = Voltage::from_volts(2.0);
        assert!(
            thin.current_density_for_drop(v).as_amps_per_square_meter()
                > thick.current_density_for_drop(v).as_amps_per_square_meter()
        );
    }

    #[test]
    fn odd_in_drop_sign() {
        let m = model_5nm();
        let f = m
            .current_density_for_drop(Voltage::from_volts(2.0))
            .as_amps_per_square_meter();
        let r = m
            .current_density_for_drop(Voltage::from_volts(-2.0))
            .as_amps_per_square_meter();
        assert!((f + r).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "thickness must be positive")]
    fn zero_thickness_panics() {
        let _ = DirectTunnelingModel::new(
            Energy::from_ev(3.15),
            Mass::from_electron_masses(0.42),
            Length::from_nanometers(0.0),
        );
    }
}
