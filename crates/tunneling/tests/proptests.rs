//! Property tests for the tunneling physics.

use gnr_tunneling::direct::DirectTunnelingModel;
use gnr_tunneling::fn_model::FnModel;
use gnr_tunneling::fn_plot::{extract_params, generate_plot};
use gnr_tunneling::nordheim::{nordheim_t, nordheim_v, ImageForceFnModel};
use gnr_tunneling::wkb::BarrierProfile;
use gnr_tunneling::TunnelingModel;
use gnr_units::{ElectricField, Energy, Length, Mass, Voltage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FN-plot extraction round-trips the model parameters for any
    /// physical (ΦB, m_ox).
    #[test]
    fn fn_plot_round_trip(phi_ev in 2.0f64..4.5, m_ratio in 0.2f64..0.9) {
        let model = FnModel::new(
            Energy::from_ev(phi_ev),
            Mass::from_electron_masses(m_ratio),
        );
        let fields: Vec<ElectricField> = (0..20)
            .map(|i| ElectricField::from_volts_per_meter(8.0e8 + 5.0e7 * f64::from(i)))
            .collect();
        let pts = generate_plot(&model, &fields);
        let ex = extract_params(&pts).unwrap();
        let c = model.coefficients();
        prop_assert!((ex.b - c.b).abs() / c.b < 1e-6);
        prop_assert!((ex.a - c.a).abs() / c.a < 1e-4);
    }

    /// The unified direct/FN model is continuous at the regime boundary
    /// for any barrier/thickness.
    #[test]
    fn direct_fn_continuity(phi_ev in 2.5f64..4.0, t_nm in 3.0f64..9.0) {
        let m = DirectTunnelingModel::new(
            Energy::from_ev(phi_ev),
            Mass::from_electron_masses(0.42),
            Length::from_nanometers(t_nm),
        );
        let v_star = phi_ev; // qVox = ΦB boundary
        let below = m
            .current_density_for_drop(Voltage::from_volts(v_star * 0.999))
            .as_amps_per_square_meter();
        let above = m
            .current_density_for_drop(Voltage::from_volts(v_star * 1.001))
            .as_amps_per_square_meter();
        prop_assert!(below > 0.0 && above > 0.0);
        prop_assert!((below / above).ln().abs() < 0.5, "jump {below:e} vs {above:e}");
    }

    /// Nordheim functions are bounded and complementary on [0, 1].
    #[test]
    fn nordheim_bounds(f in 0.0f64..1.0) {
        let v = nordheim_v(f);
        let t = nordheim_t(f);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((1.0..1.2).contains(&t));
    }

    /// The image-force correction never reduces the current and never
    /// breaks the odd symmetry.
    #[test]
    fn image_force_invariants(phi_ev in 2.5f64..4.5, e in 3.0e8f64..2.5e9) {
        let base = FnModel::new(Energy::from_ev(phi_ev), Mass::from_electron_masses(0.42));
        let image = ImageForceFnModel::new(base, 3.9);
        let field = ElectricField::from_volts_per_meter(e);
        let j_base = base.current_density(field).as_amps_per_square_meter();
        let j_img = TunnelingModel::current_density(&image, field).as_amps_per_square_meter();
        prop_assert!(j_img >= j_base);
        let j_rev = TunnelingModel::current_density(&image, -field).as_amps_per_square_meter();
        prop_assert!((j_img + j_rev).abs() <= 1e-12 * j_img.abs().max(1e-300));
    }

    /// The WKB exponent of a fully-tilted triangular barrier matches the
    /// analytic −B/E for random physical parameters.
    #[test]
    fn wkb_matches_analytic(
        phi_ev in 2.5f64..4.0,
        m_ratio in 0.3f64..0.6,
        e in 1.0e9f64..3.0e9,
    ) {
        let m_ox = Mass::from_electron_masses(m_ratio);
        // Ensure the barrier is fully tilted through the film: qEt > ΦB.
        let t_nm = (phi_ev / e * 1.0e9) * 2.0;
        let profile = BarrierProfile::ideal(
            Energy::from_ev(phi_ev),
            Length::from_nanometers(t_nm),
            ElectricField::from_volts_per_meter(e),
        );
        let wkb = profile.fermi_level_exponent(m_ox);
        let b = FnModel::new(Energy::from_ev(phi_ev), m_ox).coefficients().b;
        let analytic = -b / e;
        prop_assert!(((wkb - analytic) / analytic).abs() < 5e-3, "wkb {wkb} vs {analytic}");
    }

    /// Transmission is a probability for arbitrary energies and barriers.
    #[test]
    fn transmission_is_probability(
        phi_ev in 1.0f64..5.0,
        t_nm in 1.0f64..10.0,
        e_field in 0.0f64..2.0e9,
        e_x_ev in -1.0f64..6.0,
    ) {
        let profile = BarrierProfile::ideal(
            Energy::from_ev(phi_ev),
            Length::from_nanometers(t_nm),
            ElectricField::from_volts_per_meter(e_field),
        );
        let t = profile.transmission(
            Energy::from_ev(e_x_ev),
            Mass::from_electron_masses(0.42),
        );
        prop_assert!((0.0..=1.0).contains(&t), "T = {t}");
    }
}
