//! Deterministic FNV-1a folding for reproducibility digests.
//!
//! The workspace fingerprints floating-point state in several places —
//! engine cache keys on device parameters, array-state parity digests,
//! bench parity records — and every one must fold *exact bit patterns*
//! with the same algorithm so values stay comparable across crates and
//! sessions. This module is the single home of that fold; do not
//! re-inline the constants at call sites.

/// The FNV-1a 64-bit offset basis (the initial hash value).
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds raw bytes into an FNV-1a hash state.
#[must_use]
pub fn fnv1a_fold_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV1A_PRIME);
    }
    hash
}

/// Folds the exact bit pattern of one `f64` (little-endian byte order)
/// into an FNV-1a hash state — the float-fingerprint primitive shared
/// by cache keys and state digests. Distinguishes `0.0` from `-0.0` and
/// every NaN payload, which is exactly what bit-reproducibility checks
/// want.
#[must_use]
pub fn fnv1a_fold_f64(hash: u64, v: f64) -> u64 {
    fnv1a_fold_bytes(hash, &v.to_bits().to_le_bytes())
}

/// A [`std::hash::Hasher`] over the same FNV-1a constants, for
/// *in-process* hash maps on hot paths (per-cell memo tables, columnar
/// grouping keys) where SipHash's per-lookup cost dominates the work
/// being memoised. Integer writes fold one word per multiply instead of
/// byte-at-a-time, so this is NOT the byte-stream digest above — never
/// use it for persisted or cross-crate fingerprints.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        Self(FNV1A_OFFSET)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0 = fnv1a_fold_bytes(self.0, bytes);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FNV1A_PRIME);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FnvHasher`] — plug into
/// `HashMap::with_hasher(FnvBuildHasher::default())` or the
/// [`FnvHashMap`] alias.
pub type FnvBuildHasher = std::hash::BuildHasherDefault<FnvHasher>;

/// A `HashMap` keyed by the word-folding FNV-1a hasher; `Default` gives
/// an empty map, so `FnvHashMap::default()` replaces `HashMap::new()`.
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_matches_reference_fnv1a() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c (published test vector).
        assert_eq!(fnv1a_fold_bytes(FNV1A_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        // Empty input returns the offset basis untouched.
        assert_eq!(fnv1a_fold_bytes(FNV1A_OFFSET, b""), FNV1A_OFFSET);
    }

    #[test]
    fn f64_fold_is_bit_exact() {
        let h1 = fnv1a_fold_f64(FNV1A_OFFSET, 0.0);
        let h2 = fnv1a_fold_f64(FNV1A_OFFSET, -0.0);
        assert_ne!(h1, h2, "signed zeros have distinct bit patterns");
        assert_eq!(
            fnv1a_fold_f64(FNV1A_OFFSET, 1.5),
            fnv1a_fold_bytes(FNV1A_OFFSET, &1.5f64.to_bits().to_le_bytes())
        );
    }

    #[test]
    fn folding_is_associative_over_concatenation() {
        let whole = fnv1a_fold_bytes(FNV1A_OFFSET, b"hello world");
        let split = fnv1a_fold_bytes(fnv1a_fold_bytes(FNV1A_OFFSET, b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn map_hasher_separates_adjacent_float_bit_keys() {
        use std::hash::BuildHasher;
        let build = FnvBuildHasher::default();
        let a = build.hash_one((0u32, 1.5f64.to_bits()));
        let b = build.hash_one((0u32, f64::to_bits(1.5 + f64::EPSILON)));
        assert_ne!(a, b, "adjacent charge bit patterns must not collide");

        let mut map: FnvHashMap<(u32, u64), f64> = FnvHashMap::default();
        map.insert((3, 42), 1.0);
        assert_eq!(map.get(&(3, 42)), Some(&1.0));
        assert_eq!(map.get(&(3, 43)), None);
    }
}
