//! Deterministic FNV-1a folding for reproducibility digests.
//!
//! The workspace fingerprints floating-point state in several places —
//! engine cache keys on device parameters, array-state parity digests,
//! bench parity records — and every one must fold *exact bit patterns*
//! with the same algorithm so values stay comparable across crates and
//! sessions. This module is the single home of that fold; do not
//! re-inline the constants at call sites.

/// The FNV-1a 64-bit offset basis (the initial hash value).
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV1A_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds raw bytes into an FNV-1a hash state.
#[must_use]
pub fn fnv1a_fold_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV1A_PRIME);
    }
    hash
}

/// Folds the exact bit pattern of one `f64` (little-endian byte order)
/// into an FNV-1a hash state — the float-fingerprint primitive shared
/// by cache keys and state digests. Distinguishes `0.0` from `-0.0` and
/// every NaN payload, which is exactly what bit-reproducibility checks
/// want.
#[must_use]
pub fn fnv1a_fold_f64(hash: u64, v: f64) -> u64 {
    fnv1a_fold_bytes(hash, &v.to_bits().to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_matches_reference_fnv1a() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c (published test vector).
        assert_eq!(fnv1a_fold_bytes(FNV1A_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        // Empty input returns the offset basis untouched.
        assert_eq!(fnv1a_fold_bytes(FNV1A_OFFSET, b""), FNV1A_OFFSET);
    }

    #[test]
    fn f64_fold_is_bit_exact() {
        let h1 = fnv1a_fold_f64(FNV1A_OFFSET, 0.0);
        let h2 = fnv1a_fold_f64(FNV1A_OFFSET, -0.0);
        assert_ne!(h1, h2, "signed zeros have distinct bit patterns");
        assert_eq!(
            fnv1a_fold_f64(FNV1A_OFFSET, 1.5),
            fnv1a_fold_bytes(FNV1A_OFFSET, &1.5f64.to_bits().to_le_bytes())
        );
    }

    #[test]
    fn folding_is_associative_over_concatenation() {
        let whole = fnv1a_fold_bytes(FNV1A_OFFSET, b"hello world");
        let split = fnv1a_fold_bytes(fnv1a_fold_bytes(FNV1A_OFFSET, b"hello "), b"world");
        assert_eq!(whole, split);
    }
}
