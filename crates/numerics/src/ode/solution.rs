//! Dense ODE solution storage with cubic-Hermite sampling.

/// The trajectory produced by an ODE integrator.
///
/// Stores every accepted step (time, state, derivative) plus solver
/// statistics. Between stored nodes the state can be [`sampled`](Self::sample)
/// with the third-order cubic Hermite interpolant, which matches the
/// integrator's own local model of the solution.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OdeSolution {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    derivs: Vec<Vec<f64>>,
    n_accepted: usize,
    n_rejected: usize,
    n_rhs_evals: usize,
}

impl OdeSolution {
    /// Creates an empty solution (used internally by integrators).
    pub(crate) fn new() -> Self {
        Self {
            times: Vec::new(),
            states: Vec::new(),
            derivs: Vec::new(),
            n_accepted: 0,
            n_rejected: 0,
            n_rhs_evals: 0,
        }
    }

    pub(crate) fn push(&mut self, t: f64, y: &[f64], dydt: &[f64]) {
        self.times.push(t);
        self.states.push(y.to_vec());
        self.derivs.push(dydt.to_vec());
    }

    pub(crate) fn record_accept(&mut self) {
        self.n_accepted += 1;
    }

    pub(crate) fn record_reject(&mut self) {
        self.n_rejected += 1;
    }

    pub(crate) fn record_rhs_evals(&mut self, n: usize) {
        self.n_rhs_evals += n;
    }

    /// Truncates the trajectory after a terminal event at time `t`,
    /// appending the event state as the final node.
    pub(crate) fn truncate_at(&mut self, t: f64, y: Vec<f64>, dydt: Vec<f64>) {
        while let Some(&last) = self.times.last() {
            if last > t {
                self.times.pop();
                self.states.pop();
                self.derivs.pop();
            } else {
                break;
            }
        }
        self.times.push(t);
        self.states.push(y);
        self.derivs.push(dydt);
    }

    /// Number of stored nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` when no nodes are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Stored node times.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Stored node states (one `Vec` per node).
    #[must_use]
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// Stored node derivatives.
    #[must_use]
    pub fn derivs(&self) -> &[Vec<f64>] {
        &self.derivs
    }

    /// One state component as a flat column, node by node — the
    /// dense-output extraction used by trajectory caches (which want
    /// contiguous scalar columns, not per-node `Vec`s).
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range for the state dimension.
    #[must_use]
    pub fn state_column(&self, k: usize) -> Vec<f64> {
        self.states.iter().map(|y| y[k]).collect()
    }

    /// One derivative component as a flat column (see
    /// [`Self::state_column`]).
    ///
    /// # Panics
    ///
    /// Panics when `k` is out of range for the state dimension.
    #[must_use]
    pub fn deriv_column(&self, k: usize) -> Vec<f64> {
        self.derivs.iter().map(|y| y[k]).collect()
    }

    /// The last stored time.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    #[must_use]
    pub fn final_time(&self) -> f64 {
        *self.times.last().expect("solution has at least one node")
    }

    /// The last stored state.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    #[must_use]
    pub fn final_state(&self) -> &[f64] {
        self.states.last().expect("solution has at least one node")
    }

    /// Number of accepted integrator steps.
    #[must_use]
    pub fn accepted_steps(&self) -> usize {
        self.n_accepted
    }

    /// Number of rejected (re-tried) integrator steps.
    #[must_use]
    pub fn rejected_steps(&self) -> usize {
        self.n_rejected
    }

    /// Number of right-hand-side evaluations performed.
    #[must_use]
    pub fn rhs_evaluations(&self) -> usize {
        self.n_rhs_evals
    }

    /// Samples the trajectory at time `t` with cubic Hermite interpolation.
    ///
    /// `t` is clamped to the stored time range, so sampling slightly outside
    /// (e.g. plotting grids) is safe.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty.
    #[must_use]
    pub fn sample(&self, t: f64) -> Vec<f64> {
        assert!(!self.is_empty(), "cannot sample an empty solution");
        let t = t.clamp(self.times[0], self.final_time());
        // Binary search for the bracketing segment.
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).expect("times are finite"))
        {
            Ok(i) => return self.states[i].clone(),
            Err(i) => i,
        };
        let hi = idx.min(self.times.len() - 1).max(1);
        let lo = hi - 1;
        let mut out = vec![0.0; self.states[0].len()];
        hermite(
            t,
            self.times[lo],
            self.times[hi],
            &self.states[lo],
            &self.states[hi],
            &self.derivs[lo],
            &self.derivs[hi],
            &mut out,
        );
        out
    }
}

/// Cubic Hermite interpolation of the state at `t ∈ [t0, t1]`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn hermite(
    t: f64,
    t0: f64,
    t1: f64,
    y0: &[f64],
    y1: &[f64],
    f0: &[f64],
    f1: &[f64],
    out: &mut [f64],
) {
    let h = t1 - t0;
    if h == 0.0 {
        out.copy_from_slice(y1);
        return;
    }
    let s = (t - t0) / h;
    let s2 = s * s;
    let s3 = s2 * s;
    let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
    let h10 = s3 - 2.0 * s2 + s;
    let h01 = -2.0 * s3 + 3.0 * s2;
    let h11 = s3 - s2;
    for i in 0..out.len() {
        out[i] = h00 * y0[i] + h * h10 * f0[i] + h01 * y1[i] + h * h11 * f1[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cubic_solution() -> OdeSolution {
        // y = t^3 on [0, 2] sampled at 0, 1, 2 with exact derivatives 3t^2.
        let mut sol = OdeSolution::new();
        for &t in &[0.0, 1.0, 2.0] {
            sol.push(t, &[t * t * t], &[3.0 * t * t]);
        }
        sol
    }

    #[test]
    fn hermite_reproduces_cubics_exactly() {
        let sol = cubic_solution();
        for &t in &[0.25, 0.5, 0.75, 1.5, 1.99] {
            let y = sol.sample(t);
            assert!((y[0] - t * t * t).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn sample_at_node_returns_node() {
        let sol = cubic_solution();
        assert_eq!(sol.sample(1.0), vec![1.0]);
    }

    #[test]
    fn sample_clamps_out_of_range() {
        let sol = cubic_solution();
        assert_eq!(sol.sample(-5.0), vec![0.0]);
        assert_eq!(sol.sample(99.0), vec![8.0]);
    }

    #[test]
    fn columns_extract_per_component() {
        let sol = cubic_solution();
        assert_eq!(sol.state_column(0), vec![0.0, 1.0, 8.0]);
        assert_eq!(sol.deriv_column(0), vec![0.0, 3.0, 12.0]);
    }

    #[test]
    fn truncate_drops_later_nodes() {
        let mut sol = cubic_solution();
        sol.truncate_at(1.2, vec![1.2f64.powi(3)], vec![3.0 * 1.2 * 1.2]);
        assert_eq!(sol.len(), 3); // nodes at 0, 1, 1.2
        assert!((sol.final_time() - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sampling_empty_solution_panics() {
        let sol = OdeSolution::new();
        let _ = sol.sample(0.0);
    }
}
