//! L-stable singly-diagonally-implicit Runge–Kutta (Alexander's SDIRK2).
//!
//! Near saturation the charge-balance ODE is *stiff*: the Jacobian of the
//! FN flows grows with decades-per-volt slopes while the solution barely
//! moves. Explicit methods are then stability-limited; this two-stage
//! SDIRK with `γ = 1 − 1/√2` is second-order accurate and L-stable, so
//! its step size is limited only by accuracy. Stage equations are solved
//! by damped Newton with a finite-difference Jacobian and the dense LU
//! solver.

use crate::linalg::Matrix;
use crate::ode::solution::OdeSolution;
use crate::ode::OdeRhs;
use crate::{NumericsError, Result};

/// Alexander's 2-stage, second-order, L-stable SDIRK with fixed steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sdirk2 {
    steps: usize,
    newton_iterations: usize,
}

/// The SDIRK diagonal coefficient `γ = 1 − 1/√2`.
const GAMMA: f64 = 1.0 - core::f64::consts::FRAC_1_SQRT_2;

impl Sdirk2 {
    /// Creates an integrator taking exactly `steps` equal steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    #[must_use]
    pub fn new(steps: usize) -> Self {
        assert!(steps > 0, "Sdirk2 requires at least one step");
        Self {
            steps,
            newton_iterations: 25,
        }
    }

    /// Integrates `dy/dt = rhs(t, y)` from `(t0, y0)` to `t_end`.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] for an empty state or degenerate
    /// interval; [`NumericsError::NoConvergence`] when a stage Newton
    /// iteration fails; [`NumericsError::SingularMatrix`] when the stage
    /// Jacobian is singular.
    pub fn integrate<R: OdeRhs>(
        &self,
        rhs: R,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<OdeSolution> {
        if y0.is_empty() {
            return Err(NumericsError::InvalidInput("empty initial state".into()));
        }
        if !(t_end - t0).is_finite() || t_end <= t0 {
            return Err(NumericsError::InvalidInput(format!(
                "integration interval [{t0}, {t_end}] must be finite and increasing"
            )));
        }
        let n = y0.len();
        let h = (t_end - t0) / self.steps as f64;
        let mut sol = OdeSolution::new();
        let mut t = t0;
        let mut y = y0.to_vec();
        let mut f = vec![0.0; n];
        rhs.eval(t, &y, &mut f);
        sol.record_rhs_evals(1);
        sol.push(t, &y, &f);

        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];

        for step in 0..self.steps {
            // Stage 1: k1 = f(t + γh, y + γh·k1).
            self.solve_stage(&rhs, t + GAMMA * h, &y, &[], h, &mut k1, &mut sol)?;
            // Stage 2: k2 = f(t + h, y + (1−γ)h·k1 + γh·k2).
            let base: Vec<f64> = (0..n).map(|i| y[i] + (1.0 - GAMMA) * h * k1[i]).collect();
            self.solve_stage(&rhs, t + h, &base, &[], h, &mut k2, &mut sol)?;

            for i in 0..n {
                y[i] += h * ((1.0 - GAMMA) * k1[i] + GAMMA * k2[i]);
            }
            t = t0 + (step + 1) as f64 * h;
            rhs.eval(t, &y, &mut f);
            sol.record_rhs_evals(1);
            sol.record_accept();
            sol.push(t, &y, &f);
        }
        Ok(sol)
    }

    /// Solves `k = f(ts, base + γh·k)` by damped Newton.
    fn solve_stage<R: OdeRhs>(
        &self,
        rhs: &R,
        ts: f64,
        base: &[f64],
        _unused: &[f64],
        h: f64,
        k: &mut [f64],
        sol: &mut OdeSolution,
    ) -> Result<()> {
        let n = base.len();
        let gh = GAMMA * h;
        let mut y_stage = vec![0.0; n];
        let mut f_val = vec![0.0; n];
        let mut residual = vec![0.0; n];

        // Initial guess: explicit evaluation at the base point.
        rhs.eval(ts, base, k);
        sol.record_rhs_evals(1);

        for _ in 0..self.newton_iterations {
            for i in 0..n {
                y_stage[i] = base[i] + gh * k[i];
            }
            rhs.eval(ts, &y_stage, &mut f_val);
            sol.record_rhs_evals(1);
            let mut norm = 0.0f64;
            for i in 0..n {
                residual[i] = k[i] - f_val[i];
                norm = norm.max(residual[i].abs() / (1.0 + k[i].abs()));
            }
            if norm < 1e-10 {
                return Ok(());
            }

            // Newton matrix: I − γh·J, J = ∂f/∂y at y_stage (forward
            // differences).
            let mut m = Matrix::zeros(n, n);
            let mut f_pert = vec![0.0; n];
            for j in 0..n {
                let dy = 1e-8 * y_stage[j].abs().max(1e-8);
                let saved = y_stage[j];
                y_stage[j] = saved + dy;
                rhs.eval(ts, &y_stage, &mut f_pert);
                sol.record_rhs_evals(1);
                y_stage[j] = saved;
                for i in 0..n {
                    let jac = (f_pert[i] - f_val[i]) / dy;
                    let delta = if i == j { 1.0 } else { 0.0 };
                    m.set(i, j, delta - gh * jac);
                }
            }
            let dk = m.solve(&residual)?;
            // Stagnation at the RHS evaluation noise floor counts as
            // converged: cancellation in f near an equilibrium bounds the
            // achievable residual from below.
            let step_norm = (0..n)
                .map(|i| dk[i].abs() / (1.0 + k[i].abs()))
                .fold(0.0f64, f64::max);
            if step_norm < 1e-14 {
                return Ok(());
            }
            // Damped update: halve until the residual norm shrinks.
            let mut lambda = 1.0f64;
            let mut improved = false;
            for _ in 0..10 {
                let trial: Vec<f64> = (0..n).map(|i| k[i] - lambda * dk[i]).collect();
                for i in 0..n {
                    y_stage[i] = base[i] + gh * trial[i];
                }
                rhs.eval(ts, &y_stage, &mut f_val);
                sol.record_rhs_evals(1);
                let mut trial_norm = 0.0f64;
                for i in 0..n {
                    trial_norm =
                        trial_norm.max((trial[i] - f_val[i]).abs() / (1.0 + trial[i].abs()));
                }
                if trial_norm < norm {
                    k.copy_from_slice(&trial);
                    improved = true;
                    break;
                }
                lambda *= 0.5;
            }
            if !improved {
                // No descent direction left: accept if already at a
                // plausible noise floor, otherwise report failure.
                if norm < 1e-6 {
                    return Ok(());
                }
                return Err(NumericsError::NoConvergence {
                    method: "sdirk2-newton",
                    iterations: self.newton_iterations,
                });
            }
        }
        Err(NumericsError::NoConvergence {
            method: "sdirk2-newton",
            iterations: self.newton_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::{Dopri45, OdeOptions};

    #[test]
    fn second_order_convergence() {
        let rhs = |t: f64, _y: &[f64], d: &mut [f64]| d[0] = (2.0 * t).cos();
        let exact = 0.5 * 2.0f64.sin();
        let err = |steps: usize| {
            let sol = Sdirk2::new(steps).integrate(rhs, 0.0, &[0.0], 1.0).unwrap();
            (sol.final_state()[0] - exact).abs()
        };
        let ratio = err(40) / err(80);
        assert!(ratio > 3.0 && ratio < 5.0, "observed order ratio {ratio}");
    }

    #[test]
    fn stiff_decay_with_few_steps() {
        // λ = 1e6 over t = 1: explicit RK4 with 100 steps explodes
        // (λh = 1e4); the L-stable SDIRK stays bounded and accurate.
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| d[0] = -1.0e6 * (y[0] - 2.0);
        let sol = Sdirk2::new(100).integrate(rhs, 0.0, &[0.0], 1.0).unwrap();
        let y = sol.final_state()[0];
        assert!((y - 2.0).abs() < 1e-6, "y = {y}");
    }

    #[test]
    fn explicit_rk4_fails_where_sdirk_succeeds() {
        use crate::ode::Rk4;
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| d[0] = -1.0e6 * (y[0] - 2.0);
        let rk4 = Rk4::new(100).integrate(rhs, 0.0, &[0.0], 1.0).unwrap();
        assert!(
            !rk4.final_state()[0].is_finite() || rk4.final_state()[0].abs() > 1e10,
            "RK4 should blow up at λh = 1e4, got {}",
            rk4.final_state()[0]
        );
    }

    #[test]
    fn agrees_with_adaptive_solver_on_smooth_problem() {
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        };
        let sdirk = Sdirk2::new(2000)
            .integrate(rhs, 0.0, &[1.0, 0.0], core::f64::consts::PI)
            .unwrap();
        let reference = Dopri45::new(OdeOptions::with_tolerances(1e-12, 1e-14))
            .integrate(rhs, 0.0, &[1.0, 0.0], core::f64::consts::PI)
            .unwrap();
        assert!((sdirk.final_state()[0] - reference.final_state()[0]).abs() < 1e-4);
        assert!((sdirk.final_state()[1] - reference.final_state()[1]).abs() < 1e-4);
    }

    #[test]
    fn validates_inputs() {
        let rhs = |_t: f64, _y: &[f64], _d: &mut [f64]| {};
        assert!(Sdirk2::new(10).integrate(rhs, 0.0, &[], 1.0).is_err());
        assert!(Sdirk2::new(10)
            .integrate(|_t, _y: &[f64], d: &mut [f64]| d[0] = 0.0, 1.0, &[0.0], 1.0)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let _ = Sdirk2::new(0);
    }
}
