//! Classical fixed-step fourth-order Runge–Kutta.

use crate::ode::solution::OdeSolution;
use crate::ode::OdeRhs;
use crate::{NumericsError, Result};

/// The classical fourth-order Runge–Kutta method with a fixed step count.
///
/// Used as the reference method in the solver ablation bench; the adaptive
/// [`Dopri45`](crate::ode::Dopri45) is preferred for the device transients.
///
/// # Example
///
/// ```
/// use gnr_numerics::ode::Rk4;
///
/// let sol = Rk4::new(100)
///     .integrate(|_t, y: &[f64], d: &mut [f64]| d[0] = y[0], 0.0, &[1.0], 1.0)
///     .unwrap();
/// assert!((sol.final_state()[0] - 1.0f64.exp()).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rk4 {
    steps: usize,
}

impl Rk4 {
    /// Creates an integrator that takes exactly `steps` equal steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    #[must_use]
    pub fn new(steps: usize) -> Self {
        assert!(steps > 0, "Rk4 requires at least one step");
        Self { steps }
    }

    /// Integrates `dy/dt = rhs(t, y)` from `(t0, y0)` to `t_end`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] for an empty state or a
    /// non-increasing interval.
    pub fn integrate<R: OdeRhs>(
        &self,
        rhs: R,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<OdeSolution> {
        if y0.is_empty() {
            return Err(NumericsError::InvalidInput("empty initial state".into()));
        }
        if !(t_end - t0).is_finite() || t_end <= t0 {
            return Err(NumericsError::InvalidInput(format!(
                "integration interval [{t0}, {t_end}] must be finite and increasing"
            )));
        }
        let n = y0.len();
        let h = (t_end - t0) / self.steps as f64;

        let mut sol = OdeSolution::new();
        let mut t = t0;
        let mut y = y0.to_vec();
        let mut k1 = vec![0.0; n];
        let mut k2 = vec![0.0; n];
        let mut k3 = vec![0.0; n];
        let mut k4 = vec![0.0; n];
        let mut tmp = vec![0.0; n];

        rhs.eval(t, &y, &mut k1);
        sol.record_rhs_evals(1);
        sol.push(t, &y, &k1);

        for step in 0..self.steps {
            for i in 0..n {
                tmp[i] = y[i] + 0.5 * h * k1[i];
            }
            rhs.eval(t + 0.5 * h, &tmp, &mut k2);
            for i in 0..n {
                tmp[i] = y[i] + 0.5 * h * k2[i];
            }
            rhs.eval(t + 0.5 * h, &tmp, &mut k3);
            for i in 0..n {
                tmp[i] = y[i] + h * k3[i];
            }
            rhs.eval(t + h, &tmp, &mut k4);
            for i in 0..n {
                y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
            t = t0 + (step + 1) as f64 * h;
            rhs.eval(t, &y, &mut k1);
            sol.record_rhs_evals(4);
            sol.record_accept();
            sol.push(t, &y, &k1);
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourth_order_convergence() {
        // Halving the step should reduce the error ~16x for smooth problems.
        let rhs = |t: f64, _y: &[f64], d: &mut [f64]| d[0] = (2.0 * t).sin();
        let exact = 0.5 * (1.0 - 2.0f64.cos());
        let err = |steps: usize| {
            let sol = Rk4::new(steps).integrate(rhs, 0.0, &[0.0], 1.0).unwrap();
            (sol.final_state()[0] - exact).abs()
        };
        let e1 = err(20);
        let e2 = err(40);
        let ratio = e1 / e2;
        assert!(ratio > 12.0 && ratio < 20.0, "observed order ratio {ratio}");
    }

    #[test]
    fn records_every_step() {
        let sol = Rk4::new(10)
            .integrate(|_t, _y: &[f64], d: &mut [f64]| d[0] = 1.0, 0.0, &[0.0], 1.0)
            .unwrap();
        assert_eq!(sol.len(), 11);
        assert_eq!(sol.accepted_steps(), 10);
        assert_eq!(sol.rejected_steps(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let _ = Rk4::new(0);
    }

    #[test]
    fn two_dimensional_system() {
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        };
        let sol = Rk4::new(1000)
            .integrate(rhs, 0.0, &[0.0, 1.0], core::f64::consts::PI)
            .unwrap();
        // sin(π) = 0, cos(π) = -1.
        assert!(sol.final_state()[0].abs() < 1e-9);
        assert!((sol.final_state()[1] + 1.0).abs() < 1e-9);
    }
}
