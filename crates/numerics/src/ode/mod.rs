//! Initial-value ODE solvers.
//!
//! The program/erase charge-balance equation of the paper (Figures 4 and 5)
//! is a one-dimensional but *extremely* nonlinear ODE: the Fowler–Nordheim
//! currents on its right-hand side change by decades as the floating gate
//! charges. Fixed-step methods ([`Rk4`], [`ExplicitEuler`]) are provided for
//! validation and ablation benches; production integration uses the adaptive
//! Dormand–Prince 5(4) pair ([`Dopri45`]) with a PI step-size controller and
//! cubic-Hermite event localisation (the paper's `t_sat`).
//!
//! # Example
//!
//! Locate where a decaying oscillation first crosses zero from above:
//!
//! ```
//! use gnr_numerics::ode::{CrossingDirection, Dopri45, Event, OdeOptions};
//!
//! let rhs = |_t: f64, y: &[f64], dydt: &mut [f64]| {
//!     dydt[0] = y[1];
//!     dydt[1] = -y[0];
//! };
//! let event = Event {
//!     label: "zero crossing",
//!     condition: &|_t, y: &[f64]| y[0],
//!     direction: CrossingDirection::Falling,
//!     terminal: true,
//! };
//! let (sol, hits) = Dopri45::new(OdeOptions::default())
//!     .integrate_with_events(rhs, 0.0, &[1.0, 0.0], 10.0, &[event])
//!     .unwrap();
//! assert!((hits[0].t - core::f64::consts::FRAC_PI_2).abs() < 1e-6);
//! assert!(sol.final_time() <= 10.0);
//! ```

mod dopri45;
mod euler;
mod event;
mod rk4;
mod sdirk2;
mod solution;

pub use dopri45::{Dopri45, OdeOptions};
pub use euler::ExplicitEuler;
pub use event::{CrossingDirection, Event, EventOccurrence};
pub use rk4::Rk4;
pub use sdirk2::Sdirk2;
pub use solution::OdeSolution;

/// Right-hand side of an ODE system `dy/dt = f(t, y)`.
///
/// Implemented for any closure of signature
/// `Fn(f64, &[f64], &mut [f64])` that writes the derivative into its third
/// argument (the state dimension is taken from the initial condition).
pub trait OdeRhs {
    /// Evaluates the derivative at `(t, y)` into `dydt`.
    ///
    /// `dydt` has the same length as `y`.
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]);
}

impl<F> OdeRhs for F
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    fn eval(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        self(t, y, dydt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All three integrators agree on dy/dt = -2y within their accuracy.
    #[test]
    fn integrators_agree_on_linear_decay() {
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| d[0] = -2.0 * y[0];
        let exact = (-2.0f64).exp();

        let rk4 = Rk4::new(1000).integrate(rhs, 0.0, &[1.0], 1.0).unwrap();
        let euler = ExplicitEuler::new(200_000)
            .integrate(rhs, 0.0, &[1.0], 1.0)
            .unwrap();
        let adaptive = Dopri45::new(OdeOptions::default())
            .integrate(rhs, 0.0, &[1.0], 1.0)
            .unwrap();

        assert!((rk4.final_state()[0] - exact).abs() < 1e-10);
        assert!((euler.final_state()[0] - exact).abs() < 1e-4);
        assert!((adaptive.final_state()[0] - exact).abs() < 1e-8);
    }

    /// The closure blanket impl satisfies the trait.
    #[test]
    fn closures_are_rhs() {
        fn takes_rhs<R: OdeRhs>(r: R) {
            let mut d = [0.0];
            r.eval(0.0, &[1.0], &mut d);
            assert_eq!(d[0], 1.0);
        }
        takes_rhs(|_t: f64, y: &[f64], d: &mut [f64]| d[0] = y[0]);
    }
}
