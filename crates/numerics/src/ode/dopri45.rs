//! Adaptive Dormand–Prince 5(4) integrator with PI step control, FSAL and
//! cubic-Hermite event localisation.

use crate::ode::event::{Event, EventOccurrence};
use crate::ode::solution::{hermite, OdeSolution};
use crate::ode::OdeRhs;
use crate::{NumericsError, Result};

/// Tuning options for [`Dopri45`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OdeOptions {
    /// Relative tolerance per component.
    pub rtol: f64,
    /// Absolute tolerance per component.
    pub atol: f64,
    /// Initial step; chosen automatically when `None`.
    pub h_init: Option<f64>,
    /// Upper bound on the step; the full interval when `None`.
    pub h_max: Option<f64>,
    /// Hard cap on accepted + rejected steps.
    pub max_steps: usize,
    /// Safety factor of the step controller.
    pub safety: f64,
}

impl Default for OdeOptions {
    fn default() -> Self {
        Self {
            rtol: 1.0e-8,
            atol: 1.0e-12,
            h_init: None,
            h_max: None,
            max_steps: 1_000_000,
            safety: 0.9,
        }
    }
}

impl OdeOptions {
    /// Creates options with the given tolerances and defaults elsewhere.
    #[must_use]
    pub fn with_tolerances(rtol: f64, atol: f64) -> Self {
        Self {
            rtol,
            atol,
            ..Self::default()
        }
    }
}

/// The Dormand–Prince explicit Runge–Kutta 5(4) pair.
///
/// Fifth-order propagation with an embedded fourth-order error estimate,
/// first-same-as-last (FSAL) evaluation reuse, and a PI step-size
/// controller. This is the production integrator for the paper's
/// program/erase transients.
///
/// # Example
///
/// ```
/// use gnr_numerics::ode::{Dopri45, OdeOptions};
///
/// let sol = Dopri45::new(OdeOptions::with_tolerances(1e-10, 1e-14))
///     .integrate(|t: f64, _y: &[f64], d: &mut [f64]| d[0] = 3.0 * t * t, 0.0, &[0.0], 2.0)
///     .unwrap();
/// assert!((sol.final_state()[0] - 8.0).abs() < 1e-8);
/// ```
#[derive(Debug, Clone)]
pub struct Dopri45 {
    opts: OdeOptions,
}

// Butcher tableau (Dormand & Prince 1980).
const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
const A: [[f64; 6]; 7] = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [
        19372.0 / 6561.0,
        -25360.0 / 2187.0,
        64448.0 / 6561.0,
        -212.0 / 729.0,
        0.0,
        0.0,
    ],
    [
        9017.0 / 3168.0,
        -355.0 / 33.0,
        46732.0 / 5247.0,
        49.0 / 176.0,
        -5103.0 / 18656.0,
        0.0,
    ],
    [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
    ],
];
/// Fifth-order weights (row 7 of `A`, FSAL).
const B5: [f64; 7] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
    0.0,
];
/// Embedded fourth-order weights.
const B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

impl Dopri45 {
    /// Creates the integrator with the given options.
    #[must_use]
    pub fn new(opts: OdeOptions) -> Self {
        Self { opts }
    }

    /// Integrates `dy/dt = rhs(t, y)` from `(t0, y0)` to `t_end`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::StepSizeUnderflow`] when the controller
    /// cannot satisfy the tolerance, [`NumericsError::NoConvergence`] when
    /// `max_steps` is exhausted, and [`NumericsError::InvalidInput`] for a
    /// degenerate interval or empty state.
    pub fn integrate<R: OdeRhs>(
        &self,
        rhs: R,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<OdeSolution> {
        self.integrate_with_events(rhs, t0, y0, t_end, &[])
            .map(|(sol, _)| sol)
    }

    /// Integrates while monitoring zero-crossing [`Event`]s.
    ///
    /// Returns the solution and every localised occurrence, in time order.
    /// A `terminal` event stops the integration at the crossing and the
    /// solution is truncated there.
    ///
    /// # Errors
    ///
    /// As for [`Self::integrate`].
    pub fn integrate_with_events<R: OdeRhs>(
        &self,
        rhs: R,
        t0: f64,
        y0: &[f64],
        t_end: f64,
        events: &[Event<'_>],
    ) -> Result<(OdeSolution, Vec<EventOccurrence>)> {
        if y0.is_empty() {
            return Err(NumericsError::InvalidInput("empty initial state".into()));
        }
        if !(t_end - t0).is_finite() || t_end <= t0 {
            return Err(NumericsError::InvalidInput(format!(
                "integration interval [{t0}, {t_end}] must be finite and increasing"
            )));
        }

        let n = y0.len();
        let mut sol = OdeSolution::new();
        let mut occurrences = Vec::new();

        let mut t = t0;
        let mut y = y0.to_vec();
        let mut k = vec![vec![0.0; n]; 7];
        rhs.eval(t, &y, &mut k[0]);
        sol.record_rhs_evals(1);
        sol.push(t, &y, &k[0]);

        let mut g_prev: Vec<f64> = events.iter().map(|e| (e.condition)(t, &y)).collect();

        let h_max = self.opts.h_max.unwrap_or(t_end - t0);
        let mut h = match self.opts.h_init {
            Some(h) => h.min(h_max),
            None => self.initial_step(&rhs, t, &y, &k[0], t_end, &mut sol),
        };

        let mut err_prev: f64 = 1.0;
        let mut y_new = vec![0.0; n];
        let mut y_stage = vec![0.0; n];
        let mut steps = 0usize;

        while t < t_end {
            if steps >= self.opts.max_steps {
                return Err(NumericsError::NoConvergence {
                    method: "dopri45",
                    iterations: steps,
                });
            }
            steps += 1;
            h = h.min(t_end - t).min(h_max);
            if h <= f64::EPSILON * t.abs().max(1.0) {
                return Err(NumericsError::StepSizeUnderflow { t });
            }

            // Stages 2..7 (k[0] is FSAL from the previous step).
            for s in 1..7 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, kj) in k.iter().enumerate().take(s) {
                        acc += A[s][j] * kj[i];
                    }
                    y_stage[i] = y[i] + h * acc;
                }
                let ts = t + C[s] * h;
                let (head, tail) = k.split_at_mut(s);
                let _ = head;
                rhs.eval(ts, &y_stage, &mut tail[0]);
            }
            sol.record_rhs_evals(6);

            // Fifth-order solution and embedded error.
            let mut err_sq = 0.0;
            for i in 0..n {
                let mut y5 = 0.0;
                let mut y4 = 0.0;
                for s in 0..7 {
                    y5 += B5[s] * k[s][i];
                    y4 += B4[s] * k[s][i];
                }
                y_new[i] = y[i] + h * y5;
                let e = h * (y5 - y4);
                let scale = self.opts.atol + self.opts.rtol * y[i].abs().max(y_new[i].abs());
                err_sq += (e / scale) * (e / scale);
            }
            // A non-finite error estimate (overflow/NaN in a trial stage)
            // must count as a rejection: f64::max ignores NaN, so a naive
            // `.max()` would silently *accept* a poisoned step.
            let err_rms = (err_sq / n as f64).sqrt();
            let err = if err_rms.is_finite() {
                err_rms.max(1.0e-16)
            } else {
                f64::INFINITY
            };

            if err <= 1.0 {
                // Accept. PI controller (Gustafsson): h *= s * err^-a * prev^b.
                let t_new = t + h;
                // FSAL: k[6] = f(t+h, y_new) is the next step's k[0].
                let k_last = k[6].clone();

                // Event detection over [t, t_new].
                let mut terminal_hit: Option<(f64, Vec<f64>)> = None;
                for (ei, ev) in events.iter().enumerate() {
                    let g_hi = (ev.condition)(t_new, &y_new);
                    if ev.direction.matches(g_prev[ei], g_hi) {
                        let (te, ye) = locate_crossing(ev, t, t_new, &y, &y_new, &k[0], &k_last);
                        occurrences.push(EventOccurrence {
                            label: ev.label.to_string(),
                            t: te,
                            state: ye.clone(),
                        });
                        if ev.terminal {
                            match &terminal_hit {
                                Some((tt, _)) if *tt <= te => {}
                                _ => terminal_hit = Some((te, ye)),
                            }
                        }
                    }
                    g_prev[ei] = g_hi;
                }

                if let Some((te, ye)) = terminal_hit {
                    let mut dydt = vec![0.0; n];
                    rhs.eval(te, &ye, &mut dydt);
                    sol.record_rhs_evals(1);
                    sol.record_accept();
                    sol.truncate_at(te, ye, dydt);
                    occurrences.sort_by(|a, b| a.t.total_cmp(&b.t));
                    return Ok((sol, occurrences));
                }

                t = t_new;
                y.copy_from_slice(&y_new);
                k[0].copy_from_slice(&k_last);
                sol.record_accept();
                sol.push(t, &y, &k[0]);

                let factor = self.opts.safety * err.powf(-0.7 / 5.0) * err_prev.powf(0.4 / 5.0);
                h *= factor.clamp(0.2, 5.0);
                err_prev = err;
            } else {
                sol.record_reject();
                h *= (self.opts.safety * err.powf(-0.2)).clamp(0.1, 0.9);
            }
        }

        occurrences.sort_by(|a, b| a.t.total_cmp(&b.t));
        Ok((sol, occurrences))
    }

    /// Hairer-style automatic initial step selection.
    fn initial_step<R: OdeRhs>(
        &self,
        rhs: &R,
        t0: f64,
        y0: &[f64],
        f0: &[f64],
        t_end: f64,
        sol: &mut OdeSolution,
    ) -> f64 {
        let n = y0.len();
        let sc: Vec<f64> = y0
            .iter()
            .map(|&yi| self.opts.atol + self.opts.rtol * yi.abs())
            .collect();
        let d0 = rms(y0, &sc);
        let d1 = rms(f0, &sc);
        let h0 = if d0 < 1e-5 || d1 < 1e-5 {
            1e-6
        } else {
            0.01 * (d0 / d1)
        };
        let h0 = h0.min(t_end - t0);

        // One explicit Euler probe to estimate the second derivative.
        let y1: Vec<f64> = (0..n).map(|i| y0[i] + h0 * f0[i]).collect();
        let mut f1 = vec![0.0; n];
        rhs.eval(t0 + h0, &y1, &mut f1);
        sol.record_rhs_evals(1);
        let diff: Vec<f64> = (0..n).map(|i| f1[i] - f0[i]).collect();
        let d2 = rms(&diff, &sc) / h0;

        let h1 = if d1.max(d2) <= 1e-15 {
            (h0 * 1e-3).max(1e-6)
        } else {
            (0.01 / d1.max(d2)).powf(1.0 / 5.0)
        };
        // `h0 = 0.01·d0/d1` collapses when the initial state is
        // atol-dominated (|y0| ≈ 0 relative to the dynamics): d0 is then
        // meaningless and `100·h0` can suppress the curvature-based `h1`
        // by tens of orders of magnitude, underflowing the very first
        // step. Never let it suppress `h1` by more than 1000x.
        let h = (100.0 * h0).min(h1);
        let h = if h1.is_finite() && h1 > 0.0 {
            h.max(1e-3 * h1)
        } else {
            h
        };
        h.min(t_end - t0)
    }
}

fn rms(v: &[f64], scale: &[f64]) -> f64 {
    let s: f64 = v
        .iter()
        .zip(scale)
        .map(|(&x, &sc)| (x / sc) * (x / sc))
        .sum();
    (s / v.len() as f64).sqrt()
}

/// Bisection on the cubic-Hermite interpolant to localise an event crossing.
fn locate_crossing(
    ev: &Event<'_>,
    t_lo: f64,
    t_hi: f64,
    y_lo: &[f64],
    y_hi: &[f64],
    f_lo: &[f64],
    f_hi: &[f64],
) -> (f64, Vec<f64>) {
    let n = y_lo.len();
    let mut buf = vec![0.0; n];
    let mut a = t_lo;
    let mut b = t_hi;
    let mut g_a = (ev.condition)(a, y_lo);
    // 80 bisections: interval shrinks below f64 resolution for any scale.
    for _ in 0..80 {
        let mid = 0.5 * (a + b);
        hermite(mid, t_lo, t_hi, y_lo, y_hi, f_lo, f_hi, &mut buf);
        let g_mid = (ev.condition)(mid, &buf);
        if ev.direction.matches(g_a, g_mid) {
            b = mid;
        } else {
            a = mid;
            g_a = g_mid;
        }
        if (b - a) <= f64::EPSILON * b.abs().max(1.0) {
            break;
        }
    }
    let te = 0.5 * (a + b);
    hermite(te, t_lo, t_hi, y_lo, y_hi, f_lo, f_hi, &mut buf);
    (te, buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ode::CrossingDirection;

    #[test]
    fn exponential_decay_high_accuracy() {
        let sol = Dopri45::new(OdeOptions::with_tolerances(1e-12, 1e-14))
            .integrate(
                |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0],
                0.0,
                &[1.0],
                5.0,
            )
            .unwrap();
        assert!((sol.final_state()[0] - (-5.0f64).exp()).abs() < 1e-11);
    }

    #[test]
    fn harmonic_oscillator_energy_conserved() {
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        };
        let sol = Dopri45::new(OdeOptions::with_tolerances(1e-10, 1e-12))
            .integrate(rhs, 0.0, &[1.0, 0.0], 20.0 * core::f64::consts::PI)
            .unwrap();
        let [x, v] = [sol.final_state()[0], sol.final_state()[1]];
        assert!((x * x + v * v - 1.0).abs() < 1e-6);
        assert!((x - 1.0).abs() < 1e-5, "x = {x}");
    }

    #[test]
    fn stiff_like_decay_does_not_underflow() {
        // Fast transient followed by slow drift; DP45 must survive via small
        // steps (a stiffness ablation for the device transient).
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| d[0] = -1e6 * (y[0] - 1.0);
        let sol = Dopri45::new(OdeOptions::with_tolerances(1e-6, 1e-9))
            .integrate(rhs, 0.0, &[0.0], 1e-3)
            .unwrap();
        assert!((sol.final_state()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn event_is_localised_accurately() {
        // y' = 1, event at y = 2.5.
        let ev = Event {
            label: "hit",
            condition: &|_t, y: &[f64]| y[0] - 2.5,
            direction: CrossingDirection::Rising,
            terminal: true,
        };
        let (sol, hits) = Dopri45::new(OdeOptions::default())
            .integrate_with_events(
                |_t, _y: &[f64], d: &mut [f64]| d[0] = 1.0,
                0.0,
                &[0.0],
                10.0,
                &[ev],
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert!((hits[0].t - 2.5).abs() < 1e-9);
        assert!((sol.final_time() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn non_terminal_events_do_not_stop_integration() {
        let ev = Event {
            label: "osc-zero",
            condition: &|_t, y: &[f64]| y[0],
            direction: CrossingDirection::Any,
            terminal: false,
        };
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        };
        let (sol, hits) = Dopri45::new(OdeOptions::with_tolerances(1e-10, 1e-12))
            .integrate_with_events(rhs, 0.0, &[1.0, 0.0], 10.0, &[ev])
            .unwrap();
        // cos t has zeros at π/2 and 3π/2, 5π/2 within [0, 10].
        assert_eq!(hits.len(), 3);
        assert!((hits[0].t - core::f64::consts::FRAC_PI_2).abs() < 1e-7);
        assert!((sol.final_time() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_interval() {
        let r = Dopri45::new(OdeOptions::default()).integrate(
            |_t, _y: &[f64], d: &mut [f64]| d[0] = 0.0,
            1.0,
            &[0.0],
            1.0,
        );
        assert!(matches!(r, Err(NumericsError::InvalidInput(_))));
    }

    #[test]
    fn rejects_empty_state() {
        let r = Dopri45::new(OdeOptions::default()).integrate(
            |_t, _y: &[f64], _d: &mut [f64]| {},
            0.0,
            &[],
            1.0,
        );
        assert!(matches!(r, Err(NumericsError::InvalidInput(_))));
    }

    #[test]
    fn max_steps_is_enforced() {
        let opts = OdeOptions {
            max_steps: 3,
            ..OdeOptions::default()
        };
        let r = Dopri45::new(opts).integrate(
            |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0],
            0.0,
            &[1.0],
            1.0e6,
        );
        assert!(matches!(r, Err(NumericsError::NoConvergence { .. })));
    }

    #[test]
    fn tighter_tolerance_reduces_error() {
        let rhs = |t: f64, _y: &[f64], d: &mut [f64]| d[0] = t.cos();
        let loose = Dopri45::new(OdeOptions::with_tolerances(1e-4, 1e-6))
            .integrate(rhs, 0.0, &[0.0], 10.0)
            .unwrap();
        let tight = Dopri45::new(OdeOptions::with_tolerances(1e-12, 1e-14))
            .integrate(rhs, 0.0, &[0.0], 10.0)
            .unwrap();
        let exact = 10.0f64.sin();
        let e_loose = (loose.final_state()[0] - exact).abs();
        let e_tight = (tight.final_state()[0] - exact).abs();
        assert!(e_tight <= e_loose);
        assert!(e_tight < 1e-10);
    }

    #[test]
    fn nan_producing_overshoot_is_rejected_not_accepted() {
        // Reproduction of the device-transient failure: an oversized
        // trial step drives the intermediate stages into a region where
        // the RHS overflows to NaN. f64::max ignores NaN, so a naive
        // error test would silently *accept* the poisoned step. The
        // solver must instead reject and shrink.
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = if y[0].abs() > 100.0 {
                f64::NAN
            } else {
                -1.0e6 * y[0]
            };
        };
        let opts = OdeOptions {
            h_init: Some(1.0e-3), // ~1000x the stable step for λ = 1e6
            ..OdeOptions::with_tolerances(1e-8, 1e-10)
        };
        let sol = Dopri45::new(opts)
            .integrate(rhs, 0.0, &[1.0], 1.0e-3)
            .unwrap();
        let y = sol.final_state()[0];
        assert!(y.is_finite(), "solution must stay finite, got {y}");
        assert!(y.abs() < 1e-10, "fast decay must reach ~0, got {y}");
        assert!(
            sol.rejected_steps() > 0,
            "the oversized step must be rejected"
        );
    }

    #[test]
    fn atol_dominated_initial_state_does_not_underflow() {
        // Regression: an initial state that is nonzero but far below the
        // dynamics scale (|y0|·rtol << atol) must not collapse the
        // automatic initial step (observed as StepSizeUnderflow at t = 0
        // when erasing a flash cell holding 1e-12 stray electrons).
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| d[0] = 5.6e6 * (1.0 - y[0]);
        let sol = Dopri45::new(OdeOptions::with_tolerances(1e-8, 1e-10))
            .integrate(rhs, 0.0, &[-5.6e-14], 1e-4)
            .unwrap();
        assert!((sol.final_state()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn solver_statistics_are_recorded() {
        let sol = Dopri45::new(OdeOptions::default())
            .integrate(
                |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0],
                0.0,
                &[1.0],
                1.0,
            )
            .unwrap();
        assert!(sol.accepted_steps() > 0);
        assert!(sol.rhs_evaluations() >= 6 * sol.accepted_steps());
        assert_eq!(sol.len(), sol.accepted_steps() + 1);
    }
}
