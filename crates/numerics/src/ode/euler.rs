//! Explicit (forward) Euler — the baseline integrator for ablation benches.

use crate::ode::solution::OdeSolution;
use crate::ode::OdeRhs;
use crate::{NumericsError, Result};

/// Forward Euler with a fixed step count.
///
/// First-order accurate; present to quantify, in the solver ablation bench,
/// how much accuracy the higher-order methods buy on the device transient.
///
/// # Example
///
/// ```
/// use gnr_numerics::ode::ExplicitEuler;
///
/// let sol = ExplicitEuler::new(10_000)
///     .integrate(|_t, y: &[f64], d: &mut [f64]| d[0] = -y[0], 0.0, &[1.0], 1.0)
///     .unwrap();
/// assert!((sol.final_state()[0] - (-1.0f64).exp()).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplicitEuler {
    steps: usize,
}

impl ExplicitEuler {
    /// Creates an integrator that takes exactly `steps` equal steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    #[must_use]
    pub fn new(steps: usize) -> Self {
        assert!(steps > 0, "ExplicitEuler requires at least one step");
        Self { steps }
    }

    /// Integrates `dy/dt = rhs(t, y)` from `(t0, y0)` to `t_end`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] for an empty state or a
    /// non-increasing interval.
    pub fn integrate<R: OdeRhs>(
        &self,
        rhs: R,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<OdeSolution> {
        if y0.is_empty() {
            return Err(NumericsError::InvalidInput("empty initial state".into()));
        }
        if !(t_end - t0).is_finite() || t_end <= t0 {
            return Err(NumericsError::InvalidInput(format!(
                "integration interval [{t0}, {t_end}] must be finite and increasing"
            )));
        }
        let n = y0.len();
        let h = (t_end - t0) / self.steps as f64;
        let mut sol = OdeSolution::new();
        let mut t = t0;
        let mut y = y0.to_vec();
        let mut f = vec![0.0; n];

        rhs.eval(t, &y, &mut f);
        sol.record_rhs_evals(1);
        sol.push(t, &y, &f);

        for step in 0..self.steps {
            for i in 0..n {
                y[i] += h * f[i];
            }
            t = t0 + (step + 1) as f64 * h;
            rhs.eval(t, &y, &mut f);
            sol.record_rhs_evals(1);
            sol.record_accept();
            sol.push(t, &y, &f);
        }
        Ok(sol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_convergence() {
        let rhs = |_t: f64, y: &[f64], d: &mut [f64]| d[0] = -y[0];
        let exact = (-1.0f64).exp();
        let err = |steps: usize| {
            let sol = ExplicitEuler::new(steps)
                .integrate(rhs, 0.0, &[1.0], 1.0)
                .unwrap();
            (sol.final_state()[0] - exact).abs()
        };
        let ratio = err(100) / err(200);
        assert!(ratio > 1.8 && ratio < 2.2, "observed order ratio {ratio}");
    }

    #[test]
    fn exact_for_constant_rhs() {
        let sol = ExplicitEuler::new(7)
            .integrate(|_t, _y: &[f64], d: &mut [f64]| d[0] = 3.0, 0.0, &[1.0], 7.0)
            .unwrap();
        assert!((sol.final_state()[0] - 22.0).abs() < 1e-12);
    }
}
