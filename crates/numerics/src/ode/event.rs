//! Zero-crossing event specification and localisation.

/// Which sign changes of the event function trigger the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossingDirection {
    /// Trigger when `g` crosses from negative to positive.
    Rising,
    /// Trigger when `g` crosses from positive to negative.
    Falling,
    /// Trigger on any sign change.
    Any,
}

impl CrossingDirection {
    /// Returns `true` when a transition `g_lo → g_hi` matches the direction.
    #[must_use]
    pub fn matches(self, g_lo: f64, g_hi: f64) -> bool {
        match self {
            Self::Rising => g_lo < 0.0 && g_hi >= 0.0,
            Self::Falling => g_lo > 0.0 && g_hi <= 0.0,
            Self::Any => (g_lo < 0.0 && g_hi >= 0.0) || (g_lo > 0.0 && g_hi <= 0.0),
        }
    }
}

/// A zero-crossing event `g(t, y) = 0` monitored during integration.
///
/// The paper's saturation time `t_sat` (Figure 5) is located with a terminal
/// event on `Jin − Jout` (falling through the tolerance band).
pub struct Event<'a> {
    /// Human-readable label reported in [`EventOccurrence`].
    pub label: &'a str,
    /// The event function; a zero crossing triggers the event.
    pub condition: &'a (dyn Fn(f64, &[f64]) -> f64 + Sync),
    /// Which crossings count.
    pub direction: CrossingDirection,
    /// Stop the integration at the event when `true`.
    pub terminal: bool,
}

impl core::fmt::Debug for Event<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Event")
            .field("label", &self.label)
            .field("direction", &self.direction)
            .field("terminal", &self.terminal)
            .finish_non_exhaustive()
    }
}

/// A localised event occurrence.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventOccurrence {
    /// Label of the event that fired.
    pub label: String,
    /// Localised crossing time.
    pub t: f64,
    /// Interpolated state at the crossing.
    pub state: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rising_matches_only_upward() {
        assert!(CrossingDirection::Rising.matches(-1.0, 1.0));
        assert!(!CrossingDirection::Rising.matches(1.0, -1.0));
    }

    #[test]
    fn falling_matches_only_downward() {
        assert!(CrossingDirection::Falling.matches(1.0, -1.0));
        assert!(!CrossingDirection::Falling.matches(-1.0, 1.0));
    }

    #[test]
    fn any_matches_both() {
        assert!(CrossingDirection::Any.matches(1.0, -1.0));
        assert!(CrossingDirection::Any.matches(-1.0, 1.0));
        assert!(!CrossingDirection::Any.matches(1.0, 2.0));
    }

    #[test]
    fn exact_zero_at_right_endpoint_counts() {
        assert!(CrossingDirection::Falling.matches(1.0, 0.0));
        assert!(CrossingDirection::Rising.matches(-1.0, 0.0));
    }

    #[test]
    fn debug_impl_is_nonempty() {
        let e = Event {
            label: "x",
            condition: &|_t, _y: &[f64]| 0.0,
            direction: CrossingDirection::Any,
            terminal: false,
        };
        assert!(format!("{e:?}").contains("Event"));
    }
}
