//! One-dimensional quadrature: trapezoid, Simpson, adaptive Simpson and
//! Gauss–Legendre.
//!
//! The WKB transmission coefficient is `exp(-2 ∫ κ(x) dx)` over the
//! classically forbidden region of the oxide barrier; these routines
//! evaluate that action integral for arbitrary barrier profiles.
//!
//! # Example
//!
//! ```
//! use gnr_numerics::integrate::adaptive_simpson;
//!
//! let v = adaptive_simpson(|x: f64| x.exp(), 0.0, 1.0, 1e-12, 50).unwrap();
//! assert!((v - (1.0f64.exp() - 1.0)).abs() < 1e-10);
//! ```

use crate::{NumericsError, Result};

/// Composite trapezoid rule with `n` panels.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn trapezoid<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "trapezoid requires at least one panel");
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for i in 1..n {
        acc += f(a + i as f64 * h);
    }
    acc * h
}

/// Composite Simpson rule with `n` panels (`n` is rounded up to even).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    assert!(n > 0, "simpson requires at least one panel");
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        acc += w * f(a + i as f64 * h);
    }
    acc * h / 3.0
}

/// Adaptive Simpson quadrature with error control `tol` and recursion
/// depth limit `max_depth`.
///
/// # Errors
///
/// Returns [`NumericsError::NoConvergence`] when the recursion depth limit
/// is hit before the local error bound is met, and
/// [`NumericsError::InvalidInput`] for a non-positive tolerance.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: usize,
) -> Result<f64> {
    if tol <= 0.0 {
        return Err(NumericsError::InvalidInput(
            "tolerance must be positive".into(),
        ));
    }
    if a == b {
        return Ok(0.0);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    rec(&f, a, b, fa, fb, fm, whole, tol, max_depth)
}

#[allow(clippy::too_many_arguments)]
fn rec<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fm: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> Result<f64> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if delta.abs() <= 15.0 * tol {
        return Ok(left + right + delta / 15.0);
    }
    if depth == 0 {
        return Err(NumericsError::NoConvergence {
            method: "adaptive_simpson",
            iterations: 0,
        });
    }
    let l = rec(f, a, m, fa, fm, flm, left, tol / 2.0, depth - 1)?;
    let r = rec(f, m, b, fm, fb, frm, right, tol / 2.0, depth - 1)?;
    Ok(l + r)
}

/// Ten-point Gauss–Legendre abscissae on `[-1, 1]` (positive half).
const GL10_X: [f64; 5] = [
    0.148_874_338_981_631_21,
    0.433_395_394_129_247_2,
    0.679_409_568_299_024_4,
    0.865_063_366_688_984_5,
    0.973_906_528_517_171_7,
];
/// Ten-point Gauss–Legendre weights (matching [`GL10_X`]).
const GL10_W: [f64; 5] = [
    0.295_524_224_714_752_87,
    0.269_266_719_309_996_36,
    0.219_086_362_515_982_04,
    0.149_451_349_150_580_6,
    0.066_671_344_308_688_14,
];

/// Ten-point Gauss–Legendre quadrature on `[a, b]`.
///
/// Exact for polynomials of degree ≤ 19; excellent for the smooth barrier
/// integrands of the WKB action.
#[must_use]
pub fn gauss_legendre_10<F: Fn(f64) -> f64>(f: F, a: f64, b: f64) -> f64 {
    let c = 0.5 * (a + b);
    let h = 0.5 * (b - a);
    let mut acc = 0.0;
    for i in 0..5 {
        acc += GL10_W[i] * (f(c + h * GL10_X[i]) + f(c - h * GL10_X[i]));
    }
    acc * h
}

/// Composite 10-point Gauss–Legendre over `panels` equal sub-intervals.
///
/// # Panics
///
/// Panics if `panels == 0`.
#[must_use]
pub fn gauss_legendre_composite<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, panels: usize) -> f64 {
    assert!(
        panels > 0,
        "gauss_legendre_composite requires at least one panel"
    );
    let h = (b - a) / panels as f64;
    (0..panels)
        .map(|i| gauss_legendre_10(&f, a + i as f64 * h, a + (i + 1) as f64 * h))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_exact_for_lines() {
        let v = trapezoid(|x| 2.0 * x + 1.0, 0.0, 4.0, 3);
        assert!((v - 20.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_exact_for_cubics() {
        let v = simpson(|x| x * x * x, 0.0, 2.0, 2);
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_rounds_odd_panels_up() {
        let v = simpson(|x| x * x, 0.0, 1.0, 3);
        assert!((v - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_simpson_handles_peaked_integrand() {
        // ∫ exp(-100 (x-0.5)^2) dx over [0,1] = sqrt(π)/10 erf(5) ≈ sqrt(π)/10.
        let v = adaptive_simpson(
            |x: f64| (-100.0 * (x - 0.5) * (x - 0.5)).exp(),
            0.0,
            1.0,
            1e-12,
            60,
        )
        .unwrap();
        let exact = core::f64::consts::PI.sqrt() / 10.0;
        assert!((v - exact).abs() < 1e-9);
    }

    #[test]
    fn adaptive_simpson_zero_width_interval() {
        assert_eq!(adaptive_simpson(|x| x, 1.0, 1.0, 1e-12, 10).unwrap(), 0.0);
    }

    #[test]
    fn adaptive_simpson_depth_limit_errors() {
        // Integrable singularity with absurd tolerance and tiny depth.
        let e = adaptive_simpson(|x: f64| 1.0 / x.sqrt(), 1e-12, 1.0, 1e-16, 2);
        assert!(e.is_err());
    }

    #[test]
    fn gauss_legendre_10_exact_for_degree_19() {
        let v = gauss_legendre_10(|x| x.powi(19) + x.powi(4), -1.0, 1.0);
        // Odd power integrates to zero; x^4 over [-1,1] = 2/5.
        assert!((v - 0.4).abs() < 1e-13);
    }

    #[test]
    fn composite_gauss_matches_adaptive() {
        let f = |x: f64| (x.sin() * 3.0).exp();
        let g = gauss_legendre_composite(f, 0.0, 3.0, 8);
        let a = adaptive_simpson(f, 0.0, 3.0, 1e-12, 60).unwrap();
        assert!((g - a).abs() < 1e-9);
    }

    #[test]
    fn wkb_like_action_integral() {
        // κ(x) = sqrt(1 - x) on [0, 1]: ∫ = 2/3. The square-root branch
        // point at x = 1 slows Gauss convergence; 64 panels reach ~1e-5.
        let v = gauss_legendre_composite(|x: f64| (1.0 - x).max(0.0).sqrt(), 0.0, 1.0, 64);
        assert!((v - 2.0 / 3.0).abs() < 1e-5, "v = {v}");
    }
}
