//! Error type shared by all numerical routines.

use core::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the routine that failed.
        method: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A bracketing method was given an interval that does not bracket a
    /// root (`f(a)` and `f(b)` have the same sign).
    InvalidBracket {
        /// Function value at the left endpoint.
        f_lo: f64,
        /// Function value at the right endpoint.
        f_hi: f64,
    },
    /// The adaptive step-size controller shrank the step below the
    /// representable minimum — the problem is too stiff for the tolerance.
    StepSizeUnderflow {
        /// Time at which the underflow occurred.
        t: f64,
    },
    /// An argument violated a documented precondition.
    InvalidInput(String),
    /// A matrix was singular (or numerically singular) during elimination.
    SingularMatrix {
        /// Pivot index at which elimination broke down.
        pivot: usize,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoConvergence { method, iterations } => {
                write!(
                    f,
                    "{method} did not converge within {iterations} iterations"
                )
            }
            Self::InvalidBracket { f_lo, f_hi } => write!(
                f,
                "interval does not bracket a root: f(lo) = {f_lo:e}, f(hi) = {f_hi:e}"
            ),
            Self::StepSizeUnderflow { t } => {
                write!(f, "adaptive step size underflowed at t = {t:e}")
            }
            Self::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            Self::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NumericsError::NoConvergence {
            method: "brent",
            iterations: 100,
        };
        assert_eq!(
            e.to_string(),
            "brent did not converge within 100 iterations"
        );
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }

    #[test]
    fn bracket_error_shows_values() {
        let e = NumericsError::InvalidBracket {
            f_lo: 1.0,
            f_hi: 2.0,
        };
        assert!(e.to_string().contains("does not bracket"));
    }
}
