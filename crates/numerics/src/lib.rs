//! # gnr-numerics
//!
//! Numerical substrate for the `gnr-flash` simulator (reproduction of
//! Hossain et al., IEEE SOCC 2014).
//!
//! The paper's program/erase transient is a stiff charge-balance ODE whose
//! tunneling currents vary over many decades within a single pulse; its
//! figures are parameter sweeps; its cited FN-plot technique (ref. [9]) is a
//! linear regression. This crate provides exactly that machinery, built from
//! scratch:
//!
//! * [`ode`] — fixed-step RK4 and Euler, adaptive Dormand–Prince 5(4) with a
//!   PI step controller, cubic-Hermite dense output and zero-crossing
//!   **event detection** (used to locate the paper's `t_sat`).
//! * [`roots`] — bisection, Brent and Newton root finders.
//! * [`integrate`] — trapezoid, Simpson, adaptive Simpson and fixed-order
//!   Gauss–Legendre quadrature (used for WKB transmission integrals).
//! * [`interp`] — linear, natural cubic spline and monotone PCHIP
//!   interpolation.
//! * [`linalg`] — dense LU with partial pivoting and the Thomas tridiagonal
//!   solver (1-D Poisson/band-profile problems).
//! * [`regression`] — ordinary least squares and polynomial fits (FN-plot
//!   parameter extraction).
//! * [`stats`] — summary statistics and histograms (Monte-Carlo variation).
//! * [`optimize`] — golden-section and Nelder–Mead minimisation (design
//!   optimisation, the paper's §V future work).
//! * [`sweep`] — crossbeam-based parallel parameter sweeps.
//!
//! # Example
//!
//! ```
//! use gnr_numerics::ode::{Dopri45, OdeOptions};
//!
//! // dy/dt = -y, y(0) = 1  =>  y(1) = e^{-1}.
//! let sol = Dopri45::new(OdeOptions::default())
//!     .integrate(|_t, y: &[f64], dydt: &mut [f64]| dydt[0] = -y[0], 0.0, &[1.0], 1.0)
//!     .unwrap();
//! let y1 = sol.final_state()[0];
//! assert!((y1 - (-1.0f64).exp()).abs() < 1e-8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod hash;
pub mod integrate;
pub mod interp;
pub mod linalg;
pub mod ode;
pub mod optimize;
pub mod regression;
pub mod roots;
pub mod stats;
pub mod sweep;

pub use error::NumericsError;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, NumericsError>;
