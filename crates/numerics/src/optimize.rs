//! Derivative-free minimisation: golden-section (1-D) and Nelder–Mead
//! (N-D).
//!
//! Powers `gnr-flash::optimize`, the realisation of the paper's §V future
//! work ("optimizing the supply voltage, tunneling current density and
//! oxide thickness for optimum performance"). FN objectives are smooth
//! but wildly scaled, so derivative-free methods are the right tool.
//!
//! # Example
//!
//! ```
//! use gnr_numerics::optimize::golden_section;
//!
//! let m = golden_section(|x| (x - 2.0) * (x - 2.0) + 1.0, 0.0, 5.0, 1e-10, 200)
//!     .unwrap();
//! // Comparison-based search resolves a quadratic minimum to ~sqrt(eps).
//! assert!((m.x - 2.0).abs() < 1e-6);
//! assert!((m.value - 1.0).abs() < 1e-12);
//! ```

use crate::{NumericsError, Result};

/// A located minimum.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Minimum {
    /// Abscissa of the minimum.
    pub x: f64,
    /// Objective value at the minimum.
    pub value: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// A located minimum in N dimensions.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MinimumNd {
    /// Coordinates of the minimum.
    pub x: Vec<f64>,
    /// Objective value at the minimum.
    pub value: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Golden-section search for a unimodal minimum on `[lo, hi]`.
///
/// # Errors
///
/// [`NumericsError::InvalidInput`] for a degenerate interval or
/// non-positive tolerance; [`NumericsError::NoConvergence`] if the
/// interval does not shrink below `tol` within `max_iter`.
pub fn golden_section<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Minimum> {
    if !(lo < hi) {
        return Err(NumericsError::InvalidInput(format!(
            "golden_section requires lo < hi, got [{lo}, {hi}]"
        )));
    }
    if tol <= 0.0 {
        return Err(NumericsError::InvalidInput(
            "tolerance must be positive".into(),
        ));
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    for i in 0..max_iter {
        if (b - a).abs() < tol {
            let x = 0.5 * (a + b);
            return Ok(Minimum {
                x,
                value: f(x),
                iterations: i,
            });
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    Err(NumericsError::NoConvergence {
        method: "golden_section",
        iterations: max_iter,
    })
}

/// Nelder–Mead simplex minimisation from a starting point with initial
/// per-coordinate step sizes.
///
/// Standard coefficients (reflect 1, expand 2, contract ½, shrink ½);
/// converges when the simplex's value spread falls below `tol`.
///
/// # Errors
///
/// [`NumericsError::InvalidInput`] for an empty start, mismatched step
/// length or non-positive tolerance; [`NumericsError::NoConvergence`]
/// when `max_iter` is exhausted.
pub fn nelder_mead<F: Fn(&[f64]) -> f64>(
    f: F,
    start: &[f64],
    steps: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<MinimumNd> {
    let n = start.len();
    if n == 0 {
        return Err(NumericsError::InvalidInput("empty start point".into()));
    }
    if steps.len() != n {
        return Err(NumericsError::InvalidInput(format!(
            "steps length {} does not match dimension {n}",
            steps.len()
        )));
    }
    if tol <= 0.0 {
        return Err(NumericsError::InvalidInput(
            "tolerance must be positive".into(),
        ));
    }

    // Initial simplex: start + per-coordinate offsets.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((start.to_vec(), f(start)));
    for i in 0..n {
        let mut p = start.to_vec();
        p[i] += steps[i];
        let v = f(&p);
        simplex.push((p, v));
    }

    for iter in 0..max_iter {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() <= tol * (1.0 + best.abs()) {
            return Ok(MinimumNd {
                x: simplex[0].0.clone(),
                value: best,
                iterations: iter,
            });
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (p, _) in simplex.iter().take(n) {
            for (ci, pi) in centroid.iter_mut().zip(p) {
                *ci += pi / n as f64;
            }
        }
        let worst_point = simplex[n].0.clone();
        let second_worst = simplex[n - 1].1;

        let blend = |alpha: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&worst_point)
                .map(|(&c, &w)| c + alpha * (c - w))
                .collect()
        };

        // Reflect.
        let reflected = blend(1.0);
        let fr = f(&reflected);
        if fr < best {
            // Expand.
            let expanded = blend(2.0);
            let fe = f(&expanded);
            simplex[n] = if fe < fr {
                (expanded, fe)
            } else {
                (reflected, fr)
            };
            continue;
        }
        if fr < second_worst {
            simplex[n] = (reflected, fr);
            continue;
        }
        // Contract (outside if reflection helped over worst, else inside).
        let contracted = if fr < worst { blend(0.5) } else { blend(-0.5) };
        let fco = f(&contracted);
        if fco < worst.min(fr) {
            simplex[n] = (contracted, fco);
            continue;
        }
        // Shrink toward the best vertex.
        let best_point = simplex[0].0.clone();
        for entry in simplex.iter_mut().skip(1) {
            for (pi, bi) in entry.0.iter_mut().zip(&best_point) {
                *pi = bi + 0.5 * (*pi - bi);
            }
            entry.1 = f(&entry.0);
        }
    }
    Err(NumericsError::NoConvergence {
        method: "nelder_mead",
        iterations: max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_quadratic() {
        let m = golden_section(|x| (x - 3.0).powi(2), -10.0, 10.0, 1e-10, 200).unwrap();
        assert!((m.x - 3.0).abs() < 1e-8);
    }

    #[test]
    fn golden_section_asymmetric_function() {
        // Minimum of x·exp(x) on [-5, 2] is at x = -1. Comparison-based
        // search is noise-limited to ~sqrt(eps) near a quadratic minimum.
        let m = golden_section(|x: f64| x * x.exp(), -5.0, 2.0, 1e-12, 300).unwrap();
        assert!((m.x + 1.0).abs() < 1e-6, "x = {}", m.x);
    }

    #[test]
    fn golden_section_validates_input() {
        assert!(golden_section(|x| x, 1.0, 0.0, 1e-8, 100).is_err());
        assert!(golden_section(|x| x, 0.0, 1.0, -1.0, 100).is_err());
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let rosen = |p: &[f64]| {
            let (x, y) = (p[0], p[1]);
            (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
        };
        let m = nelder_mead(rosen, &[-1.2, 1.0], &[0.5, 0.5], 1e-12, 5000).unwrap();
        assert!((m.x[0] - 1.0).abs() < 1e-4, "x = {:?}", m.x);
        assert!((m.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_sphere_3d() {
        let sphere = |p: &[f64]| p.iter().map(|x| x * x).sum::<f64>();
        let m = nelder_mead(sphere, &[3.0, -2.0, 1.0], &[1.0, 1.0, 1.0], 1e-14, 5000).unwrap();
        assert!(m.value < 1e-10);
    }

    #[test]
    fn nelder_mead_validates_input() {
        let f = |p: &[f64]| p[0];
        assert!(nelder_mead(f, &[], &[], 1e-8, 10).is_err());
        assert!(nelder_mead(f, &[1.0], &[1.0, 2.0], 1e-8, 10).is_err());
        assert!(nelder_mead(f, &[1.0], &[1.0], 0.0, 10).is_err());
    }

    #[test]
    fn nelder_mead_exhausts_iterations_on_hard_problem() {
        let rosen = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let r = nelder_mead(rosen, &[-1.2, 1.0], &[0.5, 0.5], 1e-14, 5);
        assert!(matches!(r, Err(NumericsError::NoConvergence { .. })));
    }
}
