//! One-dimensional interpolation: piecewise linear, natural cubic spline and
//! monotone PCHIP.
//!
//! Used for resampling transient traces onto plotting grids and for table
//! lookups (e.g. GNR band-gap vs ribbon width).
//!
//! # Example
//!
//! ```
//! use gnr_numerics::interp::LinearInterpolator;
//!
//! let li = LinearInterpolator::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 20.0]).unwrap();
//! assert_eq!(li.eval(0.5), 5.0);
//! ```

use crate::{NumericsError, Result};

fn validate_nodes(xs: &[f64], ys: &[f64], min_len: usize) -> Result<()> {
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidInput(format!(
            "x and y lengths differ: {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < min_len {
        return Err(NumericsError::InvalidInput(format!(
            "need at least {min_len} nodes, got {}",
            xs.len()
        )));
    }
    if xs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(NumericsError::InvalidInput(
            "x nodes must be strictly increasing".into(),
        ));
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(NumericsError::InvalidInput("nodes must be finite".into()));
    }
    Ok(())
}

/// Locates the segment index `i` with `xs[i] <= x < xs[i+1]`, clamped.
fn segment(xs: &[f64], x: f64) -> usize {
    match xs.binary_search_by(|p| p.partial_cmp(&x).expect("finite nodes")) {
        Ok(i) => i.min(xs.len() - 2),
        Err(0) => 0,
        Err(i) if i >= xs.len() => xs.len() - 2,
        Err(i) => i - 1,
    }
}

/// Piecewise-linear interpolation over strictly increasing nodes.
///
/// Evaluation clamps to the end values outside the hull (flat
/// extrapolation), which is the safe behaviour for physical lookup tables.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearInterpolator {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterpolator {
    /// Builds the interpolator.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] for mismatched lengths, fewer than
    /// two nodes, non-increasing or non-finite nodes.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        validate_nodes(&xs, &ys, 2)?;
        Ok(Self { xs, ys })
    }

    /// Evaluates at `x` (clamped to the node range).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= *self.xs.last().expect("non-empty") {
            return *self.ys.last().expect("non-empty");
        }
        let i = segment(&self.xs, x);
        let t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + t * (self.ys[i + 1] - self.ys[i])
    }

    /// The node abscissae.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The node ordinates.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// Natural cubic spline (second derivative zero at both ends).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the nodes.
    m: Vec<f64>,
}

impl CubicSpline {
    /// Builds a natural cubic spline through the nodes.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] for mismatched lengths, fewer than
    /// three nodes, non-increasing or non-finite nodes.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        validate_nodes(&xs, &ys, 3)?;
        let n = xs.len();
        // Solve the tridiagonal system for second derivatives (natural BCs).
        let mut sub = vec![0.0; n];
        let mut diag = vec![0.0; n];
        let mut sup = vec![0.0; n];
        let mut rhs = vec![0.0; n];
        diag[0] = 1.0;
        diag[n - 1] = 1.0;
        for i in 1..n - 1 {
            let h0 = xs[i] - xs[i - 1];
            let h1 = xs[i + 1] - xs[i];
            sub[i] = h0;
            diag[i] = 2.0 * (h0 + h1);
            sup[i] = h1;
            rhs[i] = 6.0 * ((ys[i + 1] - ys[i]) / h1 - (ys[i] - ys[i - 1]) / h0);
        }
        let m = crate::linalg::solve_tridiagonal(&sub, &diag, &sup, &rhs)?;
        Ok(Self { xs, ys, m })
    }

    /// Evaluates at `x` (clamped to the node range).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.clamp(self.xs[0], *self.xs.last().expect("non-empty"));
        let i = segment(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        a * self.ys[i]
            + b * self.ys[i + 1]
            + ((a * a * a - a) * self.m[i] + (b * b * b - b) * self.m[i + 1]) * h * h / 6.0
    }
}

/// Monotone piecewise-cubic Hermite interpolation (Fritsch–Carlson).
///
/// Preserves monotonicity of the data — important when resampling the
/// strictly decreasing `Jin(t)` / increasing `Jout(t)` traces of Figure 5 so
/// that no spurious oscillation creates a fake crossing.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Pchip {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Node derivatives.
    d: Vec<f64>,
}

impl Pchip {
    /// Builds the monotone interpolant.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] for mismatched lengths, fewer than
    /// two nodes, non-increasing or non-finite nodes.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        validate_nodes(&xs, &ys, 2)?;
        let n = xs.len();
        let mut delta = vec![0.0; n - 1];
        for i in 0..n - 1 {
            delta[i] = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]);
        }
        let mut d = vec![0.0; n];
        if n == 2 {
            d[0] = delta[0];
            d[1] = delta[0];
        } else {
            d[0] = end_slope(xs[1] - xs[0], xs[2] - xs[1], delta[0], delta[1]);
            d[n - 1] = end_slope(
                xs[n - 1] - xs[n - 2],
                xs[n - 2] - xs[n - 3],
                delta[n - 2],
                delta[n - 3],
            );
            for i in 1..n - 1 {
                if delta[i - 1] * delta[i] <= 0.0 {
                    d[i] = 0.0;
                } else {
                    let h0 = xs[i] - xs[i - 1];
                    let h1 = xs[i + 1] - xs[i];
                    let w1 = 2.0 * h1 + h0;
                    let w2 = h1 + 2.0 * h0;
                    d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
                }
            }
        }
        Ok(Self { xs, ys, d })
    }

    /// Evaluates at `x` (clamped to the node range).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.clamp(self.xs[0], *self.xs.last().expect("non-empty"));
        let i = segment(&self.xs, x);
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i] + h * h10 * self.d[i] + h01 * self.ys[i + 1] + h * h11 * self.d[i + 1]
    }
}

/// Scalar cubic Hermite evaluation on one segment `[t0, t1]` with node
/// values `y0, y1` and node derivatives `d0, d1` — the dense-output
/// interpolant of the adaptive ODE solvers, exposed so trajectory caches
/// (e.g. the charge-balance flow map) can sample stored solutions
/// without re-integrating. A degenerate segment (`t1 == t0`) returns
/// `y1`.
#[must_use]
pub fn hermite_segment(t: f64, t0: f64, t1: f64, y0: f64, y1: f64, d0: f64, d1: f64) -> f64 {
    let h = t1 - t0;
    if h == 0.0 {
        return y1;
    }
    let s = (t - t0) / h;
    let s2 = s * s;
    let s3 = s2 * s;
    let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
    let h10 = s3 - 2.0 * s2 + s;
    let h01 = -2.0 * s3 + 3.0 * s2;
    let h11 = s3 - s2;
    h00 * y0 + h * h10 * d0 + h01 * y1 + h * h11 * d1
}

/// Inverse lookup on a monotone Hermite trajectory: the earliest `t`
/// with `y(t) == target`, where `y` is the piecewise cubic Hermite
/// through nodes `(ts, ys)` with derivatives `ds`.
///
/// `ts` must be strictly increasing and `ys` strictly monotone (either
/// direction); the nodes are the accepted steps of an ODE solve, so both
/// hold for a 1-D autonomous flow approaching an equilibrium. Returns
/// `None` when `target` lies outside the trajectory's value range or the
/// inputs are degenerate (fewer than two nodes, mismatched lengths).
///
/// Within the bracketing segment the crossing is localised by a guarded
/// Newton iteration on the Hermite interpolant (bisection fallback), which
/// needs only continuity and the node-value bracket and converges to f64
/// resolution in a handful of value+derivative evaluations.
#[must_use]
pub fn invert_monotone_hermite(ts: &[f64], ys: &[f64], ds: &[f64], target: f64) -> Option<f64> {
    if ts.len() < 2 || ts.len() != ys.len() || ts.len() != ds.len() {
        return None;
    }
    let first = ys[0];
    let last = *ys.last().expect("non-empty");
    // Orientation: map values onto an increasing axis.
    let sign = if last > first {
        1.0
    } else if last < first {
        -1.0
    } else {
        return None;
    };
    let tv = sign * target;
    if tv < sign * first || tv > sign * last {
        return None;
    }
    // Bracketing segment on the monotone node values.
    let idx =
        match ys.binary_search_by(|probe| (sign * probe).partial_cmp(&tv).expect("finite nodes")) {
            Ok(i) => return Some(ts[i]),
            Err(i) => i,
        };
    let hi = idx.min(ys.len() - 1).max(1);
    let lo = hi - 1;
    Some(invert_hermite_segment(
        ts[lo], ts[hi], ys[lo], ys[hi], ds[lo], ds[hi], target,
    ))
}

/// Inverse lookup on one monotone Hermite segment `[t0, t1]`: the `t`
/// with `y(t) == target`, localised by the same guarded Newton–bisection
/// hybrid as [`invert_monotone_hermite`] — which delegates here, so batched
/// callers that find the bracketing segment themselves (e.g. a sorted-query
/// merge walk over a trajectory) produce bit-identical results to the
/// scalar binary-search path. The caller must supply a segment whose node
/// values bracket `target`; on strictly monotone data the segment-local
/// orientation `y1 > y0` equals the trajectory-global one.
///
/// The iteration runs in the normalised coordinate `s ∈ [0, 1]` so the
/// cubic and its derivative cost one Horner pass each. A Newton step that
/// lands outside the current sign-change bracket (or divides by a vanishing
/// slope) is replaced by the bracket midpoint, so convergence never regresses
/// below bisection even on locally flat or slightly non-monotone segments.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn invert_hermite_segment(
    t0: f64,
    t1: f64,
    y0: f64,
    y1: f64,
    d0: f64,
    d1: f64,
    target: f64,
) -> f64 {
    let sign = if y1 > y0 { 1.0 } else { -1.0 };
    let tv = sign * target;
    let h = t1 - t0;
    // Hermite basis in the normalised coordinate s = (t - t0) / h.
    let val = |s: f64| {
        let s2 = s * s;
        let s3 = s2 * s;
        (2.0 * s3 - 3.0 * s2 + 1.0) * y0
            + h * (s3 - 2.0 * s2 + s) * d0
            + (3.0 * s2 - 2.0 * s3) * y1
            + h * (s3 - s2) * d1
    };
    let slope = |s: f64| {
        let s2 = s * s;
        (6.0 * s2 - 6.0 * s) * y0
            + h * (3.0 * s2 - 4.0 * s + 1.0) * d0
            + (6.0 * s - 6.0 * s2) * y1
            + h * (3.0 * s2 - 2.0 * s) * d1
    };
    // Invariant: g(a) and g(b) straddle zero on the sign-adjusted axis.
    let (mut a, mut b) = (0.0_f64, 1.0_f64);
    let mut s = 0.5;
    for _ in 0..64 {
        let g = sign * val(s) - tv;
        if g < 0.0 {
            a = s;
        } else if g > 0.0 {
            b = s;
        } else {
            return t0 + s * h;
        }
        let newton = s - g / (sign * slope(s));
        // NaN/inf and out-of-bracket steps all fail this test, falling
        // back to the bracket midpoint.
        let next = if newton > a && newton < b {
            newton
        } else {
            0.5 * (a + b)
        };
        if (next - s).abs() <= f64::EPSILON * next.abs() {
            return t0 + next * h;
        }
        s = next;
        if (b - a) <= f64::EPSILON {
            break;
        }
    }
    t0 + s * h
}

/// Fritsch–Carlson one-sided three-point end slope with monotonicity guard.
fn end_slope(h0: f64, h1: f64, d0: f64, d1: f64) -> f64 {
    let s = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if s * d0 <= 0.0 {
        0.0
    } else if d0 * d1 < 0.0 && s.abs() > 3.0 * d0.abs() {
        3.0 * d0
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_nodes_and_midpoints() {
        let li = LinearInterpolator::new(vec![0.0, 2.0, 4.0], vec![1.0, 3.0, -1.0]).unwrap();
        assert_eq!(li.eval(0.0), 1.0);
        assert_eq!(li.eval(2.0), 3.0);
        assert_eq!(li.eval(1.0), 2.0);
        assert_eq!(li.eval(3.0), 1.0);
    }

    #[test]
    fn linear_clamps_outside_hull() {
        let li = LinearInterpolator::new(vec![0.0, 1.0], vec![5.0, 6.0]).unwrap();
        assert_eq!(li.eval(-10.0), 5.0);
        assert_eq!(li.eval(10.0), 6.0);
    }

    #[test]
    fn rejects_unsorted_nodes() {
        assert!(LinearInterpolator::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterpolator::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn rejects_nan_nodes() {
        assert!(LinearInterpolator::new(vec![0.0, f64::NAN], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn spline_reproduces_parabola_closely() {
        let xs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0 * 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * x).collect();
        let sp = CubicSpline::new(xs, ys).unwrap();
        // Natural BCs distort the ends; check the interior.
        for &x in &[0.5, 0.77, 1.0, 1.3, 1.5] {
            assert!((sp.eval(x) - x * x).abs() < 2e-3, "x = {x}");
        }
    }

    #[test]
    fn spline_interpolates_nodes_exactly() {
        let sp = CubicSpline::new(vec![0.0, 1.0, 2.0, 3.0], vec![1.0, -1.0, 4.0, 2.0]).unwrap();
        for (x, y) in [(0.0, 1.0), (1.0, -1.0), (2.0, 4.0), (3.0, 2.0)] {
            assert!((sp.eval(x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn pchip_preserves_monotonicity() {
        // Data with a sharp knee that overshoots with an ordinary spline.
        let xs = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = vec![0.0, 0.0, 0.0, 1.0, 1.0];
        let p = Pchip::new(xs, ys).unwrap();
        let mut prev = p.eval(0.0);
        for i in 1..=400 {
            let x = i as f64 / 100.0;
            let y = p.eval(x);
            assert!(y >= prev - 1e-12, "not monotone at x = {x}");
            assert!((-1e-12..=1.0 + 1e-12).contains(&y), "overshoot at x = {x}");
            prev = y;
        }
    }

    #[test]
    fn pchip_two_points_is_linear() {
        let p = Pchip::new(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        assert!((p.eval(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pchip_interpolates_nodes_exactly() {
        let p = Pchip::new(vec![0.0, 1.0, 3.0], vec![2.0, 5.0, 4.0]).unwrap();
        assert!((p.eval(1.0) - 5.0).abs() < 1e-12);
        assert!((p.eval(3.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hermite_segment_reproduces_cubics_exactly() {
        // y = t^3 − 2t on [1, 3]: node values and derivatives exact.
        let f = |t: f64| t * t * t - 2.0 * t;
        let d = |t: f64| 3.0 * t * t - 2.0;
        for &t in &[1.0, 1.3, 2.0, 2.71, 3.0] {
            let y = hermite_segment(t, 1.0, 3.0, f(1.0), f(3.0), d(1.0), d(3.0));
            assert!((y - f(t)).abs() < 1e-12, "t = {t}");
        }
        assert_eq!(hermite_segment(5.0, 2.0, 2.0, 1.0, 7.0, 0.0, 0.0), 7.0);
    }

    /// Exponential-decay trajectory nodes for the inverse-lookup tests.
    fn decay_nodes() -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let ts: Vec<f64> = (0..=20).map(|i| f64::from(i) * 0.25).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| (-t).exp()).collect();
        let ds: Vec<f64> = ts.iter().map(|&t| -(-t).exp()).collect();
        (ts, ys, ds)
    }

    #[test]
    fn monotone_inverse_recovers_times() {
        let (ts, ys, ds) = decay_nodes();
        // Tolerance is the cubic-Hermite truncation error of the coarse
        // h = 0.25 node grid (~h⁴/384), not the bisection resolution.
        for &t_true in &[0.1f64, 0.9, 2.3, 4.99] {
            let t = invert_monotone_hermite(&ts, &ys, &ds, (-t_true).exp()).unwrap();
            assert!((t - t_true).abs() < 1e-4, "t = {t} vs {t_true}");
        }
        // Node values return node times exactly.
        assert_eq!(invert_monotone_hermite(&ts, &ys, &ds, ys[4]), Some(ts[4]));
    }

    #[test]
    fn monotone_inverse_handles_increasing_data() {
        let ts: Vec<f64> = (0..=10).map(f64::from).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| t * t + 1.0).collect();
        let ds: Vec<f64> = ts.iter().map(|&t| 2.0 * t).collect();
        let t = invert_monotone_hermite(&ts, &ys, &ds, 26.0).unwrap();
        assert!((t - 5.0).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn segment_inverse_matches_scalar_path_bitwise() {
        let (ts, ys, ds) = decay_nodes();
        // A strictly interior target on a known segment: the scalar
        // binary search lands on [lo, hi] = [3, 4]; the segment helper
        // fed that same bracket must return the identical bits.
        let target = 0.5 * (ys[3] + ys[4]);
        let scalar = invert_monotone_hermite(&ts, &ys, &ds, target).unwrap();
        let seg = invert_hermite_segment(ts[3], ts[4], ys[3], ys[4], ds[3], ds[4], target);
        assert_eq!(scalar.to_bits(), seg.to_bits());
    }

    #[test]
    fn monotone_inverse_rejects_out_of_range_and_degenerate_input() {
        let (ts, ys, ds) = decay_nodes();
        assert_eq!(invert_monotone_hermite(&ts, &ys, &ds, 2.0), None);
        assert_eq!(invert_monotone_hermite(&ts, &ys, &ds, -0.5), None);
        assert_eq!(
            invert_monotone_hermite(&ts[..1], &ys[..1], &ds[..1], 1.0),
            None
        );
        assert_eq!(invert_monotone_hermite(&ts, &ys[..3], &ds, 0.5), None);
        // Constant data has no invertible direction.
        assert_eq!(
            invert_monotone_hermite(&[0.0, 1.0], &[3.0, 3.0], &[0.0, 0.0], 3.0),
            None
        );
    }
}
