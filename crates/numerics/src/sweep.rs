//! Parallel parameter sweeps over crossbeam scoped threads.
//!
//! Every figure of the paper is a sweep (over `VGS`, `GCR`, `XTO`); this
//! module evaluates the grid points in parallel while preserving input
//! order in the output.
//!
//! # Example
//!
//! ```
//! use gnr_numerics::sweep::parallel_map;
//!
//! let squares = parallel_map(&[1.0f64, 2.0, 3.0, 4.0], |&x| x * x);
//! assert_eq!(squares, vec![1.0, 4.0, 9.0, 16.0]);
//! ```

use parking_lot::Mutex;

/// Applies `f` to every item, in parallel, preserving order.
///
/// Spawns at most `available_parallelism` worker threads (and no more than
/// one per item); falls back to a sequential map for tiny inputs where
/// thread startup would dominate.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    const SEQUENTIAL_CUTOFF: usize = 8;
    if items.len() <= SEQUENTIAL_CUTOFF {
        return items.iter().map(&f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(items.len());

    let results: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let value = f(&items[idx]);
                results.lock()[idx] = Some(value);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every index was computed"))
        .collect()
}

/// Cartesian product of two parameter slices, row-major
/// (`a[0]` paired with every `b`, then `a[1]`, …).
pub fn grid<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_large_inputs() {
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(&items, |&i| i * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn sequential_cutoff_path() {
        let out = parallel_map(&[1, 2, 3], |&i| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], |&i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn grid_is_row_major() {
        let g = grid(&[1, 2], &["a", "b", "c"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[2], (1, "c"));
        assert_eq!(g[3], (2, "a"));
    }

    #[test]
    fn parallel_map_runs_closures_with_captures() {
        let offset = 100.0;
        let items: Vec<f64> = (0..64).map(f64::from).collect();
        let out = parallel_map(&items, |&x| x + offset);
        assert_eq!(out[63], 163.0);
    }
}
