//! Summary statistics and histograms for Monte-Carlo variation studies.
//!
//! # Example
//!
//! ```
//! use gnr_numerics::stats::Summary;
//!
//! let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
//! assert_eq!(s.mean, 3.0);
//! assert_eq!(s.median, 3.0);
//! ```

use crate::{NumericsError, Result};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n−1) standard deviation; 0 for a single sample.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 5th percentile.
    pub p05: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes summary statistics.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] for an empty sample or non-finite
    /// values.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(NumericsError::InvalidInput("empty sample".into()));
        }
        if samples.iter().any(|v| !v.is_finite()) {
            return Err(NumericsError::InvalidInput("samples must be finite".into()));
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples
                .iter()
                .map(|&x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ok(Self {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            p05: percentile_sorted(&sorted, 5.0),
            p95: percentile_sorted(&sorted, 95.0),
        })
    }
}

/// Linear-interpolation percentile of an already sorted slice.
///
/// # Panics
///
/// Panics on an empty slice or `p` outside `[0, 100]`.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be within [0, 100]"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// A fixed-width histogram.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram of `samples` with `bins` equal-width bins over
    /// `[lo, hi]`; out-of-range samples clamp to the edge bins.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] when `bins == 0` or `lo >= hi`.
    pub fn new(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(NumericsError::InvalidInput("need at least one bin".into()));
        }
        if !(lo < hi) {
            return Err(NumericsError::InvalidInput(format!(
                "histogram range [{lo}, {hi}] must be increasing"
            )));
        }
        let mut counts = vec![0usize; bins];
        let width = (hi - lo) / bins as f64;
        for &s in samples {
            let idx = (((s - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1;
        }
        Ok(Self { lo, hi, counts })
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Total number of counted samples.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased std dev of this classic sample is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[42.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.p05, 42.0);
    }

    #[test]
    fn summary_rejects_nan() {
        assert!(Summary::from_samples(&[1.0, f64::NAN]).is_err());
        assert!(Summary::from_samples(&[]).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let h = Histogram::new(&[-1.0, 0.1, 0.5, 0.9, 2.0], 0.0, 1.0, 2).unwrap();
        assert_eq!(h.counts(), &[2, 3]); // -1.0 clamps left; 0.5 lands in the right bin; 2.0 clamps right
        assert_eq!(h.total(), 5);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_range() {
        assert!(Histogram::new(&[1.0], 1.0, 1.0, 4).is_err());
        assert!(Histogram::new(&[1.0], 0.0, 1.0, 0).is_err());
    }
}
