//! Small dense and tridiagonal linear solvers.
//!
//! The band-profile / 1-D Poisson problems of the device simulator are
//! tridiagonal; polynomial fitting needs small dense solves. Nothing here is
//! tuned for large matrices — the workspace never needs them.
//!
//! # Example
//!
//! ```
//! use gnr_numerics::linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
//! let x = a.solve(&[5.0, 10.0]).unwrap();
//! assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
//! ```

use crate::{NumericsError, Result};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] when rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NumericsError::InvalidInput(
                "matrix must be non-empty".into(),
            ));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(NumericsError::InvalidInput("ragged rows".into()));
        }
        let mut m = Self::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            m.data[i * cols..(i + 1) * cols].copy_from_slice(r);
        }
        Ok(m)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Solves `A x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] for a non-square `A` or mismatched
    /// `b`; [`NumericsError::SingularMatrix`] when a pivot vanishes.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.rows != self.cols {
            return Err(NumericsError::InvalidInput(format!(
                "solve requires a square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        if b.len() != self.rows {
            return Err(NumericsError::InvalidInput(format!(
                "rhs length {} does not match {} rows",
                b.len(),
                self.rows
            )));
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(NumericsError::SingularMatrix { pivot: col });
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let inv = 1.0 / a[col * n + col];
            for r in col + 1..n {
                let factor = a[r * n + col] * inv;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in col + 1..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

/// Solves a tridiagonal system with the Thomas algorithm.
///
/// `sub[0]` and `sup[n-1]` are ignored (conventional padding).
///
/// # Errors
///
/// [`NumericsError::InvalidInput`] for mismatched lengths;
/// [`NumericsError::SingularMatrix`] when elimination breaks down.
pub fn solve_tridiagonal(sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64]) -> Result<Vec<f64>> {
    let n = diag.len();
    if n == 0 {
        return Err(NumericsError::InvalidInput("empty system".into()));
    }
    if sub.len() != n || sup.len() != n || rhs.len() != n {
        return Err(NumericsError::InvalidInput(
            "sub/diag/sup/rhs must have equal lengths".into(),
        ));
    }
    let mut c = vec![0.0; n];
    let mut d = vec![0.0; n];
    if diag[0].abs() < 1e-300 {
        return Err(NumericsError::SingularMatrix { pivot: 0 });
    }
    c[0] = sup[0] / diag[0];
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - sub[i] * c[i - 1];
        if denom.abs() < 1e-300 {
            return Err(NumericsError::SingularMatrix { pivot: i });
        }
        c[i] = sup[i] / denom;
        d[i] = (rhs[i] - sub[i] * d[i - 1]) / denom;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = d[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d[i] - c[i] * x[i + 1];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_solve_identity() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert_eq!(a.solve(&[3.0, -4.0]).unwrap(), vec![3.0, -4.0]);
    }

    #[test]
    fn dense_solve_requires_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 5.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn dense_solve_3x3() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(&expect) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn tridiagonal_matches_dense() {
        let sub = [0.0, 1.0, 2.0, 1.0];
        let diag = [4.0, 5.0, 6.0, 5.0];
        let sup = [1.0, 2.0, 1.0, 0.0];
        let rhs = [6.0, 12.0, 18.0, 11.0];
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.0, 0.0],
            &[1.0, 5.0, 2.0, 0.0],
            &[0.0, 2.0, 6.0, 1.0],
            &[0.0, 0.0, 1.0, 5.0],
        ])
        .unwrap();
        let xd = a.solve(&rhs).unwrap();
        for (xi, di) in x.iter().zip(&xd) {
            assert!((xi - di).abs() < 1e-12);
        }
    }

    #[test]
    fn tridiagonal_length_mismatch_rejected() {
        assert!(solve_tridiagonal(&[0.0], &[1.0, 2.0], &[0.0, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }
}
