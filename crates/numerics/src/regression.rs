//! Least-squares fitting: ordinary linear regression and polynomial fits.
//!
//! The Fowler–Nordheim plot technique (paper ref. [9], Chiou et al. 2001)
//! extracts the tunneling coefficients from the straight line
//! `ln(J/E²) = ln A − B/E`. [`fit_line`] provides the slope/intercept with
//! goodness-of-fit statistics; `gnr-tunneling::fn_plot` builds on it.
//!
//! # Example
//!
//! ```
//! use gnr_numerics::regression::fit_line;
//!
//! let xs = [0.0, 1.0, 2.0, 3.0];
//! let ys = [1.0, 3.0, 5.0, 7.0];
//! let fit = fit_line(&xs, &ys).unwrap();
//! assert!((fit.slope - 2.0).abs() < 1e-12);
//! assert!((fit.intercept - 1.0).abs() < 1e-12);
//! assert!((fit.r_squared - 1.0).abs() < 1e-12);
//! ```

use crate::linalg::Matrix;
use crate::{NumericsError, Result};

/// Result of an ordinary least-squares line fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Standard error of the slope estimate.
    pub slope_stderr: f64,
    /// Standard error of the intercept estimate.
    pub intercept_stderr: f64,
}

impl LinearFit {
    /// Predicts `y` at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Ordinary least-squares fit of a straight line.
///
/// # Errors
///
/// [`NumericsError::InvalidInput`] for fewer than two points, mismatched
/// lengths, non-finite data, or degenerate (constant) abscissae.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Result<LinearFit> {
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidInput(format!(
            "x and y lengths differ: {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    let n = xs.len();
    if n < 2 {
        return Err(NumericsError::InvalidInput(
            "need at least two points".into(),
        ));
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(NumericsError::InvalidInput("data must be finite".into()));
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mean_x;
        let dy = ys[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(NumericsError::InvalidInput(
            "abscissae are constant; slope is undefined".into(),
        ));
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    // Residual variance and standard errors.
    let ss_res: f64 = (0..n)
        .map(|i| {
            let r = ys[i] - (intercept + slope * xs[i]);
            r * r
        })
        .sum();
    let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };
    let dof = (n as i64 - 2).max(1) as f64;
    let sigma2 = ss_res / dof;
    let slope_stderr = (sigma2 / sxx).sqrt();
    let intercept_stderr = (sigma2 * (1.0 / nf + mean_x * mean_x / sxx)).sqrt();

    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
        slope_stderr,
        intercept_stderr,
    })
}

/// Least-squares polynomial fit of the given `degree`; returns coefficients
/// lowest power first (`c[0] + c[1] x + …`).
///
/// Solved via the normal equations with the dense LU solver — adequate for
/// the small degrees used in device-curve fitting.
///
/// # Errors
///
/// [`NumericsError::InvalidInput`] when fewer than `degree + 1` points are
/// given or data is non-finite; [`NumericsError::SingularMatrix`] for
/// degenerate abscissae.
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Vec<f64>> {
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidInput(format!(
            "x and y lengths differ: {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < degree + 1 {
        return Err(NumericsError::InvalidInput(format!(
            "need at least {} points for degree {degree}",
            degree + 1
        )));
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(NumericsError::InvalidInput("data must be finite".into()));
    }
    let m = degree + 1;
    // Normal equations: (VᵀV) c = Vᵀ y with Vandermonde V.
    let mut ata = Matrix::zeros(m, m);
    let mut aty = vec![0.0; m];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut powers = vec![1.0; m];
        for p in 1..m {
            powers[p] = powers[p - 1] * x;
        }
        for i in 0..m {
            aty[i] += powers[i] * y;
            for j in 0..m {
                ata.set(i, j, ata.get(i, j) + powers[i] * powers[j]);
            }
        }
    }
    ata.solve(&aty)
}

/// Evaluates a polynomial with coefficients lowest power first (Horner).
#[must_use]
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_has_unit_r_squared() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -3.0 * x + 7.0).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.slope + 3.0).abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.slope_stderr < 1e-10);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + 1.0 + 0.01 * ((i * 2654435761) % 100) as f64 / 100.0)
            .collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn constant_x_rejected() {
        assert!(fit_line(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(fit_line(&[1.0], &[1.0, 2.0]).is_err());
        assert!(polyfit(&[1.0], &[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn polyfit_recovers_cubic() {
        let xs: Vec<f64> = (-5..=5).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 1.0 - 2.0 * x + 0.5 * x * x * x)
            .collect();
        let c = polyfit(&xs, &ys, 3).unwrap();
        let expect = [1.0, -2.0, 0.0, 0.5];
        for (ci, ei) in c.iter().zip(&expect) {
            assert!((ci - ei).abs() < 1e-9, "{c:?}");
        }
    }

    #[test]
    fn polyval_matches_horner_expansion() {
        let c = [1.0, -2.0, 3.0];
        assert!((polyval(&c, 2.0) - (1.0 - 4.0 + 12.0)).abs() < 1e-14);
    }

    #[test]
    fn underdetermined_polyfit_rejected() {
        assert!(polyfit(&[0.0, 1.0], &[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn predict_is_affine() {
        let fit = fit_line(&[0.0, 1.0], &[1.0, 2.0]).unwrap();
        assert!((fit.predict(10.0) - 11.0).abs() < 1e-12);
    }
}
