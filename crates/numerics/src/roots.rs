//! Scalar root finding: bisection, Brent's method and damped Newton.
//!
//! Used to invert device relations — e.g. "which control-gate voltage
//! produces a target tunneling current density" in the ISPP verify loop, and
//! threshold extraction from read-current curves.
//!
//! # Example
//!
//! ```
//! use gnr_numerics::roots::brent;
//!
//! let root = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14, 100).unwrap();
//! assert!((root - 2.0f64.sqrt()).abs() < 1e-12);
//! ```

use crate::{NumericsError, Result};

/// Bisection on `[lo, hi]`; requires a sign change.
///
/// Robust and guaranteed to converge linearly; preferred when the function
/// is expensive but monotone and the bracket is known.
///
/// # Errors
///
/// [`NumericsError::InvalidBracket`] when `f(lo)` and `f(hi)` have the same
/// sign, [`NumericsError::NoConvergence`] if `max_iter` is exhausted before
/// the interval shrinks below `tol`, and [`NumericsError::InvalidInput`] for
/// a degenerate interval or non-positive tolerance.
pub fn bisect<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64, max_iter: usize) -> Result<f64> {
    if !(lo < hi) {
        return Err(NumericsError::InvalidInput(format!(
            "bisect requires lo < hi, got [{lo}, {hi}]"
        )));
    }
    if tol <= 0.0 {
        return Err(NumericsError::InvalidInput(
            "tolerance must be positive".into(),
        ));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::InvalidBracket { f_lo: fa, f_hi: fb });
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || (b - a) < tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(NumericsError::NoConvergence {
        method: "bisect",
        iterations: max_iter,
    })
}

/// Brent's method (inverse quadratic interpolation + secant + bisection).
///
/// Superlinear convergence with bisection's robustness; the default root
/// finder throughout the workspace.
///
/// # Errors
///
/// As for [`bisect`].
pub fn brent<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, tol: f64, max_iter: usize) -> Result<f64> {
    if !(lo < hi) {
        return Err(NumericsError::InvalidInput(format!(
            "brent requires lo < hi, got [{lo}, {hi}]"
        )));
    }
    if tol <= 0.0 {
        return Err(NumericsError::InvalidInput(
            "tolerance must be positive".into(),
        ));
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::InvalidBracket { f_lo: fa, f_hi: fb });
    }
    // Ensure |f(b)| <= |f(a)|: b is the best iterate.
    if fa.abs() < fb.abs() {
        core::mem::swap(&mut a, &mut b);
        core::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo_bound = (3.0 * a + b) / 4.0;
        let cond1 = !((s > lo_bound.min(b)) && (s < lo_bound.max(b)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= d.abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && d.abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c - b;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            core::mem::swap(&mut a, &mut b);
            core::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericsError::NoConvergence {
        method: "brent",
        iterations: max_iter,
    })
}

/// Damped Newton–Raphson with a numerically differenced derivative.
///
/// Falls back to halving the step when the residual does not decrease.
///
/// # Errors
///
/// [`NumericsError::NoConvergence`] if the residual does not drop below
/// `tol` in `max_iter` iterations, [`NumericsError::InvalidInput`] for a
/// non-positive tolerance or a vanishing derivative at an iterate.
pub fn newton<F: Fn(f64) -> f64>(f: F, x0: f64, tol: f64, max_iter: usize) -> Result<f64> {
    if tol <= 0.0 {
        return Err(NumericsError::InvalidInput(
            "tolerance must be positive".into(),
        ));
    }
    let mut x = x0;
    let mut fx = f(x);
    for _ in 0..max_iter {
        if fx.abs() < tol {
            return Ok(x);
        }
        let h = 1e-7 * x.abs().max(1e-7);
        let dfx = (f(x + h) - f(x - h)) / (2.0 * h);
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(NumericsError::InvalidInput(format!(
                "newton: derivative vanished at x = {x}"
            )));
        }
        let mut step = fx / dfx;
        // Damping: halve until the residual shrinks (at most 20 times).
        let mut accepted = false;
        for _ in 0..20 {
            let x_new = x - step;
            let f_new = f(x_new);
            if f_new.abs() < fx.abs() {
                x = x_new;
                fx = f_new;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            return Err(NumericsError::NoConvergence {
                method: "newton",
                iterations: max_iter,
            });
        }
    }
    Err(NumericsError::NoConvergence {
        method: "newton",
        iterations: max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((r - 2.0f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        let e = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100);
        assert!(matches!(e, Err(NumericsError::InvalidBracket { .. })));
    }

    #[test]
    fn bisect_returns_exact_endpoint_root() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12, 10).unwrap(), 0.0);
    }

    #[test]
    fn brent_finds_transcendental_root() {
        // x e^x = 1 → x = W(1) ≈ 0.5671432904.
        let r = brent(|x| x * x.exp() - 1.0, 0.0, 1.0, 1e-15, 100).unwrap();
        assert!((r - 0.567_143_290_409_783_8).abs() < 1e-10);
    }

    #[test]
    fn brent_beats_bisection_on_iterations() {
        // Count function evaluations via a cell.
        use core::cell::Cell;
        let count = Cell::new(0usize);
        let f = |x: f64| {
            count.set(count.get() + 1);
            x.tanh() - 0.5
        };
        let _ = brent(f, -5.0, 5.0, 1e-13, 200).unwrap();
        let brent_evals = count.get();
        count.set(0);
        let _ = bisect(f, -5.0, 5.0, 1e-13, 200).unwrap();
        let bisect_evals = count.get();
        assert!(
            brent_evals < bisect_evals,
            "{brent_evals} !< {bisect_evals}"
        );
    }

    #[test]
    fn newton_converges_quadratically_near_root() {
        let r = newton(|x| x * x * x - 8.0, 3.0, 1e-12, 100).unwrap();
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn newton_flat_function_errors() {
        let e = newton(|_| 1.0, 0.0, 1e-12, 10);
        assert!(e.is_err());
    }

    #[test]
    fn negative_tolerance_rejected_everywhere() {
        assert!(bisect(|x| x, -1.0, 1.0, -1.0, 10).is_err());
        assert!(brent(|x| x, -1.0, 1.0, 0.0, 10).is_err());
        assert!(newton(|x| x, 1.0, -0.5, 10).is_err());
    }
}
