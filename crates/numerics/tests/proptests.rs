//! Property tests for the numerical substrate.

use gnr_numerics::integrate::{adaptive_simpson, gauss_legendre_composite, simpson};
use gnr_numerics::interp::CubicSpline;
use gnr_numerics::linalg::{solve_tridiagonal, Matrix};
use gnr_numerics::ode::{Dopri45, OdeOptions, Rk4, Sdirk2};
use gnr_numerics::regression::{polyfit, polyval};
use gnr_numerics::roots::{bisect, brent};
use gnr_numerics::stats::Summary;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both bracketing root finders locate the root of a random monotone
    /// cubic.
    #[test]
    fn root_finders_agree(root in -5.0f64..5.0, scale in 0.1f64..10.0) {
        let f = move |x: f64| scale * ((x - root).powi(3) + (x - root));
        let lo = root - 10.0;
        let hi = root + 10.0;
        let rb = bisect(f, lo, hi, 1e-12, 500).unwrap();
        let rr = brent(f, lo, hi, 1e-12, 500).unwrap();
        prop_assert!((rb - root).abs() < 1e-9);
        prop_assert!((rr - root).abs() < 1e-9);
    }

    /// Simpson is exact for random cubics; Gauss for random quintics.
    #[test]
    fn quadrature_exactness(
        c0 in -3.0f64..3.0, c1 in -3.0f64..3.0, c2 in -3.0f64..3.0, c3 in -3.0f64..3.0,
        a in -2.0f64..0.0, b in 0.1f64..2.0,
    ) {
        let f = move |x: f64| c0 + c1 * x + c2 * x * x + c3 * x * x * x;
        let exact = |x: f64| c0 * x + c1 * x * x / 2.0 + c2 * x * x * x / 3.0
            + c3 * x * x * x * x / 4.0;
        let integral = exact(b) - exact(a);
        let s = simpson(f, a, b, 64);
        prop_assert!((s - integral).abs() <= 1e-9 * integral.abs().max(1.0));
        let g = gauss_legendre_composite(f, a, b, 2);
        prop_assert!((g - integral).abs() <= 1e-10 * integral.abs().max(1.0));
        let ad = adaptive_simpson(f, a, b, 1e-12, 40).unwrap();
        prop_assert!((ad - integral).abs() <= 1e-8 * integral.abs().max(1.0));
    }

    /// polyfit ∘ polyval is the identity on random quadratics.
    #[test]
    fn polyfit_round_trip(c0 in -5.0f64..5.0, c1 in -5.0f64..5.0, c2 in -5.0f64..5.0) {
        let xs: Vec<f64> = (0..12).map(|i| i as f64 / 2.0 - 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let c = polyfit(&xs, &ys, 2).unwrap();
        for &x in &xs {
            let err = (polyval(&c, x) - (c0 + c1 * x + c2 * x * x)).abs();
            prop_assert!(err < 1e-7, "err {err}");
        }
    }

    /// Tridiagonal Thomas and dense LU agree on random diagonally
    /// dominant systems.
    #[test]
    fn tridiagonal_matches_dense(
        diag_boost in 2.5f64..10.0,
        vals in proptest::collection::vec(-1.0f64..1.0, 12),
    ) {
        let n = 4;
        let sub: Vec<f64> = (0..n).map(|i| if i == 0 { 0.0 } else { vals[i] }).collect();
        let sup: Vec<f64> = (0..n).map(|i| if i == n - 1 { 0.0 } else { vals[4 + i] }).collect();
        let diag: Vec<f64> = (0..n).map(|i| diag_boost + vals[8 + i].abs()).collect();
        let rhs = [1.0, -2.0, 3.0, -4.0];

        let x_tri = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();

        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, diag[i]);
            if i > 0 {
                m.set(i, i - 1, sub[i]);
            }
            if i < n - 1 {
                m.set(i, i + 1, sup[i]);
            }
        }
        let x_dense = m.solve(&rhs).unwrap();
        for (a, b) in x_tri.iter().zip(&x_dense) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    /// All three production integrators agree on random linear systems.
    #[test]
    fn integrators_cross_validate(lambda in 0.1f64..3.0, y0 in 0.5f64..2.0) {
        let rhs = move |_t: f64, y: &[f64], d: &mut [f64]| d[0] = -lambda * y[0];
        let exact = y0 * (-lambda).exp();
        let dp = Dopri45::new(OdeOptions::with_tolerances(1e-10, 1e-12))
            .integrate(rhs, 0.0, &[y0], 1.0).unwrap().final_state()[0];
        let rk = Rk4::new(500).integrate(rhs, 0.0, &[y0], 1.0).unwrap().final_state()[0];
        let sd = Sdirk2::new(500).integrate(rhs, 0.0, &[y0], 1.0).unwrap().final_state()[0];
        prop_assert!((dp - exact).abs() < 1e-8);
        prop_assert!((rk - exact).abs() < 1e-8);
        prop_assert!((sd - exact).abs() < 1e-4);
    }

    /// Spline interpolation reproduces its nodes for random data.
    #[test]
    fn spline_hits_nodes(ys in proptest::collection::vec(-10.0f64..10.0, 5..10)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let sp = CubicSpline::new(xs.clone(), ys.clone()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((sp.eval(*x) - y).abs() < 1e-9);
        }
    }

    /// Summary statistics are translation-equivariant.
    #[test]
    fn summary_translation(
        samples in proptest::collection::vec(-100.0f64..100.0, 5..40),
        shift in -50.0f64..50.0,
    ) {
        let s1 = Summary::from_samples(&samples).unwrap();
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        let s2 = Summary::from_samples(&shifted).unwrap();
        prop_assert!((s2.mean - s1.mean - shift).abs() < 1e-9);
        prop_assert!((s2.std_dev - s1.std_dev).abs() < 1e-9);
        prop_assert!((s2.median - s1.median - shift).abs() < 1e-9);
    }
}
